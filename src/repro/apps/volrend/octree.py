"""Min-max octree over voxel opacity for empty-space skipping.

Levoy's spatial hierarchy: each node records the opacity extrema of its
subcube so the ray caster can (a) find the first interesting voxel
along a ray efficiently and (b) skip fully transparent regions between
samples (Section 7.2: "An octree data structure is used to find the
first interesting (non-transparent) voxel in a ray's path").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.apps.volrend.volume import Volume


@dataclass
class OctreeNode:
    """One node of the min-max octree.

    Attributes:
        lo: Inclusive voxel lower corner (3 ints).
        hi: Exclusive voxel upper corner.
        min_opacity: Minimum opacity in the subcube.
        max_opacity: Maximum opacity in the subcube.
        children: Child nodes (empty for leaves).
        index: Stable id (used by the trace generator).
    """

    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]
    min_opacity: float
    max_opacity: float
    children: List["OctreeNode"] = field(default_factory=list)
    index: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_transparent(self) -> bool:
        return self.max_opacity <= 0.0

    def contains(self, x: float, y: float, z: float) -> bool:
        return (
            self.lo[0] <= x < self.hi[0]
            and self.lo[1] <= y < self.hi[1]
            and self.lo[2] <= z < self.hi[2]
        )


class MinMaxOctree:
    """Min-max octree over a :class:`Volume`.

    Args:
        volume: The voxel data.
        leaf_size: Stop subdividing below this many voxels per side.
    """

    def __init__(self, volume: Volume, leaf_size: int = 4) -> None:
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.volume = volume
        self.leaf_size = leaf_size
        self._nodes: List[OctreeNode] = []
        shape = volume.shape
        self.root = self._build((0, 0, 0), shape)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[OctreeNode]:
        return self._nodes

    def _build(self, lo: Tuple[int, int, int], hi: Tuple[int, int, int]) -> OctreeNode:
        sub = self.volume.opacities[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]]
        node = OctreeNode(
            lo=lo,
            hi=hi,
            min_opacity=float(sub.min()) if sub.size else 0.0,
            max_opacity=float(sub.max()) if sub.size else 0.0,
            index=len(self._nodes),
        )
        self._nodes.append(node)
        extent = [hi[d] - lo[d] for d in range(3)]
        if max(extent) <= self.leaf_size or node.max_opacity == node.min_opacity:
            return node
        mids = [lo[d] + max(1, extent[d] // 2) for d in range(3)]
        for ix in range(2):
            for iy in range(2):
                for iz in range(2):
                    child_lo = (
                        lo[0] if ix == 0 else mids[0],
                        lo[1] if iy == 0 else mids[1],
                        lo[2] if iz == 0 else mids[2],
                    )
                    child_hi = (
                        mids[0] if ix == 0 else hi[0],
                        mids[1] if iy == 0 else hi[1],
                        mids[2] if iz == 0 else hi[2],
                    )
                    if any(child_hi[d] <= child_lo[d] for d in range(3)):
                        continue
                    node.children.append(self._build(child_lo, child_hi))
        return node

    def deepest_transparent_node(
        self, x: float, y: float, z: float
    ) -> Optional[OctreeNode]:
        """The largest fully transparent node containing the point, or
        None if the point's region contains interesting voxels.

        Also returns the path's final node via attribute access in the
        trace generator (which re-walks the path itself to count node
        touches).
        """
        node = self.root
        if not node.contains(x, y, z):
            return None
        while True:
            if node.is_transparent:
                return node
            if node.is_leaf:
                return None
            advanced = False
            for child in node.children:
                if child.contains(x, y, z):
                    node = child
                    advanced = True
                    break
            if not advanced:
                return None

    def path_to(self, x: float, y: float, z: float) -> List[OctreeNode]:
        """Root-to-terminal node path for a point (terminal = first
        transparent node or leaf)."""
        path: List[OctreeNode] = []
        node = self.root
        if not node.contains(x, y, z):
            return path
        while True:
            path.append(node)
            if node.is_transparent or node.is_leaf:
                return path
            next_node = None
            for child in node.children:
                if child.contains(x, y, z):
                    next_node = child
                    break
            if next_node is None:
                return path
            node = next_node

    def skip_distance(
        self, x: float, y: float, z: float, direction: np.ndarray
    ) -> float:
        """Parametric distance a ray at (x,y,z) may advance such that
        every intermediate sample's trilinear support (its 8 corner
        voxels) stays inside the deepest fully transparent node — i.e.
        every skipped sample is *exactly* zero.  Returns 0 if the
        region is interesting.

        The upper bound per axis is ``hi - 1`` rather than ``hi``
        because a sample at position x interpolates voxels
        ``int(x)`` and ``int(x)+1``.
        """
        node = self.deepest_transparent_node(x, y, z)
        if node is None:
            return 0.0
        position = (x, y, z)
        # The whole support box must start inside the node: on axes the
        # ray does not advance along (or moves backward along), the
        # parametric bound below cannot pull the position back under
        # hi - 1, so demand it up front.
        for axis in range(3):
            if not node.lo[axis] <= position[axis] <= node.hi[axis] - 1:
                return 0.0
        t_exit = float("inf")
        for axis in range(3):
            d = float(direction[axis])
            if d > 1e-12:
                t_exit = min(t_exit, (node.hi[axis] - 1 - position[axis]) / d)
            elif d < -1e-12:
                t_exit = min(t_exit, (node.lo[axis] - position[axis]) / d)
        return max(0.0, t_exit)
