"""Image-plane partitioning and ray stealing.

Every processor statically owns a contiguous rectangular block of
pixels (the source of ray-to-ray voxel reuse behind the lev2WS); idle
processors then steal rays from loaded ones.  "Stealing ... is the
main source of performance loss if the number of rays stolen by a
processor is large compared to the number initially assigned to it"
(Section 7.3); :func:`simulate_ray_stealing` quantifies that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ImagePartition:
    """Contiguous rectangular pixel blocks over a square image.

    Args:
        image_size: Pixels per side.
        num_processors: Must be a perfect square for square blocks.
    """

    image_size: int
    num_processors: int

    def __post_init__(self) -> None:
        side = int(round(math.sqrt(self.num_processors)))
        if side * side != self.num_processors:
            raise ValueError("num_processors must be a perfect square")
        if self.image_size % side != 0:
            raise ValueError("image size must divide among processors")

    @property
    def proc_side(self) -> int:
        return int(round(math.sqrt(self.num_processors)))

    @property
    def block_side(self) -> int:
        return self.image_size // self.proc_side

    def block(self, pid: int) -> Tuple[range, range]:
        """(rows, cols) pixel ranges of processor ``pid``'s block."""
        s = self.block_side
        row = pid // self.proc_side
        col = pid % self.proc_side
        return (
            range(row * s, (row + 1) * s),
            range(col * s, (col + 1) * s),
        )

    def rays_per_processor(self) -> int:
        return self.block_side**2

    def owner(self, px: int, py: int) -> int:
        s = self.block_side
        return (py // s) * self.proc_side + (px // s)


@dataclass
class StealingOutcome:
    """Result of a ray-stealing simulation.

    Attributes:
        finish_times: Per-processor completion time (cost units).
        rays_stolen: Total rays executed away from their home processor.
        steal_fraction: Stolen rays over all rays.
        balance_efficiency: Mean finish time over max finish time — 1.0
            is perfect balance.
    """

    finish_times: np.ndarray
    rays_stolen: int
    steal_fraction: float

    @property
    def balance_efficiency(self) -> float:
        peak = float(self.finish_times.max())
        if peak == 0:
            return 1.0
        return float(self.finish_times.mean()) / peak


def simulate_ray_stealing(
    ray_costs: Sequence[np.ndarray],
    steal_overhead: float = 0.0,
) -> StealingOutcome:
    """Greedy list-scheduling model of ray stealing.

    Args:
        ray_costs: One array of per-ray costs per processor (the static
            assignment).
        steal_overhead: Extra cost added to each stolen ray
            (synchronization + communication).

    Returns:
        A :class:`StealingOutcome`.

    The model: processors consume their own queues; when empty they
    repeatedly steal the next ray from the most-loaded remaining queue.
    """
    num_processors = len(ray_costs)
    queues: List[List[float]] = [list(map(float, costs)) for costs in ray_costs]
    clocks = np.zeros(num_processors)
    # Run own work first.
    for pid in range(num_processors):
        clocks[pid] = sum(queues[pid])
    remaining = [list(q) for q in queues]
    consumed = [0] * num_processors  # rays taken from each queue by theft
    stolen = 0
    # Idle processors steal from the queue with the most leftover work.
    # We approximate time-ordering by repeatedly giving the earliest-
    # finishing processor one ray from the latest-finishing one.
    total_rays = sum(len(q) for q in queues)
    while True:
        fastest = int(np.argmin(clocks))
        slowest = int(np.argmax(clocks))
        if fastest == slowest:
            break
        victim_queue = remaining[slowest]
        if not victim_queue:
            break
        cost = victim_queue.pop()
        if clocks[fastest] + cost + steal_overhead >= clocks[slowest]:
            victim_queue.append(cost)
            break
        clocks[slowest] -= cost
        clocks[fastest] += cost + steal_overhead
        stolen += 1
    return StealingOutcome(
        finish_times=clocks,
        rays_stolen=stolen,
        steal_fraction=stolen / total_rays if total_rays else 0.0,
    )
