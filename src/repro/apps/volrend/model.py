"""Analytical model for volume rendering (paper Section 7).

Working sets (Section 7.2), for a volume with ``n`` voxels per side on
``p`` processors:

- lev1WS: voxel and octree data reused across neighbouring samples
  along a ray, ~0.4 KB; fitting it leaves a ~15% read miss rate.
- lev2WS: the data used by one ray and reused by the next ray of the
  processor's contiguous pixel block: ``~4000 + 110 n`` bytes (the
  paper's explicit formula).  Fitting it reduces the read miss rate to
  ~2%.  **The important working set**, growing as the cube root of the
  data-set size.
- lev3WS: the voxels a processor references in a whole frame, reused
  across frames when the viewing angle changes gradually (~700 KB for
  the paper's head data set); brings the miss rate to the ~0.1%
  communication rate.

Grain size (Section 7.3): a frame executes more than ``300 n^3``
instructions and communicates ``~2 n^3`` bytes of voxel data, so the
computation-to-communication ratio is ~600 instructions per (4-byte)
word, independent of n and p.  Concurrency is the ``~3 n^2`` rays of
the diagonal image plane.
"""

from __future__ import annotations

import math

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, LoadBalanceModel
from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import KB

#: Bytes of data set per voxel ("the data set ... is roughly 4 n^3
#: bytes", Section 7.2 — voxels plus octree and auxiliary structures).
BYTES_PER_VOXEL_TOTAL = 4.0
#: The paper's lev2WS formula constants (Section 7.2).
LEV2_BASE_BYTES = 4000.0
LEV2_SLOPE_BYTES = 110.0
#: Instructions per frame per voxel (Section 7.3: "more than 300 n^3").
INSTRUCTIONS_PER_VOXEL = 300.0
#: Ratio of instructions to communicated words (Section 7.3).
INSTRUCTIONS_PER_WORD = 600.0


class VolrendModel(ApplicationModel):
    """Section-7 formulas for one (n, p) problem instance.

    Args:
        n: Voxels per side of the (cubic) volume.  The prototypical
            1-Gbyte problem is 600x600x600 on 1024 processors.
        num_processors: Machine size.
    """

    name = "Volume Rendering"
    metric = "read_miss_rate"
    #: Rays per processor: 1000 is comfortable; 66 (the 16K-processor
    #: variant) is "likely to be too few for good load balancing
    #: without excessive stealing".
    load_model = LoadBalanceModel(
        unit_name="rays", good_threshold=500, poor_threshold=100
    )

    def __init__(self, n: int = 600, num_processors: int = 1024) -> None:
        if n < 2:
            raise ValueError("volume side must be at least 2 voxels")
        self.n = n
        self.num_processors = num_processors

    @classmethod
    def for_dataset(
        cls, dataset_bytes: float, num_processors: int = 1024
    ) -> "VolrendModel":
        n = int(round((dataset_bytes / BYTES_PER_VOXEL_TOTAL) ** (1.0 / 3.0)))
        return cls(n=n, num_processors=num_processors)

    # -- problem shape --------------------------------------------------------

    @property
    def dataset_bytes(self) -> float:
        return BYTES_PER_VOXEL_TOTAL * self.n**3

    def concurrency(self) -> float:
        """Independent rays (Table 1: ~ n^2 pixels)."""
        return self.rays_total()

    def rays_total(self) -> float:
        """One ray per pixel of the diagonal image plane: ``~3 n^2``."""
        return 3.0 * self.n**2

    def instructions_per_frame(self) -> float:
        return INSTRUCTIONS_PER_VOXEL * self.n**3

    # -- working sets (Section 7.2) ---------------------------------------------

    def lev1_bytes(self) -> float:
        """Sample-to-sample reuse along a ray: ~0.4 KB, invariant."""
        return 0.4 * KB

    def lev2_bytes(self) -> float:
        """Ray-to-ray reuse: ``4000 + 110 n`` bytes (the paper's fit)."""
        return LEV2_BASE_BYTES + LEV2_SLOPE_BYTES * self.n

    def lev3_bytes(self) -> float:
        """Frame-to-frame reuse: the voxels a processor references in a
        frame — a fraction of its share of the volume plus overlap with
        neighbouring blocks."""
        voxel_bytes = 2.0 * self.n**3
        return 1.5 * voxel_bytes / self.num_processors

    def communication_miss_rate(self) -> float:
        """The ~0.1% floor the paper measures with very large caches."""
        return 0.001

    def miss_rate_model(self, cache_bytes: float) -> float:
        """Read-miss-rate plateaus for the Figure 7 shape."""
        if cache_bytes >= self.lev3_bytes():
            return self.communication_miss_rate()
        if cache_bytes >= self.lev2_bytes():
            return 0.02
        if cache_bytes >= self.lev1_bytes():
            return 0.15
        return 1.0

    def working_sets(self) -> WorkingSetHierarchy:
        hierarchy = WorkingSetHierarchy(
            application=self.name,
            problem=f"{self.n}^3 voxels, P={self.num_processors}",
            dataset_bytes=self.dataset_bytes,
            per_processor_bytes=self.dataset_bytes / self.num_processors,
        )
        hierarchy.add(
            WorkingSet(
                level=1,
                name="voxel/octree data reused across samples along a ray",
                size_bytes=self.lev1_bytes(),
                miss_rate_after=0.15,
                scaling="const",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=2,
                name="data reused between successive rays",
                size_bytes=self.lev2_bytes(),
                miss_rate_after=0.02,
                important=True,
                scaling="n = cbrt(DS)",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=3,
                name="voxels referenced by the processor in one frame",
                size_bytes=self.lev3_bytes(),
                miss_rate_after=self.communication_miss_rate(),
                scaling="n^3/p",
            )
        )
        return hierarchy

    # -- grain size (Section 7.3) -------------------------------------------------

    def flops_per_word(self, config: GrainConfig) -> float:
        """~600 instructions per word, independent of n and p."""
        return INSTRUCTIONS_PER_WORD

    def units_per_processor(self, config: GrainConfig) -> float:
        """Rays per processor, ``~3 n^2 / p``."""
        n = (config.total_data_bytes / BYTES_PER_VOXEL_TOTAL) ** (1.0 / 3.0)
        return 3.0 * n**2 / config.num_processors

    def grain_notes(self, config: GrainConfig) -> str:
        rays = self.units_per_processor(config)
        if rays < self.load_model.poor_threshold:
            return "too few rays per processor: excessive ray stealing"
        return ""

    # -- scaling (Section 7.3) ------------------------------------------------------

    def grain_for_scaled_dataset(self, scale_factor: float) -> float:
        """Memory per processor needed to keep rays/processor constant
        when the data set grows by ``scale_factor``: grows as the cube
        root of the factor."""
        base_grain = self.dataset_bytes / self.num_processors
        return base_grain * scale_factor ** (1.0 / 3.0)
