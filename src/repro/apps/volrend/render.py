"""The ray-casting renderer.

Orthographic rays are cast from a rotating viewpoint through every
pixel of the image plane; voxel opacity is resampled by trilinear
interpolation at unit steps along each ray, composited front-to-back,
terminated early when accumulated opacity approaches 1, and accelerated
by min-max-octree space skipping (Section 7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.apps.volrend.octree import MinMaxOctree
from repro.apps.volrend.volume import Volume

#: Accumulated opacity at which a ray is terminated early.
TERMINATION_OPACITY = 0.95


@dataclass
class Camera:
    """An orthographic camera orbiting the volume.

    Attributes:
        angle: Azimuthal viewing angle in radians (rotation about the
            volume's z axis); successive frames change this gradually.
        image_size: Pixels per side of the square image plane.
        supersample: Sample step along the ray, in voxels.
    """

    angle: float = 0.0
    image_size: int = 64
    step: float = 1.0

    def ray(
        self, volume_shape: Tuple[int, int, int], px: int, py: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The (origin, direction) of the ray through pixel (px, py).

        The image plane is perpendicular to the viewing direction and
        sized to cover the volume's diagonal footprint.
        """
        nx, ny, nz = volume_shape
        center = np.array([nx / 2.0, ny / 2.0, nz / 2.0])
        direction = np.array(
            [math.cos(self.angle), math.sin(self.angle), 0.0]
        )
        right = np.array([-math.sin(self.angle), math.cos(self.angle), 0.0])
        up = np.array([0.0, 0.0, 1.0])
        diag = math.sqrt(nx * nx + ny * ny + nz * nz)
        u = (px + 0.5) / self.image_size - 0.5
        v = (py + 0.5) / self.image_size - 0.5
        origin = center - direction * diag + right * (u * diag) + up * (v * diag)
        return origin, direction


class RayCaster:
    """Renders frames of a volume, optionally with octree skipping.

    Args:
        volume: The voxel data.
        octree: Min-max octree for empty-space skipping (None disables
            skipping — the brute-force reference the tests compare
            against).
    """

    def __init__(self, volume: Volume, octree: Optional[MinMaxOctree] = None) -> None:
        self.volume = volume
        self.octree = octree
        self.samples_taken = 0
        self.samples_skipped = 0

    def _entry_exit(
        self, origin: np.ndarray, direction: np.ndarray
    ) -> Optional[Tuple[float, float]]:
        """Parametric entry/exit of the ray against the volume box."""
        t0, t1 = 0.0, float("inf")
        for axis in range(3):
            extent = self.volume.shape[axis] - 1
            o, d = float(origin[axis]), float(direction[axis])
            if abs(d) < 1e-12:
                if not 0.0 <= o <= extent:
                    return None
                continue
            ta = (0.0 - o) / d
            tb = (extent - o) / d
            if ta > tb:
                ta, tb = tb, ta
            t0 = max(t0, ta)
            t1 = min(t1, tb)
        if t0 >= t1:
            return None
        return t0, t1

    def cast(
        self,
        origin: np.ndarray,
        direction: np.ndarray,
        sample_hook: Optional[Callable[[float, float, float], None]] = None,
        skip_hook: Optional[Callable[[float, float, float], None]] = None,
        step: float = 1.0,
    ) -> float:
        """Cast one ray; returns the composited opacity in [0, 1].

        Args:
            origin, direction: The ray (direction need not be unit).
            sample_hook: Called with the position of every trilinear
                sample taken (the trace generator hooks this).
            skip_hook: Called with the position of every octree skip
                decision.
            step: Sampling interval along the ray, in voxels.
        """
        span = self._entry_exit(origin, direction)
        if span is None:
            return 0.0
        t, t_end = span
        accumulated = 0.0
        while t <= t_end and accumulated < TERMINATION_OPACITY:
            position = origin + t * direction
            x, y, z = float(position[0]), float(position[1]), float(position[2])
            if self.octree is not None:
                skip = self.octree.skip_distance(x, y, z, direction)
                if skip_hook is not None:
                    skip_hook(x, y, z)
                # Advance in whole steps so sample positions stay on the
                # same grid as a non-skipping caster; skip_distance
                # guarantees every skipped sample is exactly transparent,
                # so the rendered image is bit-identical.
                whole_steps = int(skip // step)
                if whole_steps >= 1:
                    self.samples_skipped += whole_steps
                    t += whole_steps * step
                    continue
            alpha = self.volume.trilinear(x, y, z)
            if sample_hook is not None:
                sample_hook(x, y, z)
            self.samples_taken += 1
            accumulated += (1.0 - accumulated) * alpha
            t += step
        return min(accumulated, 1.0)

    def render(
        self,
        camera: Camera,
        pixels: Optional[np.ndarray] = None,
        pixel_range: Optional[Tuple[range, range]] = None,
    ) -> np.ndarray:
        """Render (a block of) a frame.  Returns the image array."""
        size = camera.image_size
        if pixels is None:
            pixels = np.zeros((size, size))
        rows, cols = pixel_range or (range(size), range(size))
        for py in rows:
            for px in cols:
                origin, direction = camera.ray(self.volume.shape, px, py)
                pixels[py, px] = self.cast(origin, direction, step=camera.step)
        return pixels


def render_frame(
    volume: Volume,
    angle: float = 0.0,
    image_size: int = 64,
    use_octree: bool = True,
) -> np.ndarray:
    """Convenience wrapper: render one full frame."""
    octree = MinMaxOctree(volume) if use_octree else None
    caster = RayCaster(volume, octree)
    return caster.render(Camera(angle=angle, image_size=image_size))


def save_pgm(image: np.ndarray, path) -> None:
    """Write an opacity image as a binary PGM (grayscale) file.

    PGM needs no external imaging library, so rendered frames can be
    inspected with any viewer.
    """
    if image.ndim != 2:
        raise ValueError("save_pgm expects a 2-D image")
    clipped = np.clip(image, 0.0, 1.0)
    pixels = (clipped * 255).astype(np.uint8)
    height, width = pixels.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())


def load_pgm(path) -> np.ndarray:
    """Read a binary PGM written by :func:`save_pgm` back into [0, 1]."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P5":
            raise ValueError("not a binary PGM file")
        width, height = map(int, handle.readline().split())
        maxval = int(handle.readline())
        data = np.frombuffer(handle.read(width * height), dtype=np.uint8)
    return data.reshape(height, width).astype(float) / maxval
