"""Memory-reference trace generator for the Barnes-Hut force phase.

Emits one processor's double-word reference stream while it computes
forces on its (Morton-contiguous) partition of bodies.  The traced data
structures:

- **body records**: position (3 dw), velocity (3 dw), mass (1 dw),
  acceleration (3 dw) — 80 bytes per body;
- **cell records**: center of mass (3 dw), mass (1 dw), quadrupole
  (6 dw), child pointers (4 dw), geometry (2 dw) — 128 bytes per cell;
- **interaction scratch**: a ~0.6 KB temporary region read and written
  by every particle-particle / particle-cell interaction.  This is the
  paper's lev1WS ("the amount of temporary storage used to compute an
  interaction ... about 0.7 Kbytes"); caching it takes the read miss
  rate from ~100% to ~20%, with the remaining misses going to tree
  data that only the lev2WS captures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.apps.barnes_hut.bodies import BodySet
from repro.apps.barnes_hut.force import WalkStats, accelerate_body
from repro.apps.barnes_hut.octree import Cell, Octree
from repro.apps.barnes_hut.partition import morton_partition
from repro.mem.address import AddressSpace
from repro.mem.trace import Trace, TraceBuilder
from repro.mem.shards import trace_builder
from repro.obs.tracing import traced
from repro.units import DOUBLE_WORD

if TYPE_CHECKING:
    from repro.validate.report import ValidationReport

#: Double words per body record (pos 3 + vel 3 + mass 1 + acc 3).
BODY_DOUBLEWORDS = 10
#: Double words per cell record (com 3 + mass 1 + quad 6 + children 4 + misc 2).
CELL_DOUBLEWORDS = 16
#: Double words of interaction scratch (the lev1WS; ~0.6 KB).
SCRATCH_DOUBLEWORDS = 48


class BarnesHutTraceGenerator:
    """Trace generator for one force-computation phase.

    Args:
        bodies: The body set (tree is built once at construction).
        theta: Opening-angle parameter.
        num_processors: Machine size (bodies are Morton-partitioned).
        quadrupole: Trace quadrupole reads for accepted cells.
        seed: Determinism-audit seed recording how ``bodies`` was
            generated (use :meth:`from_plummer` to thread it
            explicitly); also parameterizes :meth:`self_check`.
    """

    def __init__(
        self,
        bodies: BodySet,
        theta: float = 1.0,
        num_processors: int = 4,
        quadrupole: bool = True,
        seed: int = 0,
    ) -> None:
        self.seed = seed
        self.bodies = bodies
        self.theta = theta
        self.num_processors = num_processors
        self.quadrupole = quadrupole
        self.tree = Octree(bodies)
        self.tree.compute_moments(quadrupole=quadrupole)
        self.partitions = morton_partition(bodies, num_processors)
        self.space = AddressSpace()
        self.body_region = self.space.allocate_array(
            "bodies", len(bodies) * BODY_DOUBLEWORDS
        )
        self.cell_region = self.space.allocate_array(
            "cells", self.tree.num_cells * CELL_DOUBLEWORDS
        )
        # One private scratch buffer per processor: interaction
        # temporaries are thread-local state, never shared.
        self.scratch_regions = [
            self.space.allocate_array(
                f"interaction scratch p{pid}", SCRATCH_DOUBLEWORDS
            )
            for pid in range(num_processors)
        ]
        self.scratch = self.scratch_regions[0]
        self.stats = WalkStats()

    @classmethod
    def from_plummer(
        cls,
        n: int,
        seed: int = 0,
        theta: float = 1.0,
        num_processors: int = 4,
        quadrupole: bool = True,
    ) -> "BarnesHutTraceGenerator":
        """Seeded construction from a Plummer-model body set: the only
        randomness in the Barnes-Hut trace is the initial conditions,
        so equal seeds yield byte-identical traces."""
        from repro.apps.barnes_hut.bodies import plummer_model

        return cls(
            plummer_model(n, seed=seed),
            theta=theta,
            num_processors=num_processors,
            quadrupole=quadrupole,
            seed=seed,
        )

    def self_check(self) -> "ValidationReport":
        """Mathematical self-check of the traced algorithm: integrate a
        seeded N-body system with exact (theta=0) forces and verify
        momentum conservation.

        Returns the passing
        :class:`~repro.validate.report.ValidationReport`; raises
        :class:`~repro.runtime.errors.SelfCheckError` on failure.
        """
        from repro.validate.selfchecks import assert_self_check

        return assert_self_check(
            "barnes-hut", seed=self.seed, n=min(len(self.bodies), 64)
        )

    # -- addressing ---------------------------------------------------------

    def _body_addr(self, body: int, field_offset: int) -> int:
        return self.body_region.element(body * BODY_DOUBLEWORDS + field_offset)

    def _cell_addr(self, cell: Cell, field_offset: int) -> int:
        return self.cell_region.element(cell.index * CELL_DOUBLEWORDS + field_offset)

    # -- emission helpers -----------------------------------------------------

    def _read_body_position(self, tb: TraceBuilder, body: int) -> None:
        for offset in range(3):
            tb.read(self._body_addr(body, offset))

    def _read_cell_com_mass(self, tb: TraceBuilder, cell: Cell) -> None:
        for offset in range(4):
            tb.read(self._cell_addr(cell, offset))

    def _read_cell_quad(self, tb: TraceBuilder, cell: Cell) -> None:
        for offset in range(4, 10):
            tb.read(self._cell_addr(cell, offset))

    def _read_cell_children(self, tb: TraceBuilder, cell: Cell) -> None:
        for offset in range(10, 14):
            tb.read(self._cell_addr(cell, offset))

    def _interaction_scratch(self, tb: TraceBuilder) -> None:
        """Every interaction churns the scratch buffer: read the whole
        region, write half of it back."""
        for i in range(SCRATCH_DOUBLEWORDS):
            tb.read(self.scratch.element(i))
        for i in range(0, SCRATCH_DOUBLEWORDS, 2):
            tb.write(self.scratch.element(i))

    # -- trace ---------------------------------------------------------------

    @traced("apps.barneshut.force_phase")
    def trace_for_processor(self, pid: int) -> Trace:
        """Trace processor ``pid`` computing forces on its partition."""
        if not 0 <= pid < self.num_processors:
            raise IndexError("processor id out of range")
        tb = trace_builder()
        self.stats = WalkStats()
        self.scratch = self.scratch_regions[pid]

        def visit(cell: Cell, event: str) -> None:
            if event == "open":
                self._read_cell_com_mass(tb, cell)
                self._read_cell_children(tb, cell)
            elif event == "accept":
                self._read_cell_com_mass(tb, cell)
                if self.quadrupole:
                    self._read_cell_quad(tb, cell)
                self._interaction_scratch(tb)
            else:  # body-body
                self._read_body_position(tb, cell.body_index)
                tb.read(self._body_addr(cell.body_index, 6))  # mass
                self._interaction_scratch(tb)

        for body in self.partitions[pid]:
            body = int(body)
            self._read_body_position(tb, body)
            accelerate_body(
                self.tree,
                body,
                self.theta,
                quadrupole=self.quadrupole,
                stats=self.stats,
                visit=visit,
            )
            for offset in range(7, 10):  # acceleration write-back
                tb.write(self._body_addr(body, offset))
        return tb.build()

    # -- other phases (Section 6.4) ---------------------------------------

    def _body_owner(self, body: int) -> int:
        if not hasattr(self, "_owner_of_body"):
            owners = {}
            for pid, part in enumerate(self.partitions):
                for b in part:
                    owners[int(b)] = pid
            self._owner_of_body = owners
        return self._owner_of_body[body]

    def cell_owner(self, cell: Cell) -> int:
        """The processor responsible for a cell in the parallel build:
        the owner of the first body beneath it (leaves: the resident
        body's owner)."""
        node = cell
        while not node.is_leaf:
            node = next(c for c in node.children if c is not None)
        if node.body_index >= 0:
            return self._body_owner(node.body_index)
        return 0

    @traced("apps.barneshut.tree_build_phase")
    def build_trace_for_processor(self, pid: int) -> Trace:
        """Trace of the tree-build phase: processor ``pid`` inserts its
        bodies, walking root-to-leaf and updating child pointers.

        The upper tree cells are traversed (and, near the root, written)
        by every processor — the contention the paper cites when noting
        that "building the octree ... do[es] not yield quite as good
        speedups" (Section 6.4).
        """
        tb = trace_builder()
        cells = self.tree.cells
        for body in self.partitions[pid]:
            body = int(body)
            self._read_body_position(tb, body)
            path = self.tree.insertion_paths[body]
            for step, cell_index in enumerate(path):
                cell = cells[cell_index]
                self._read_cell_children(tb, cell)
                # Every traversed cell's body count is read-modify-
                # written (as in the sequential algorithm) — the shared
                # upper-tree updates behind the phase's poor scaling.
                tb.read(self._cell_addr(cell, 14))
                tb.write(self._cell_addr(cell, 14))
                if step == len(path) - 1:
                    # Install the body / split the leaf: update pointers.
                    for offset in range(10, 14):
                        tb.write(self._cell_addr(cell, offset))
        return tb.build()

    @traced("apps.barneshut.moments_phase")
    def moments_trace_for_processor(self, pid: int) -> Trace:
        """Trace of the moment-computation phase: processor ``pid``
        computes mass/center-of-mass/quadrupole for the cells it owns,
        reading its children's records (which other processors wrote)."""
        tb = trace_builder()
        for cell in self.tree.cells:
            if self.cell_owner(cell) != pid:
                continue
            if cell.is_leaf:
                if cell.body_index >= 0:
                    self._read_body_position(tb, cell.body_index)
                    tb.read(self._body_addr(cell.body_index, 6))  # mass
            else:
                for child in cell.children:
                    if child is None:
                        continue
                    self._read_cell_com_mass(tb, child)
                    self._read_cell_quad(tb, child)
            # Write own moment fields.
            for offset in range(10):
                tb.write(self._cell_addr(cell, offset))
        return tb.build()

    # -- summary quantities ---------------------------------------------------

    def interactions_per_body(self, pid: int = 0) -> float:
        """Average interactions per body in the partition (available
        after :meth:`trace_for_processor`)."""
        bodies = len(self.partitions[pid])
        if bodies == 0 or self.stats.interactions == 0:
            return 0.0
        return self.stats.interactions / bodies

    @property
    def dataset_bytes(self) -> int:
        return (
            len(self.bodies) * BODY_DOUBLEWORDS
            + self.tree.num_cells * CELL_DOUBLEWORDS
        ) * DOUBLE_WORD

    def bytes_per_body(self) -> float:
        """Total data per particle — the paper reports ~230 bytes with
        quadrupole moments."""
        return self.dataset_bytes / len(self.bodies)
