"""Analytical model for the Barnes-Hut method (paper Section 6).

Working sets (Section 6.2):

- lev1WS: interaction scratch, ~0.7 KB, independent of n, P and theta.
- lev2WS: the tree data needed to compute the force on one particle,
  reused across successive particles under a locality-preserving
  partition.  Size ``~ (1/theta^2) log n`` with a constant of about
  6 KB (so 32 KB at n=64K, theta=1; ~20 KB at n=1024).  **The important
  working set.**
- lev3WS: max(partition data, data needed for the partition's forces).

Scaling rule (Section 6.2): when n is scaled by s under realistic
error-balanced scaling, ``theta ~ s^(-1/8)`` (quadrupole) and
``dt ~ s^(-1/2)``, with theta clamped near 0.5 where octopole moments
take over.

Grain size (Section 6.3): communication per processor scales as
``n^(1/3) theta^3 / p^(1/3) * log^(4/3) p``; the communication-to-
computation ratio as ``theta (p/n)^(2/3) log^(4/3)p / log n``, with one
computation unit ~80 instructions and one communication unit 3 double
words.
"""

from __future__ import annotations

import math

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, LoadBalanceModel
from repro.core.scaling import solve_monotone
from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import KB

#: Bytes of data per particle with quadrupole moments (Section 6.2).
BYTES_PER_PARTICLE = 230.0
#: The lev2WS constant of proportionality (Section 6.2: "about 6 Kbytes").
LEV2_CONSTANT_BYTES = 6.0 * KB
#: Instructions per particle-particle/particle-cell interaction.
INSTRUCTIONS_PER_INTERACTION = 80.0
#: Double words per communication unit.
DOUBLEWORDS_PER_COMM_UNIT = 3.0
#: Calibration constant for the curve-fitted communication volume.
COMM_CONSTANT = 0.75
#: Below this theta, octopole moments are used instead of reducing
#: theta further (Section 6.2).
THETA_FLOOR = 0.5


class BarnesHutModel(ApplicationModel):
    """Section-6 formulas for one (n, theta, p) problem instance.

    Args:
        n: Number of particles.  Default: the paper's realistic 64K
            particle baseline.
        theta: Accuracy parameter.
        num_processors: Machine size.
    """

    name = "Barnes-Hut"
    metric = "read_miss_rate"
    #: Particles per processor; the paper judges 4500/processor easily
    #: balanced and ~280/processor the point where "load balancing may
    #: become a problem".
    load_model = LoadBalanceModel(
        unit_name="particles", good_threshold=1000, poor_threshold=64
    )

    def __init__(
        self, n: int = 65536, theta: float = 1.0, num_processors: int = 64
    ) -> None:
        if n < 2:
            raise ValueError("need at least two particles")
        if not 0.1 <= theta <= 2.0:
            raise ValueError("theta outside the physically used range")
        self.n = n
        self.theta = theta
        self.num_processors = num_processors

    @classmethod
    def for_dataset(
        cls, dataset_bytes: float, theta: float = 1.0, num_processors: int = 1024
    ) -> "BarnesHutModel":
        """The problem with ~dataset_bytes of particle + tree data
        (230 bytes/particle); 1 GB -> ~4.5M particles."""
        n = int(dataset_bytes / BYTES_PER_PARTICLE)
        return cls(n=n, theta=theta, num_processors=num_processors)

    # -- problem shape --------------------------------------------------------

    @property
    def dataset_bytes(self) -> float:
        return self.n * BYTES_PER_PARTICLE

    def concurrency(self) -> float:
        """Independent force computations (Table 1: ~ n particles)."""
        return float(self.n)

    def interactions_per_particle(self) -> float:
        """``~ (1/theta^2) log2 n`` (Hernquist 1988), with an O(1)
        constant calibrated against our trace measurements."""
        return 4.0 / self.theta**2 * math.log2(self.n)

    def work_instructions(self) -> float:
        """Force-phase instructions per time-step."""
        return (
            self.n
            * self.interactions_per_particle()
            * INSTRUCTIONS_PER_INTERACTION
        )

    # -- working sets (Section 6.2) ---------------------------------------------

    def lev1_bytes(self) -> float:
        """Interaction scratch: ~0.7 KB, invariant."""
        return 0.7 * KB

    def lev2_bytes(self) -> float:
        """``~6 KB * (1/theta^2) * log10(n)`` — 32 KB at (64K, 1.0)."""
        return LEV2_CONSTANT_BYTES / self.theta**2 * math.log10(self.n)

    def lev3_bytes(self) -> float:
        """Roughly max(partition size, data the partition's forces touch)."""
        partition = self.dataset_bytes / self.num_processors
        touched = 1.5 * partition + self.lev2_bytes()
        return max(partition, touched)

    def communication_miss_rate(self) -> float:
        """Read miss rate with an infinite cache (~0.2% for the paper's
        1024-particle, 4-processor Figure 6 problem)."""
        ratio = self.comm_to_comp_ratio(self.n, self.num_processors, self.theta)
        # Misses per read: one communication unit is 3 double words out
        # of ~55 reads per interaction's ~80 instructions.
        reads_per_interaction = 55.0
        return min(
            1.0,
            ratio * DOUBLEWORDS_PER_COMM_UNIT / reads_per_interaction
        )

    def miss_rate_model(self, cache_bytes: float) -> float:
        """Read-miss-rate plateaus for the Figure 6 shape."""
        floor = max(self.communication_miss_rate(), 0.002)
        if cache_bytes >= self.lev3_bytes():
            return floor
        if cache_bytes >= self.lev2_bytes():
            return max(0.01, floor)
        if cache_bytes >= self.lev1_bytes():
            return 0.20
        return 1.0

    def working_sets(self) -> WorkingSetHierarchy:
        hierarchy = WorkingSetHierarchy(
            application=self.name,
            problem=(
                f"n={self.n}, theta={self.theta}, P={self.num_processors},"
                " quadrupole moments"
            ),
            dataset_bytes=self.dataset_bytes,
            per_processor_bytes=self.dataset_bytes / self.num_processors,
        )
        hierarchy.add(
            WorkingSet(
                level=1,
                name="interaction scratch storage",
                size_bytes=self.lev1_bytes(),
                miss_rate_after=0.20,
                scaling="const",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=2,
                name="tree data to compute the force on one particle",
                size_bytes=self.lev2_bytes(),
                miss_rate_after=max(0.01, self.communication_miss_rate()),
                important=True,
                scaling="(1/theta^2) log n",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=3,
                name="max(partition data, data the partition's forces need)",
                size_bytes=self.lev3_bytes(),
                miss_rate_after=max(self.communication_miss_rate(), 0.002),
                scaling="n/p",
            )
        )
        return hierarchy

    # -- scaling (Section 6.2) -----------------------------------------------------

    def scaled_theta(self, scale: float) -> float:
        """``theta * s^(-1/8)``, clamped at the octopole floor."""
        return max(THETA_FLOOR, self.theta * scale ** (-1.0 / 8.0))

    def mc_scaled(self, num_processors: int) -> "BarnesHutModel":
        """Memory-constrained scaling: n grows linearly with p; theta
        follows the error-balanced rule."""
        scale = num_processors / self.num_processors
        return BarnesHutModel(
            n=int(self.n * scale),
            theta=self.scaled_theta(scale),
            num_processors=num_processors,
        )

    def tc_scaled(self, num_processors: int) -> "BarnesHutModel":
        """Time-constrained scaling: solve for the particle-count scale
        ``s`` that keeps the per-step force time constant, given
        ``theta ~ s^(-1/8)`` and ``dt ~ s^(-1/2)`` (more steps per unit
        physical time)."""
        p_ratio = num_processors / self.num_processors

        def time_growth(scale: float) -> float:
            theta = self.scaled_theta(scale)
            work = (
                (self.theta / theta) ** 2
                * scale
                * math.log2(scale * self.n)
                / math.log2(self.n)
            )
            steps = math.sqrt(scale)
            return work * steps

        scale = solve_monotone(time_growth, p_ratio, lo=1.0, hi=2.0)
        return BarnesHutModel(
            n=int(self.n * scale),
            theta=self.scaled_theta(scale),
            num_processors=num_processors,
        )

    # -- grain size (Section 6.3) -------------------------------------------------

    @staticmethod
    def comm_to_comp_ratio(n: float, p: float, theta: float) -> float:
        """Communication units per computation unit:
        ``theta (p/n)^(2/3) log^(4/3)p / log n`` (curve fit from Salmon
        1990 and the authors')."""
        if p <= 1:
            return 0.0
        return (
            COMM_CONSTANT
            * theta
            * (p / n) ** (2.0 / 3.0)
            * math.log2(p) ** (4.0 / 3.0)
            / math.log2(n)
        )

    def flops_per_word(self, config: GrainConfig) -> float:
        """Instructions per double word of communication (the paper
        treats instructions and FLOPs interchangeably here)."""
        n = config.total_data_bytes / BYTES_PER_PARTICLE
        ratio = self.comm_to_comp_ratio(n, config.num_processors, self.theta)
        if ratio == 0.0:
            return float("inf")
        return INSTRUCTIONS_PER_INTERACTION / (
            ratio * DOUBLEWORDS_PER_COMM_UNIT
        )

    def units_per_processor(self, config: GrainConfig) -> float:
        n = config.total_data_bytes / BYTES_PER_PARTICLE
        return n / config.num_processors

    def grain_notes(self, config: GrainConfig) -> str:
        if config.num_processors >= 4096:
            return (
                "tree build and moment phases scale worse than the force"
                " phase and may bound very fine grains (Section 6.4)"
            )
        return ""
