"""Force computation: the theta-criterion tree walk and the O(n^2)
direct sum it approximates.

A cell is accepted (interacted with as a multipole) when
``l / d < theta`` where ``l`` is the cell's side length and ``d`` the
distance from the body to the cell's center of mass (Section 6.1);
otherwise it is opened.  Quadrupole corrections follow Hernquist (1987).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.apps.barnes_hut.bodies import BodySet
from repro.apps.barnes_hut.octree import Cell, Octree


@dataclass
class WalkStats:
    """Counters from one force-computation phase."""

    body_cell_interactions: int = 0
    body_body_interactions: int = 0
    cells_opened: int = 0

    @property
    def interactions(self) -> int:
        return self.body_cell_interactions + self.body_body_interactions


def _pairwise_acceleration(
    delta: np.ndarray, mass: float, softening: float, g: float
) -> np.ndarray:
    r2 = float(delta @ delta) + softening * softening
    inv_r3 = r2**-1.5
    return g * mass * inv_r3 * delta


def _quadrupole_acceleration(
    delta: np.ndarray, quad: np.ndarray, softening: float, g: float
) -> np.ndarray:
    """Acceleration correction from the traceless quadrupole tensor.

    Potential ``phi_quad = -G (r^T Q r) / (2 r^5)`` with ``r`` the vector
    from the cell's center of mass to the body; the acceleration is its
    negative gradient, ``G [Q r / r^5 - (5/2) (r^T Q r) r / r^7]``.
    ``delta`` points from the body toward the center of mass
    (``delta = -r``), so both terms change sign relative to that form.
    """
    r2 = float(delta @ delta) + softening * softening
    inv_r5 = r2**-2.5
    inv_r7 = r2**-3.5
    qd = quad @ delta
    dqd = float(delta @ qd)
    return g * (2.5 * dqd * inv_r7 * delta - qd * inv_r5)


def accelerate_body(
    tree: Octree,
    body_index: int,
    theta: float,
    softening: float = 1e-4,
    gravitational_constant: float = 1.0,
    quadrupole: bool = True,
    stats: Optional[WalkStats] = None,
    visit: Optional[Callable[[Cell, str], None]] = None,
) -> np.ndarray:
    """Acceleration on one body via the Barnes-Hut walk.

    Args:
        tree: An octree with moments computed.
        body_index: The body to accelerate.
        theta: Opening-angle parameter (0 degenerates to direct sum).
        softening: Plummer softening length.
        gravitational_constant: G.
        quadrupole: Apply quadrupole corrections for accepted cells.
        stats: Optional interaction counters to update.
        visit: Optional callback ``(cell, event)`` with event in
            {"open", "accept", "body"}; the trace generator hooks this.

    Returns:
        The (3,) acceleration vector.
    """
    if not tree.moments_ready:
        raise RuntimeError("call compute_moments() before force evaluation")
    position = tree.bodies.positions[body_index]
    acc = np.zeros(3)
    stack: List[Cell] = [tree.root]
    while stack:
        cell = stack.pop()
        if cell.count == 0 or cell.mass == 0.0:
            continue
        if cell.is_leaf:
            if cell.body_index == body_index:
                continue
            delta = tree.bodies.positions[cell.body_index] - position
            acc += _pairwise_acceleration(
                delta, float(tree.bodies.masses[cell.body_index]), softening,
                gravitational_constant,
            )
            if stats is not None:
                stats.body_body_interactions += 1
            if visit is not None:
                visit(cell, "body")
            continue
        delta = cell.com - position
        distance = float(np.sqrt(delta @ delta)) + 1e-300
        if cell.side / distance < theta:
            acc += _pairwise_acceleration(
                delta, cell.mass, softening, gravitational_constant
            )
            if quadrupole:
                acc += _quadrupole_acceleration(
                    delta, cell.quad, softening, gravitational_constant
                )
            if stats is not None:
                stats.body_cell_interactions += 1
            if visit is not None:
                visit(cell, "accept")
        else:
            if stats is not None:
                stats.cells_opened += 1
            if visit is not None:
                visit(cell, "open")
            for child in cell.children:
                if child is not None:
                    stack.append(child)
    return acc


def compute_accelerations(
    bodies: BodySet,
    theta: float,
    softening: float = 1e-4,
    gravitational_constant: float = 1.0,
    quadrupole: bool = True,
    stats: Optional[WalkStats] = None,
) -> np.ndarray:
    """Barnes-Hut accelerations for every body (rebuilds the tree)."""
    tree = Octree(bodies)
    tree.compute_moments(quadrupole=quadrupole)
    acc = np.empty_like(bodies.positions)
    for i in range(len(bodies)):
        acc[i] = accelerate_body(
            tree,
            i,
            theta,
            softening=softening,
            gravitational_constant=gravitational_constant,
            quadrupole=quadrupole,
            stats=stats,
        )
    bodies.accelerations = acc
    return acc


def direct_sum(
    bodies: BodySet,
    softening: float = 1e-4,
    gravitational_constant: float = 1.0,
) -> np.ndarray:
    """Exact O(n^2) accelerations (vectorized ground truth)."""
    pos = bodies.positions
    n = len(bodies)
    acc = np.zeros((n, 3))
    for i in range(n):
        delta = pos - pos[i]
        r2 = (delta**2).sum(axis=1) + softening**2
        r2[i] = 1.0
        inv_r3 = r2**-1.5
        inv_r3[i] = 0.0
        acc[i] = gravitational_constant * (
            (bodies.masses * inv_r3)[:, None] * delta
        ).sum(axis=0)
    return acc
