"""The Barnes-Hut octree.

The root cell is a cube containing all bodies; internal cells are
recursively subdivided space cells; leaves hold individual bodies.
After construction, :meth:`Octree.compute_moments` fills every cell's
total mass, center of mass and (optionally) traceless quadrupole
moment, bottom-up — the paper assumes quadrupole moments are used
(Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.apps.barnes_hut.bodies import BodySet


@dataclass
class Cell:
    """One octree cell.

    Attributes:
        center: Geometric center of the cube.
        half_size: Half the cube's side length.
        body_index: The single body held, for leaf cells; -1 otherwise.
        children: Eight child slots (None where empty), for internal
            cells; empty list for leaves.
        mass: Total mass beneath this cell (after compute_moments).
        com: Center of mass (after compute_moments).
        quad: 3x3 traceless quadrupole tensor about the center of mass.
        count: Number of bodies beneath this cell.
        index: Stable id assigned in construction order (used by the
            trace generator for addressing).
    """

    center: np.ndarray
    half_size: float
    body_index: int = -1
    children: List[Optional["Cell"]] = field(default_factory=list)
    mass: float = 0.0
    com: np.ndarray = None  # type: ignore[assignment]
    quad: np.ndarray = None  # type: ignore[assignment]
    count: int = 0
    index: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def side(self) -> float:
        return 2.0 * self.half_size

    def octant_of(self, position: np.ndarray) -> int:
        """Which of the eight children would hold ``position``."""
        octant = 0
        for axis in range(3):
            if position[axis] >= self.center[axis]:
                octant |= 1 << axis
        return octant

    def child_center(self, octant: int) -> np.ndarray:
        offset = np.array(
            [
                self.half_size / 2 if (octant >> axis) & 1 else -self.half_size / 2
                for axis in range(3)
            ]
        )
        return self.center + offset


class Octree:
    """A Barnes-Hut octree over a :class:`BodySet`.

    Args:
        bodies: The body set to index.
        max_depth: Safety bound against coincident bodies.
    """

    def __init__(self, bodies: BodySet, max_depth: int = 64) -> None:
        self.bodies = bodies
        self.max_depth = max_depth
        center, half = bodies.bounding_cube()
        self._cells: List[Cell] = []
        #: Per body, the cell indices visited while inserting it —
        #: consumed by the tree-build trace generator.
        self.insertion_paths: List[List[int]] = [[] for _ in range(len(bodies))]
        self.root = self._new_cell(np.asarray(center, dtype=float), float(half))
        for i in range(len(bodies)):
            self._insert(self.root, i, depth=0)
        self.moments_ready = False

    def _new_cell(self, center: np.ndarray, half_size: float) -> Cell:
        cell = Cell(center=center, half_size=half_size, index=len(self._cells))
        self._cells.append(cell)
        return cell

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> List[Cell]:
        return self._cells

    def _insert(self, cell: Cell, body_index: int, depth: int) -> None:
        if depth > self.max_depth:
            raise RuntimeError(
                "octree too deep; coincident bodies or degenerate input"
            )
        self.insertion_paths[body_index].append(cell.index)
        position = self.bodies.positions[body_index]
        if cell.is_leaf and cell.body_index < 0 and cell.count == 0:
            cell.body_index = body_index
            cell.count = 1
            return
        if cell.is_leaf:
            # Split: push the resident body down.
            resident = cell.body_index
            cell.body_index = -1
            cell.children = [None] * 8
            self._insert_into_child(cell, resident, depth)
        self._insert_into_child(cell, body_index, depth)
        cell.count += 1

    def _insert_into_child(self, cell: Cell, body_index: int, depth: int) -> None:
        position = self.bodies.positions[body_index]
        octant = cell.octant_of(position)
        child = cell.children[octant]
        if child is None:
            child = self._new_cell(cell.child_center(octant), cell.half_size / 2)
            cell.children[octant] = child
        self._insert(child, body_index, depth + 1)

    def compute_moments(self, quadrupole: bool = True) -> None:
        """Fill mass, center of mass and quadrupole for every cell."""
        self._compute_moments(self.root, quadrupole)
        self.moments_ready = True

    def _compute_moments(self, cell: Cell, quadrupole: bool) -> None:
        if cell.is_leaf:
            if cell.body_index >= 0:
                cell.mass = float(self.bodies.masses[cell.body_index])
                cell.com = self.bodies.positions[cell.body_index].copy()
            else:
                cell.mass = 0.0
                cell.com = cell.center.copy()
            cell.quad = np.zeros((3, 3))
            return
        mass = 0.0
        weighted = np.zeros(3)
        for child in cell.children:
            if child is None:
                continue
            self._compute_moments(child, quadrupole)
            mass += child.mass
            weighted += child.mass * child.com
        cell.mass = mass
        cell.com = weighted / mass if mass > 0 else cell.center.copy()
        cell.quad = np.zeros((3, 3))
        if quadrupole and mass > 0:
            for child in cell.children:
                if child is None or child.mass == 0:
                    continue
                # Parallel-axis accumulation of the traceless quadrupole.
                d = child.com - cell.com
                r2 = float(d @ d)
                cell.quad += child.quad + child.mass * (
                    3.0 * np.outer(d, d) - r2 * np.eye(3)
                )
        cell.count = sum(c.count for c in cell.children if c is not None)

    def walk(self) -> Iterator[Cell]:
        """Pre-order traversal of all cells."""
        stack = [self.root]
        while stack:
            cell = stack.pop()
            yield cell
            for child in cell.children:
                if child is not None:
                    stack.append(child)

    def depth(self) -> int:
        """Maximum depth of the tree."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            cell, d = stack.pop()
            best = max(best, d)
            for child in cell.children:
                if child is not None:
                    stack.append((child, d + 1))
        return best
