"""Body sets and initial-condition generators for N-body simulation.

The paper's example is a galactic simulation; the Plummer model is the
standard initial distribution for such studies (and is what the SPLASH
BARNES application ships with).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BodySet:
    """A structure-of-arrays collection of bodies.

    Attributes:
        positions: (n, 3) float64.
        velocities: (n, 3) float64.
        masses: (n,) float64.
        accelerations: (n, 3) float64 scratch, filled by force phases.
    """

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray
    accelerations: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3):
            raise ValueError("positions must be (n, 3)")
        if self.velocities.shape != (n, 3):
            raise ValueError("velocities must be (n, 3)")
        if self.masses.shape != (n,):
            raise ValueError("masses must be (n,)")
        if self.accelerations is None:
            self.accelerations = np.zeros((n, 3))

    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @property
    def total_mass(self) -> float:
        return float(self.masses.sum())

    def kinetic_energy(self) -> float:
        return float(
            0.5 * (self.masses * (self.velocities**2).sum(axis=1)).sum()
        )

    def potential_energy(self, gravitational_constant: float = 1.0, softening: float = 0.0) -> float:
        """Exact O(n^2) potential energy (for conservation tests)."""
        pos = self.positions
        total = 0.0
        n = len(self)
        for i in range(n):
            delta = pos[i + 1 :] - pos[i]
            dist = np.sqrt((delta**2).sum(axis=1) + softening**2)
            total -= gravitational_constant * float(
                (self.masses[i] * self.masses[i + 1 :] / dist).sum()
            )
        return total

    def bounding_cube(self, padding: float = 1e-6) -> tuple:
        """(center, half_size) of the smallest cube containing all bodies."""
        lo = self.positions.min(axis=0)
        hi = self.positions.max(axis=0)
        center = 0.5 * (lo + hi)
        half = float((hi - lo).max()) * 0.5 + padding
        return center, half


def plummer_model(n: int, seed: int = 0, total_mass: float = 1.0) -> BodySet:
    """Sample ``n`` bodies from a Plummer sphere (Aarseth et al. 1974
    rejection method), the standard galactic initial condition."""
    rng = np.random.default_rng(seed)
    masses = np.full(n, total_mass / n)
    # Radii from the inverse CDF of the Plummer profile.
    u = rng.uniform(1e-10, 1 - 1e-10, size=n)
    radii = (u ** (-2.0 / 3.0) - 1.0) ** -0.5
    radii = np.minimum(radii, 10.0)  # clip the rare far outliers
    positions = _random_directions(rng, n) * radii[:, None]
    # Velocities by von Neumann rejection against q^2 (1-q^2)^(7/2).
    velocities = np.empty((n, 3))
    escape = np.sqrt(2.0) * (1.0 + radii**2) ** -0.25
    for i in range(n):
        while True:
            q = rng.uniform(0.0, 1.0)
            g = q * q * (1.0 - q * q) ** 3.5
            if rng.uniform(0.0, 0.1) < g:
                break
        speed = q * escape[i]
        velocities[i] = _random_directions(rng, 1)[0] * speed
    return BodySet(positions=positions, velocities=velocities, masses=masses)


def uniform_cube(n: int, seed: int = 0, total_mass: float = 1.0) -> BodySet:
    """Bodies uniformly distributed in the unit cube, at rest."""
    rng = np.random.default_rng(seed)
    return BodySet(
        positions=rng.uniform(0.0, 1.0, size=(n, 3)),
        velocities=np.zeros((n, 3)),
        masses=np.full(n, total_mass / n),
    )


def _random_directions(rng: np.random.Generator, n: int) -> np.ndarray:
    """Unit vectors uniform on the sphere."""
    v = rng.standard_normal((n, 3))
    norm = np.linalg.norm(v, axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    return v / norm
