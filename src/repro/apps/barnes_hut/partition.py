"""Partitioning bodies among processors.

The paper notes that "if the partitioning of particles among processors
is done appropriately, most of these data will be reused in computing
the forces on successive particles" (Section 6.2).  We use Morton
(Z-order) curve partitioning: sort bodies along a space-filling curve
and give each processor a contiguous range — a practical approximation
of the costzones scheme of Singh et al. that preserves the spatial
locality the lev2WS measurement depends on.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.barnes_hut.bodies import BodySet


def morton_key(position: np.ndarray, lo: np.ndarray, inv_extent: np.ndarray, bits: int = 10) -> int:
    """Interleaved-bits Morton key of one 3-D position."""
    scale = (1 << bits) - 1
    coords = np.clip(((position - lo) * inv_extent * scale).astype(np.int64), 0, scale)
    key = 0
    for bit in range(bits):
        for axis in range(3):
            key |= ((int(coords[axis]) >> bit) & 1) << (3 * bit + axis)
    return key


def morton_order(bodies: BodySet, bits: int = 10) -> np.ndarray:
    """Body indices sorted along the Morton curve."""
    lo = bodies.positions.min(axis=0)
    hi = bodies.positions.max(axis=0)
    extent = np.maximum(hi - lo, 1e-12)
    inv_extent = 1.0 / extent
    keys = np.array(
        [morton_key(p, lo, inv_extent, bits) for p in bodies.positions],
        dtype=np.int64,
    )
    return np.argsort(keys, kind="stable")


def morton_partition(bodies: BodySet, num_processors: int) -> List[np.ndarray]:
    """Split bodies into ``num_processors`` equal contiguous Morton
    ranges.  Returns one index array per processor."""
    if num_processors < 1:
        raise ValueError("need at least one processor")
    order = morton_order(bodies)
    return [np.asarray(chunk) for chunk in np.array_split(order, num_processors)]


def costzone_partition(
    bodies: BodySet, costs: np.ndarray, num_processors: int
) -> List[np.ndarray]:
    """Costzones partitioning (Singh et al.): split the Morton order by
    *cumulative work* rather than body count.

    ``costs`` is the per-body work estimate — in Barnes-Hut, the
    interaction count of the previous time-step, which the costzones
    scheme exploits because the distribution changes slowly between
    steps.  Each processor receives a contiguous Morton range of
    approximately equal total cost, preserving both balance and the
    spatial locality the lev2WS measurement relies on.
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    costs = np.asarray(costs, dtype=float)
    if costs.shape != (len(bodies),):
        raise ValueError("need one cost per body")
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    order = morton_order(bodies)
    cumulative = np.cumsum(costs[order])
    total = float(cumulative[-1]) if len(cumulative) else 0.0
    if total == 0.0:
        return morton_partition(bodies, num_processors)
    boundaries = [
        int(np.searchsorted(cumulative, total * k / num_processors))
        for k in range(1, num_processors)
    ]
    return [
        np.asarray(chunk)
        for chunk in np.split(order, boundaries)
    ]
