"""Time integration for the Barnes-Hut simulation.

Leapfrog (kick-drift-kick) integration, the standard for collisionless
N-body work: time-reversible and symplectic, so energy is conserved to
second order in the time-step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.apps.barnes_hut.bodies import BodySet
from repro.apps.barnes_hut.force import WalkStats, compute_accelerations


@dataclass
class StepRecord:
    """Diagnostics for one time-step."""

    step: int
    kinetic_energy: float
    interactions: int


class Simulation:
    """A Barnes-Hut N-body simulation.

    Args:
        bodies: Initial conditions (mutated in place).
        theta: Opening-angle accuracy parameter.
        dt: Time-step.
        softening: Plummer softening length.
        quadrupole: Use quadrupole moments in cell interactions.
    """

    def __init__(
        self,
        bodies: BodySet,
        theta: float = 1.0,
        dt: float = 0.01,
        softening: float = 0.05,
        quadrupole: bool = True,
    ) -> None:
        if theta < 0:
            raise ValueError("theta must be non-negative")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.bodies = bodies
        self.theta = theta
        self.dt = dt
        self.softening = softening
        self.quadrupole = quadrupole
        self.time = 0.0
        self.history: List[StepRecord] = []
        self._acc = compute_accelerations(
            bodies, theta, softening=softening, quadrupole=quadrupole
        )

    def step(self, num_steps: int = 1) -> None:
        """Advance the simulation ``num_steps`` leapfrog steps."""
        for _ in range(num_steps):
            half_kick = 0.5 * self.dt * self._acc
            self.bodies.velocities += half_kick
            self.bodies.positions += self.dt * self.bodies.velocities
            stats = WalkStats()
            self._acc = compute_accelerations(
                self.bodies,
                self.theta,
                softening=self.softening,
                quadrupole=self.quadrupole,
                stats=stats,
            )
            self.bodies.velocities += 0.5 * self.dt * self._acc
            self.time += self.dt
            self.history.append(
                StepRecord(
                    step=len(self.history),
                    kinetic_energy=self.bodies.kinetic_energy(),
                    interactions=stats.interactions,
                )
            )

    def total_energy(self) -> float:
        """Exact kinetic + potential energy (O(n^2); for tests)."""
        return self.bodies.kinetic_energy() + self.bodies.potential_energy(
            softening=self.softening
        )
