"""Hierarchical N-body: the Barnes-Hut method (paper Section 6).

A 3-D galactic simulation: bodies are inserted into an octree whose
internal cells carry centers of mass and quadrupole moments; the force
on each body is computed by a tree walk that opens a cell when
``l/d >= theta`` and otherwise interacts with its multipole
approximation.
"""

from repro.apps.barnes_hut.bodies import BodySet, plummer_model, uniform_cube
from repro.apps.barnes_hut.force import compute_accelerations, direct_sum
from repro.apps.barnes_hut.model import BarnesHutModel
from repro.apps.barnes_hut.octree import Octree
from repro.apps.barnes_hut.partition import morton_partition
from repro.apps.barnes_hut.simulate import Simulation
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator

__all__ = [
    "BarnesHutModel",
    "BarnesHutTraceGenerator",
    "BodySet",
    "Octree",
    "Simulation",
    "compute_accelerations",
    "direct_sum",
    "morton_partition",
    "plummer_model",
    "uniform_cube",
]
