"""Shared-address-space layout helpers.

Application trace generators allocate named regions (matrices, grids,
octree node pools, voxel arrays) from an :class:`AddressSpace` so that
distinct data structures never alias and traces from different program
phases compose correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Region:
    """A contiguous, aligned run of addresses in the shared space.

    Attributes:
        name: Human-readable label (``"matrix A"``, ``"octree cells"``).
        base: First byte address.
        size: Extent in bytes.
    """

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size

    def addr(self, offset_bytes: int) -> int:
        """Byte address at ``offset_bytes`` into the region (bounds-checked)."""
        if not 0 <= offset_bytes < self.size:
            raise IndexError(
                f"offset {offset_bytes} outside region {self.name!r} of size {self.size}"
            )
        return self.base + offset_bytes

    def element(self, index: int, element_size: int = 8) -> int:
        """Byte address of element ``index`` of ``element_size`` bytes."""
        return self.addr(index * element_size)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """A bump allocator for laying out application data structures.

    All regions are aligned to ``alignment`` bytes (default 64, a typical
    cache-line multiple) so that block-granular cache simulation never
    sees false sharing between logically distinct structures.
    """

    def __init__(self, alignment: int = 64) -> None:
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        self.alignment = alignment
        self._next = alignment  # keep address 0 unused as a sentinel
        self._regions: Dict[str, Region] = {}

    def allocate(self, name: str, size_bytes: int) -> Region:
        """Allocate a new named region of ``size_bytes`` bytes."""
        if size_bytes <= 0:
            raise ValueError("region size must be positive")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        base = self._next
        aligned = (size_bytes + self.alignment - 1) & ~(self.alignment - 1)
        self._next = base + aligned
        region = Region(name=name, base=base, size=size_bytes)
        self._regions[name] = region
        return region

    def allocate_array(
        self, name: str, count: int, element_size: int = 8
    ) -> Region:
        """Allocate an array of ``count`` elements."""
        return self.allocate(name, count * element_size)

    def region(self, name: str) -> Region:
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    @property
    def total_allocated(self) -> int:
        """Bytes allocated so far (including alignment padding)."""
        return self._next - self.alignment

    def owner_of(self, addr: int) -> Region:
        """The region containing ``addr`` (linear scan; debugging aid)."""
        for region in self._regions.values():
            if region.contains(addr):
                return region
        raise KeyError(f"address {addr:#x} not in any region")
