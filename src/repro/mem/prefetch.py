"""Prefetchability analysis.

The paper repeatedly qualifies miss rates by predictability: LU's
misses "are predictable enough to be easily prefetched" (Section 3.2),
the FFT's "can be easily prefetched" (Section 5.2), while Barnes-Hut's
"are not predictable enough to be easily prefetched" (Section 6.2) and
volume rendering's "access patterns are not regular enough to be easily
prefetched" (Section 7.2).

This module quantifies that claim: a stride prefetcher model measures
what fraction of an application's cache misses a simple
sequential/stride predictor would have covered.  Regular kernels (LU,
CG, FFT) should score high; pointer-chasing ones (Barnes-Hut) and
data-dependent ones (volume rendering) low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.mem.cache import FullyAssociativeCache
from repro.mem.trace import READ, Trace


@dataclass
class PrefetchStats:
    """Outcome of a prefetch-coverage run.

    Attributes:
        misses: Demand misses of the baseline cache.
        covered: Misses whose block had been predicted by the stride
            table before the demand access arrived.
    """

    misses: int = 0
    covered: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of misses a stride prefetcher would have hidden."""
        return self.covered / self.misses if self.misses else 0.0


class StridePrefetcher:
    """A PC-less, region-based stride predictor.

    State: for each address region (high-order bits), the last accessed
    block and the last observed stride.  When two consecutive accesses
    to a region repeat the same stride, the next ``degree`` blocks along
    that stride are predicted.

    This deliberately models early-1990s sequential/stride hardware
    prefetching (the technology the paper had in mind), not modern
    correlation prefetchers.
    """

    def __init__(
        self,
        block_size: int = 8,
        region_bits: int = 16,
        degree: int = 2,
        table_capacity: int = 4096,
    ) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.block_size = block_size
        self.region_bits = region_bits
        self.degree = degree
        self.table_capacity = table_capacity
        self._last_block: Dict[int, int] = {}
        self._last_stride: Dict[int, int] = {}
        self._predicted: Dict[int, None] = {}  # ordered set of blocks

    def _region_of(self, block: int) -> int:
        return (block * self.block_size) >> self.region_bits

    def observe(self, block: int) -> None:
        """Train on one accessed block and emit predictions."""
        region = self._region_of(block)
        last = self._last_block.get(region)
        if last is not None:
            stride = block - last
            if stride == 0:
                # Re-access of the same line carries no direction
                # information; do not clobber the trained stride.
                return
            if stride == self._last_stride.get(region):
                for i in range(1, self.degree + 1):
                    self._remember(block + i * stride)
            self._last_stride[region] = stride
        self._last_block[region] = block

    def _remember(self, block: int) -> None:
        if block in self._predicted:
            return
        self._predicted[block] = None
        while len(self._predicted) > self.table_capacity:
            oldest = next(iter(self._predicted))
            del self._predicted[oldest]

    def was_predicted(self, block: int) -> bool:
        """True if the block is currently covered by a prediction (the
        prediction is consumed)."""
        if block in self._predicted:
            del self._predicted[block]
            return True
        return False


def measure_prefetch_coverage(
    trace: Trace,
    cache_bytes: int,
    block_size: int = 32,
    degree: int = 4,
    region_bits: int = 9,
    reads_only: bool = True,
) -> PrefetchStats:
    """Fraction of demand misses covered by a stride prefetcher.

    Args:
        trace: The reference stream.
        cache_bytes: Baseline cache capacity (choose the post-lev1
            plateau region so the remaining misses are the interesting
            ones).
        block_size: Line size.  The default 32 bytes absorbs
            intra-record spatial locality (e.g. reading one octree
            cell's fields) so coverage reflects *inter*-record
            predictability, which is what the paper's claims are about.
        degree: Prefetch depth.
        region_bits: log2 of the stride-table region size; small
            regions separate interleaved streams, standing in for the
            PC indexing of hardware stride prefetchers.
        reads_only: Count only read misses (the paper's focus).

    Returns:
        :class:`PrefetchStats` with miss coverage.
    """
    cache = FullyAssociativeCache(cache_bytes, block_size)
    prefetcher = StridePrefetcher(
        block_size=block_size, region_bits=region_bits, degree=degree
    )
    stats = PrefetchStats()
    for block, kind in zip(
        trace.block_ids(block_size).tolist(), trace.kinds.tolist()
    ):
        hit = cache.access(block * block_size, kind)
        if not hit and (kind == READ or not reads_only):
            stats.misses += 1
            if prefetcher.was_predicted(block):
                stats.covered += 1
        prefetcher.observe(block)
    return stats
