"""Memory-system substrate: cache simulators, stack-distance profiling,
reference traces, and a shared-address-space multiprocessor memory model.

This subpackage is the measurement instrument of the reproduction.  The
paper determines working sets by simulating fully associative LRU caches
of many sizes and looking for knees in the miss-rate-versus-cache-size
curve (Section 2.2).  We provide:

- :class:`~repro.mem.cache.FullyAssociativeCache` — the explicit simulator.
- :class:`~repro.mem.setassoc.SetAssociativeCache` — limited-associativity
  caches for the Section 6.4 discussion of direct-mapped caches.
- :class:`~repro.mem.stack_distance.StackDistanceProfiler` — Mattson's
  algorithm, which produces exact fully associative LRU miss rates at
  *every* cache size in a single pass over the trace.
- :class:`~repro.mem.multiproc.MultiprocessorMemory` — per-processor
  private caches over a shared address space with write-invalidate
  sharing, used to separate communication (coherence) misses from
  capacity misses.
"""

from repro.mem.address import AddressSpace, Region
from repro.mem.cache import CacheStats, FullyAssociativeCache
from repro.mem.multiproc import MultiprocessorMemory, ProcessorStats
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import StackDistanceProfiler
from repro.mem.trace import Access, Trace, READ, WRITE

__all__ = [
    "Access",
    "AddressSpace",
    "CacheStats",
    "FullyAssociativeCache",
    "MultiprocessorMemory",
    "ProcessorStats",
    "READ",
    "Region",
    "SetAssociativeCache",
    "StackDistanceProfiler",
    "Trace",
    "WRITE",
]
