"""Set-associative and direct-mapped cache simulators.

Section 6.4 of the paper observes that with direct-mapped caches the
knees of the Barnes-Hut miss-rate curve are less well defined and that
the direct-mapped capacity required to hold the important working set is
about three times the fully associative capacity.  This module provides
the limited-associativity instrument used to reproduce that study
(``experiments/assoc_study.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.mem.cache import CacheStats
from repro.mem.lru import LRUList
from repro.mem.trace import READ, Trace
from repro.obs.metrics import hot_loop_sampler
from repro.runtime.budget import CHECK_MASK, Budget, active_budget


class SetAssociativeCache:
    """An ``associativity``-way set-associative LRU cache.

    ``associativity=1`` gives a direct-mapped cache.  Indexing is the
    conventional modulo scheme: block address modulo number of sets.

    Args:
        capacity_bytes: Total capacity in bytes.
        block_size: Line size in bytes (power of two).
        associativity: Ways per set; must divide the number of blocks.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 8,
        associativity: int = 1,
    ) -> None:
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError(
                f"block_size must be a positive power of two (got {block_size})"
            )
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive (got {capacity_bytes})"
            )
        num_blocks = capacity_bytes // block_size
        if num_blocks < 1:
            raise ValueError(
                f"capacity must hold at least one block "
                f"(capacity_bytes={capacity_bytes} < block_size={block_size})"
            )
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1 (got {associativity})")
        if num_blocks % associativity != 0:
            raise ValueError(
                f"associativity must divide the number of blocks "
                f"({associativity} does not divide {num_blocks})"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = num_blocks // associativity
        self._sets = [LRUList() for _ in range(self.num_sets)]
        self._ever_seen: set = set()
        self.stats = CacheStats()

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1

    def access(self, addr: int, kind: int = READ) -> bool:
        """Issue one reference.  Returns True on hit, False on miss."""
        block = addr // self.block_size
        index = block % self.num_sets
        cache_set = self._sets[index]
        if kind == READ:
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        hit = cache_set.touch(block)
        if not hit:
            if kind == READ:
                self.stats.read_misses += 1
            else:
                self.stats.write_misses += 1
            if block not in self._ever_seen:
                self.stats.cold_misses += 1
                self._ever_seen.add(block)
            if len(cache_set) > self.associativity:
                cache_set.evict_lru()
        return hit

    def run(self, trace: Trace, budget: Optional[Budget] = None) -> CacheStats:
        """Run a whole trace through the cache; returns cumulative stats.

        A sharded :class:`~repro.mem.shards.StreamingTrace` is consumed
        chunk-wise in bounded memory, with checkpoint/resume at shard
        boundaries when a stream configuration is active.

        Args:
            trace: The reference stream.
            budget: Optional wall-clock :class:`Budget` polled every
                few thousand references (defaults to the ambient
                campaign budget, if any).
        """
        if hasattr(trace, "iter_chunks"):
            from repro.mem.streamsim import run_setassoc_streamed

            return run_setassoc_streamed(self, trace, budget=budget)
        from repro.obs import timeline as obs_timeline

        recorder = obs_timeline.active_recorder()
        if recorder is None:
            return self._run_impl(trace, budget=budget)
        import time as _time

        pre = self.stats
        pre_accesses, pre_misses = pre.accesses, pre.misses
        pre_cold = pre.cold_misses
        t0 = _time.perf_counter()
        stats = self._run_impl(trace, budget=budget)
        obs_timeline.record_cache_chunk(
            recorder,
            "setassoc",
            trace,
            block_size=self.block_size,
            capacity_bytes=self.capacity_bytes,
            refs=len(trace),
            counted=stats.accesses - pre_accesses,
            cold=stats.cold_misses - pre_cold,
            misses_total=stats.misses - pre_misses,
            elapsed=_time.perf_counter() - t0,
        )
        return stats

    def _run_impl(
        self, trace: Trace, budget: Optional[Budget] = None
    ) -> CacheStats:
        from repro.mem import kernels

        if kernels.guard_run("setassoc", self, trace, budget=budget):
            return self.stats
        if budget is None:
            budget = active_budget()
        sampler = hot_loop_sampler("mem.setassoc")
        misses_before = self.stats.misses
        accesses_before = self.stats.accesses
        for i, (block, kind) in enumerate(
            zip(trace.block_ids(self.block_size).tolist(), trace.kinds.tolist())
        ):
            if not (i & CHECK_MASK):
                if budget is not None:
                    budget.check("set-associative cache simulation")
                if sampler is not None:
                    sampler.tick(i)
            self.access(block * self.block_size, kind)
        if sampler is not None:
            sampler.finish(
                refs=self.stats.accesses - accesses_before,
                misses=self.stats.misses - misses_before,
            )
        return self.stats

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        self._sets = [LRUList() for _ in range(self.num_sets)]
        self._ever_seen = set()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every set, history and stats.

        Per-set recency orders are flattened into one list plus a
        per-set length vector to keep the JSON shallow.
        """
        orders = []
        counts = []
        for cache_set in self._sets:
            keys = list(cache_set.keys_mru_to_lru())
            orders.extend(keys)
            counts.append(len(keys))
        return {
            "capacity_bytes": self.capacity_bytes,
            "block_size": self.block_size,
            "associativity": self.associativity,
            "set_orders_mru_to_lru": orders,
            "set_counts": counts,
            "ever_seen": sorted(self._ever_seen),
            "stats": {
                "reads": self.stats.reads,
                "writes": self.stats.writes,
                "read_misses": self.stats.read_misses,
                "write_misses": self.stats.write_misses,
                "cold_misses": self.stats.cold_misses,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (geometry must match)."""
        for field_name in ("capacity_bytes", "block_size", "associativity"):
            if state.get(field_name) != getattr(self, field_name):
                raise ValueError(
                    f"checkpoint {field_name}={state.get(field_name)!r} does "
                    f"not match this cache's "
                    f"{field_name}={getattr(self, field_name)!r}"
                )
        counts = [int(c) for c in state["set_counts"]]
        if len(counts) != self.num_sets:
            raise ValueError(
                f"checkpoint has {len(counts)} sets, cache has {self.num_sets}"
            )
        orders = [int(k) for k in state["set_orders_mru_to_lru"]]
        if len(orders) != sum(counts):
            raise ValueError("checkpoint set orders disagree with set counts")
        sets = []
        offset = 0
        for count in counts:
            cache_set = LRUList()
            for key in reversed(orders[offset : offset + count]):
                cache_set.touch(key)
            sets.append(cache_set)
            offset += count
        self._sets = sets
        self._ever_seen = {int(b) for b in state["ever_seen"]}
        self.stats = CacheStats(**{k: int(v) for k, v in state["stats"].items()})
