"""Shared-address-space multiprocessor memory simulation.

The paper simulates "a cache-coherent, shared-address-space
multiprocessor architecture, with each processor having a single level
of cache and an equal fraction of the total main memory" (Section 2.2).
This module provides that architecture: ``P`` private fully associative
LRU caches over one shared address space with a write-invalidate
sharing protocol, and miss classification into

- **cold** misses: first touch of a block by a given processor,
- **coherence** (communication) misses: re-fetch of a block that another
  processor's write invalidated — these are the paper's *inherent
  communication* misses and persist even with infinite caches,
- **capacity** misses: re-fetch of a block the processor's own cache
  evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.mem.lru import LRUList
from repro.mem.trace import Access, READ, Trace, iter_interleave_round_robin


@dataclass
class ProcessorStats:
    """Per-processor access and miss counters."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    cold_misses: int = 0
    coherence_misses: int = 0
    capacity_misses: int = 0
    invalidations_received: int = 0
    #: Read misses to blocks last written by a *different* processor —
    #: producer-consumer communication, counted even on the consumer's
    #: first (cold) touch.
    remote_reads: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def read_miss_rate(self) -> float:
        return self.read_misses / self.reads if self.reads else 0.0

    @property
    def communication_miss_rate(self) -> float:
        """Coherence misses per access — the floor that remains with an
        infinite cache (the paper's 'communication miss rate')."""
        return self.coherence_misses / self.accesses if self.accesses else 0.0


class MultiprocessorMemory:
    """``P`` private caches over one shared address space.

    Args:
        num_processors: Number of processors (and private caches).
        capacity_bytes: Private cache capacity.  ``None`` simulates
            infinite caches, which isolates the inherent communication
            miss rate.
        block_size: Cache line size in bytes.
    """

    def __init__(
        self,
        num_processors: int,
        capacity_bytes: "int | None" = None,
        block_size: int = 8,
    ) -> None:
        if num_processors < 1:
            raise ValueError("need at least one processor")
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError("block_size must be a positive power of two")
        if capacity_bytes is not None and capacity_bytes < block_size:
            raise ValueError("capacity must hold at least one block")
        self.num_processors = num_processors
        self.block_size = block_size
        self.capacity_blocks = (
            None if capacity_bytes is None else capacity_bytes // block_size
        )
        self._caches = [LRUList() for _ in range(num_processors)]
        self._ever_seen: List[Set[int]] = [set() for _ in range(num_processors)]
        self._invalidated: List[Set[int]] = [set() for _ in range(num_processors)]
        # Directory: block -> set of processors with a valid copy.
        self._sharers: Dict[int, Set[int]] = {}
        # Block -> processor that last wrote it.
        self._last_writer: Dict[int, int] = {}
        self.stats = [ProcessorStats() for _ in range(num_processors)]

    def access(self, pid: int, addr: int, kind: int = READ) -> bool:
        """Issue one reference from processor ``pid``.

        Returns True on hit.  A write invalidates all other valid
        copies (write-invalidate protocol).
        """
        block = addr // self.block_size
        cache = self._caches[pid]
        stats = self.stats[pid]
        if kind == READ:
            stats.reads += 1
        else:
            stats.writes += 1

        hit = cache.touch(block)
        if not hit:
            if kind == READ:
                stats.read_misses += 1
                writer = self._last_writer.get(block)
                if writer is not None and writer != pid:
                    stats.remote_reads += 1
            else:
                stats.write_misses += 1
            if block in self._invalidated[pid]:
                stats.coherence_misses += 1
                self._invalidated[pid].discard(block)
            elif block not in self._ever_seen[pid]:
                stats.cold_misses += 1
            else:
                stats.capacity_misses += 1
            self._ever_seen[pid].add(block)
            if self.capacity_blocks is not None and len(cache) > self.capacity_blocks:
                victim = cache.evict_lru()
                sharers = self._sharers.get(victim)
                if sharers is not None:
                    sharers.discard(pid)
            self._sharers.setdefault(block, set()).add(pid)

        if kind != READ:
            sharers = self._sharers.setdefault(block, set())
            for other in list(sharers):
                if other == pid:
                    continue
                other_cache = self._caches[other]
                if block in other_cache:
                    other_cache.remove(block)
                    self._invalidated[other].add(block)
                    self.stats[other].invalidations_received += 1
                sharers.discard(other)
            sharers.add(pid)
            self._last_writer[block] = pid
        return hit

    def run(
        self, interleaved: Iterable[Tuple[int, Access]]
    ) -> List[ProcessorStats]:
        """Run an interleaved multiprocessor reference stream.

        Accepts any iterable — a materialized list or the lazy
        :func:`~repro.mem.trace.iter_interleave_round_robin` stream.
        """
        for pid, access in interleaved:
            self.access(pid, access.addr, access.kind)
        return self.stats

    def run_traces(self, traces: Sequence[Trace]) -> List[ProcessorStats]:
        """Round-robin interleave per-processor traces and run them.

        The interleaving is lazy, so out-of-core per-processor traces
        are merged without ever materializing the combined stream.
        """
        if len(traces) != self.num_processors:
            raise ValueError(
                f"expected {self.num_processors} traces, got {len(traces)}"
            )
        return self.run(iter_interleave_round_robin(traces))

    def reset_stats(self) -> None:
        """Zero counters without flushing cache or directory state.

        Used to exclude cold-start effects: run warm-up iterations, reset,
        then measure steady-state miss rates (Section 2.2).
        """
        self.stats = [ProcessorStats() for _ in range(self.num_processors)]

    def aggregate(self) -> ProcessorStats:
        """Sum of all per-processor counters."""
        total = ProcessorStats()
        for stats in self.stats:
            total.reads += stats.reads
            total.writes += stats.writes
            total.read_misses += stats.read_misses
            total.write_misses += stats.write_misses
            total.cold_misses += stats.cold_misses
            total.coherence_misses += stats.coherence_misses
            total.capacity_misses += stats.capacity_misses
            total.invalidations_received += stats.invalidations_received
            total.remote_reads += stats.remote_reads
        return total
