"""An O(1) LRU ordering structure.

Used by the explicit cache simulators.  Python's ``OrderedDict`` provides
the same operations, but an explicit implementation keeps the eviction
logic auditable and lets tests assert internal invariants (doubly-linked
list consistency) with hypothesis.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: int) -> None:
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LRUList:
    """Tracks recency of a set of integer keys.

    The most recently used key is at the head; the least recently used at
    the tail.  All operations are O(1).
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None
        self._tail: Optional[_Node] = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: int) -> bool:
        return key in self._nodes

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = None
        node.next = None

    def _push_front(self, node: _Node) -> None:
        node.next = self._head
        node.prev = None
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def touch(self, key: int) -> bool:
        """Mark ``key`` most-recently-used.

        Returns True if the key was already present (a hit), False if it
        was inserted fresh (a miss).
        """
        node = self._nodes.get(key)
        if node is not None:
            if self._head is not node:
                self._unlink(node)
                self._push_front(node)
            return True
        node = _Node(key)
        self._nodes[key] = node
        self._push_front(node)
        return False

    def evict_lru(self) -> int:
        """Remove and return the least recently used key."""
        if self._tail is None:
            raise KeyError("evict_lru() on empty LRUList")
        node = self._tail
        self._unlink(node)
        del self._nodes[node.key]
        return node.key

    def remove(self, key: int) -> None:
        """Remove ``key`` regardless of its position."""
        node = self._nodes.pop(key)
        self._unlink(node)

    def lru_key(self) -> int:
        """The least recently used key, without removing it."""
        if self._tail is None:
            raise KeyError("lru_key() on empty LRUList")
        return self._tail.key

    def mru_key(self) -> int:
        """The most recently used key, without removing it."""
        if self._head is None:
            raise KeyError("mru_key() on empty LRUList")
        return self._head.key

    def keys_mru_to_lru(self) -> Iterator[int]:
        """Iterate keys from most to least recently used (for tests)."""
        node = self._head
        while node is not None:
            yield node.key
            node = node.next

    def check_invariants(self) -> None:
        """Assert structural consistency (used by property-based tests)."""
        seen = []
        node = self._head
        prev = None
        while node is not None:
            assert node.prev is prev, "broken prev link"
            seen.append(node.key)
            prev = node
            node = node.next
        assert prev is self._tail, "tail does not terminate the list"
        assert len(seen) == len(self._nodes), "node map / list length mismatch"
        assert set(seen) == set(self._nodes), "node map / list key mismatch"
