"""Sharded, crash-safe trace directories (format version 3).

A *trace directory* (suffix ``.trd``) stores one logical reference
stream as a sequence of columnar ``.npz`` shards under a checksummed
``manifest.json``::

    lu-p0.trd/
        manifest.json        # totals, per-shard digests, CRC-framed
        shards.wal           # WAL1 journal: one shard-sealed record/shard
        shard-00000.npz      # addrs/kinds columns + CRC32, <= shard_refs
        shard-00001.npz
        ...

Each shard carries its own CRC32 over the canonical little-endian
array bytes (the same checksum discipline as single-file traces,
:mod:`repro.mem.tracefile`), and the manifest additionally records the
SHA-256 of every shard *file* plus a combined ``content_sha256`` over
the logical reference stream, so damage anywhere — a truncated shard,
a flipped bit, a missing file, a manifest that disagrees with the
directory — is detected before a single reference is replayed.

Why shards: ROADMAP item 2 ("1B references on a laptop").  The paper's
full-scale problems (10,000x10,000 LU, 64M-point FFT) emit reference
streams that cannot live in memory; a generator fills a
:class:`StreamingTraceBuilder` which spills one bounded chunk at a
time, and the simulators consume the resulting :class:`StreamingTrace`
chunk-wise — never holding more than one shard per producer or
consumer.  Crash safety rides on the shared atomic-write discipline of
:mod:`repro.runtime.iofault` (fault site ``"shard"``): a SIGKILL at any
instruction leaves either a fully valid shard/manifest or a staging
directory (suffix ``.trd.tmp``) that validation flags as an expected
crash leftover, never a silently short trace.

Simulator checkpoints (see :mod:`repro.mem.streamsim`) use the
CRC-framed single-line format written here::

    SIMCKPT1 <crc32:08x> <canonical-json>

written atomically at shard boundaries (fault site ``"simckpt"``), so
a kill mid-simulation resumes from the last boundary and completes
with results byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.mem.trace import READ, WRITE, Access, Trace, TraceBuilder
from repro.runtime.errors import TraceFileWriteError
from repro.runtime.iofault import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
    io_replace,
)

#: Bumped when the on-disk layout changes.  Versions 1-2 are the
#: single-file ``.npz`` formats of :mod:`repro.mem.tracefile`; version
#: 3 is the sharded directory layout.
SHARD_FORMAT_VERSION = 3

#: Filenames inside a trace directory.
MANIFEST_FILENAME = "manifest.json"
SHARDS_WAL_FILENAME = "shards.wal"

#: Directory suffixes: a complete trace directory vs. an in-progress
#: (or crash-abandoned) staging directory.
TRACE_DIR_SUFFIX = ".trd"
STAGING_SUFFIX = ".trd.tmp"

#: Injection-site tags for :mod:`repro.runtime.iofault`.
SHARD_SITE = "shard"
SIMCKPT_SITE = "simckpt"

#: Default spill threshold: references buffered per producer before a
#: shard is sealed (2**18 refs ~ 2.25 MiB of columns).
DEFAULT_SHARD_REFS = 1 << 18

#: Environment variables carrying the ambient stream configuration to
#: worker subprocesses (propagated by ``worker_environment()``).
STREAM_DIR_ENV = "REPRO_STREAM_DIR"
SHARD_REFS_ENV = "REPRO_SHARD_REFS"

#: Magic for the CRC-framed simulator checkpoint line.
SIMCKPT_MAGIC = "SIMCKPT1"


class TraceShardCorruptError(ValueError):
    """A trace directory failed an integrity check.

    Subclasses :class:`ValueError` for symmetry with
    :class:`repro.mem.tracefile.TraceFileCorruptError`.
    """


def shard_name(index: int) -> str:
    """Canonical filename of shard ``index``."""
    return f"shard-{index:05d}.npz"


def _canonical_columns(addrs: np.ndarray, kinds: np.ndarray) -> Tuple[bytes, bytes]:
    """Little-endian canonical bytes of both columns (checksum input)."""
    canonical_addrs = np.ascontiguousarray(addrs, dtype="<i8")
    canonical_kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
    return canonical_addrs.tobytes(), canonical_kinds.tobytes()


def _shard_crc(addrs: np.ndarray, kinds: np.ndarray) -> int:
    addr_bytes, kind_bytes = _canonical_columns(addrs, kinds)
    return zlib.crc32(kind_bytes, zlib.crc32(addr_bytes))


def _manifest_body_bytes(manifest: Dict[str, object]) -> bytes:
    """Canonical bytes of the manifest minus its own checksum field."""
    body = {k: v for k, v in manifest.items() if k != "checksum"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


class ShardWriter:
    """Seals bounded columnar chunks into CRC'd + hashed shard files.

    Writes into ``directory`` (the caller manages staging/rename) via
    :func:`~repro.runtime.iofault.atomic_write_bytes` at fault site
    ``"shard"``, journals one ``shard-sealed`` record per shard into
    ``shards.wal``, and accumulates the manifest.  A write failure
    (ENOSPC, EIO, a vanished directory) surfaces as the typed
    :class:`~repro.runtime.errors.TraceFileWriteError`.
    """

    def __init__(self, directory: Union[str, Path], shard_refs: int) -> None:
        if shard_refs < 1:
            raise ValueError(f"shard_refs must be >= 1 (got {shard_refs})")
        self.directory = Path(directory)
        self.shard_refs = shard_refs
        self.shards: List[Dict[str, object]] = []
        self.refs = 0
        self.reads = 0
        self.writes = 0
        # One running hash per column: concatenating each column across
        # shards reproduces the full column regardless of where the
        # shard boundaries fall, so the combined digest is a pure
        # content identity, independent of ``shard_refs``.
        self._addr_hash = hashlib.sha256()
        self._kind_hash = hashlib.sha256()
        self._journal = None
        self._finalized = False

    def _ensure_journal(self):
        if self._journal is None:
            from repro.runtime.journal import Journal

            self._journal = Journal(self.directory / SHARDS_WAL_FILENAME)
        return self._journal

    def write_shard(self, addrs: np.ndarray, kinds: np.ndarray) -> Dict[str, object]:
        """Seal one chunk as the next shard; returns its manifest entry."""
        if self._finalized:
            raise RuntimeError("ShardWriter already finalized")
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        if addrs.shape != kinds.shape:
            raise ValueError("addrs and kinds must have the same length")
        index = len(self.shards)
        name = shard_name(index)
        crc = _shard_crc(addrs, kinds)
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            addrs=addrs,
            kinds=kinds,
            version=np.int64(SHARD_FORMAT_VERSION),
            index=np.int64(index),
            checksum=np.int64(crc),
        )
        data = buffer.getvalue()
        try:
            atomic_write_bytes(self.directory / name, data, site=SHARD_SITE)
        except OSError as exc:
            raise TraceFileWriteError(
                f"cannot write trace shard {self.directory / name}: {exc}"
            ) from exc
        reads = int(np.count_nonzero(kinds == READ))
        entry: Dict[str, object] = {
            "index": index,
            "name": name,
            "refs": int(addrs.shape[0]),
            "reads": reads,
            "writes": int(addrs.shape[0]) - reads,
            "crc32": f"{crc:08x}",
            "sha256": hashlib.sha256(data).hexdigest(),
        }
        self.shards.append(entry)
        self.refs += entry["refs"]
        self.reads += entry["reads"]
        self.writes += entry["writes"]
        addr_bytes, kind_bytes = _canonical_columns(addrs, kinds)
        self._addr_hash.update(addr_bytes)
        self._kind_hash.update(kind_bytes)
        try:
            self._ensure_journal().append(
                "shard-sealed",
                shard=index,
                refs=entry["refs"],
                crc32=entry["crc32"],
                sha256=entry["sha256"],
            )
        except OSError as exc:
            raise TraceFileWriteError(
                f"cannot journal shard seal in {self.directory}: {exc}"
            ) from exc
        from repro.obs import metrics as obs_metrics

        obs_metrics.inc("mem.stream.shards_sealed")
        return entry

    @property
    def content_sha256(self) -> str:
        return hashlib.sha256(
            self._addr_hash.digest() + self._kind_hash.digest()
        ).hexdigest()

    def finalize(
        self, metadata: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """Write the checksummed manifest; returns it."""
        if self._finalized:
            raise RuntimeError("ShardWriter already finalized")
        if self._journal is not None:
            self._journal.close()
        manifest: Dict[str, object] = {
            "format": SHARD_FORMAT_VERSION,
            "shard_refs": self.shard_refs,
            "refs": self.refs,
            "reads": self.reads,
            "writes": self.writes,
            "content_sha256": self.content_sha256,
            "shards": self.shards,
            "metadata": dict(metadata or {}),
        }
        manifest["checksum"] = f"{zlib.crc32(_manifest_body_bytes(manifest)):08x}"
        try:
            atomic_write_text(
                self.directory / MANIFEST_FILENAME,
                json.dumps(manifest, sort_keys=True, indent=1),
                site=SHARD_SITE,
            )
        except OSError as exc:
            raise TraceFileWriteError(
                f"cannot write trace manifest in {self.directory}: {exc}"
            ) from exc
        self._finalized = True
        return manifest


def read_manifest(directory: Union[str, Path]) -> Dict[str, object]:
    """Read and CRC-verify a trace directory's manifest.

    Raises:
        TraceShardCorruptError: Missing, undecodable, checksum-failing,
            or wrong-format manifest.
    """
    directory = Path(directory)
    path = directory / MANIFEST_FILENAME
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise TraceShardCorruptError(
            f"trace directory {directory} has no {MANIFEST_FILENAME}"
        )
    except OSError as exc:
        raise TraceShardCorruptError(
            f"trace directory {directory}: manifest unreadable: {exc}"
        )
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise TraceShardCorruptError(
            f"trace directory {directory}: manifest is not JSON: {exc}"
        )
    if not isinstance(manifest, dict):
        raise TraceShardCorruptError(
            f"trace directory {directory}: manifest is not a JSON object"
        )
    stored = manifest.get("checksum")
    actual = f"{zlib.crc32(_manifest_body_bytes(manifest)):08x}"
    if stored != actual:
        raise TraceShardCorruptError(
            f"trace directory {directory}: manifest failed its checksum "
            f"(stored {stored!r}, recomputed {actual!r})"
        )
    if manifest.get("format") != SHARD_FORMAT_VERSION:
        raise TraceShardCorruptError(
            f"trace directory {directory}: format {manifest.get('format')!r} "
            f"unsupported (expected {SHARD_FORMAT_VERSION})"
        )
    return manifest


def _decode_shard(
    data: bytes, entry: Dict[str, object], path: Path
) -> Tuple[np.ndarray, np.ndarray]:
    """Verify + decode one shard's file bytes into its columns."""
    if hashlib.sha256(data).hexdigest() != entry.get("sha256"):
        raise TraceShardCorruptError(
            f"shard {path} failed its SHA-256 (file damaged or replaced)"
        )
    try:
        with np.load(io.BytesIO(data)) as archive:
            addrs = archive["addrs"].astype(np.int64)
            kinds = archive["kinds"].astype(np.uint8)
            stored_crc = int(archive["checksum"])
    except Exception as exc:  # any decode failure is corruption
        raise TraceShardCorruptError(f"shard {path} is undecodable: {exc}")
    if _shard_crc(addrs, kinds) != stored_crc:
        raise TraceShardCorruptError(
            f"shard {path} failed its content CRC32"
        )
    if int(addrs.shape[0]) != int(entry.get("refs", -1)):
        raise TraceShardCorruptError(
            f"shard {path} holds {int(addrs.shape[0])} refs but the "
            f"manifest records {entry.get('refs')}"
        )
    return addrs, kinds


class StreamingTrace:
    """A sharded on-disk trace, consumed chunk-wise in bounded memory.

    Duck-type compatible with :class:`~repro.mem.trace.Trace` where
    that is possible without materializing (``__len__``, ``__iter__``,
    ``read_count``/``write_count``, ``footprint``); the random-access
    surface (``addrs``, ``kinds``, slicing) is served by a one-shot
    :meth:`load` fallback that materializes the whole trace — the
    simulators never touch it, but legacy callers keep working.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.manifest = read_manifest(self.directory)
        self._loaded: Optional[Trace] = None

    # -- bounded-memory surface -------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.manifest["shards"])

    @property
    def shard_refs(self) -> int:
        return int(self.manifest["shard_refs"])

    @property
    def content_sha256(self) -> str:
        return str(self.manifest["content_sha256"])

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self.manifest.get("metadata", {}))

    def __len__(self) -> int:
        return int(self.manifest["refs"])

    @property
    def read_count(self) -> int:
        return int(self.manifest["reads"])

    @property
    def write_count(self) -> int:
        return int(self.manifest["writes"])

    def iter_chunks(
        self, start_shard: int = 0
    ) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(shard_index, addrs, kinds)`` with full verification.

        Holds exactly one decoded shard in memory at a time.

        Raises:
            TraceShardCorruptError: A shard is missing, fails its
                SHA-256/CRC, or disagrees with the manifest.
        """
        for entry in self.manifest["shards"][start_shard:]:
            path = self.directory / str(entry["name"])
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                raise TraceShardCorruptError(
                    f"shard {path} is missing from the trace directory"
                )
            except OSError as exc:
                raise TraceShardCorruptError(f"shard {path} unreadable: {exc}")
            addrs, kinds = _decode_shard(data, entry, path)
            yield int(entry["index"]), addrs, kinds

    def __iter__(self) -> Iterator[Access]:
        for _, addrs, kinds in self.iter_chunks():
            for addr, kind in zip(addrs.tolist(), kinds.tolist()):
                yield Access(addr, kind)

    def footprint(self, block_size: int = 8) -> int:
        """Distinct cache blocks touched, computed in one streaming pass."""
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError("block_size must be a positive power of two")
        blocks: set = set()
        for _, addrs, _ in self.iter_chunks():
            blocks.update((addrs // block_size).tolist())
        return len(blocks)

    def footprint_bytes(self, block_size: int = 8) -> int:
        return self.footprint(block_size) * block_size

    # -- materializing compatibility fallback ------------------------

    def load(self) -> Trace:
        """Materialize the whole trace in memory (cached).

        This defeats the bounded-memory property — it exists so legacy
        random-access callers keep working against a streamed trace.
        """
        if self._loaded is None:
            addr_parts: List[np.ndarray] = []
            kind_parts: List[np.ndarray] = []
            for _, addrs, kinds in self.iter_chunks():
                addr_parts.append(addrs)
                kind_parts.append(kinds)
            if addr_parts:
                trace = Trace(
                    np.concatenate(addr_parts), np.concatenate(kind_parts)
                )
            else:
                trace = Trace(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8)
                )
            self._loaded = trace
        return self._loaded

    @property
    def addrs(self) -> np.ndarray:
        return self.load().addrs

    @property
    def kinds(self) -> np.ndarray:
        return self.load().kinds

    def __getitem__(self, index: int) -> Access:
        return self.load()[index]

    def block_ids(self, block_size: int = 8) -> np.ndarray:
        return self.load().block_ids(block_size)

    def reads(self) -> Trace:
        return self.load().reads()

    def writes(self) -> Trace:
        return self.load().writes()

    def concat(self, other) -> Trace:
        other_trace = other.load() if isinstance(other, StreamingTrace) else other
        return self.load().concat(other_trace)


#: Process-wide sequence for unique staging directory names.
_BUILDER_SEQ = 0


class StreamingTraceBuilder:
    """Drop-in :class:`~repro.mem.trace.TraceBuilder` that spills shards.

    Buffers at most ``shard_refs`` references, sealing a shard whenever
    the buffer fills, and never holds more than one chunk in memory.
    Shards are staged in a ``<name>.trd.tmp`` directory that is
    atomically renamed to ``<name>.trd`` by :meth:`build` — an
    interrupted build leaves only the clearly-marked staging directory.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        shard_refs: Optional[int] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        global _BUILDER_SEQ
        config = active_stream_config()
        if shard_refs is None:
            shard_refs = config.shard_refs if config else DEFAULT_SHARD_REFS
        if shard_refs < 1:
            raise ValueError(f"shard_refs must be >= 1 (got {shard_refs})")
        if directory is None:
            if config is None:
                raise ValueError(
                    "StreamingTraceBuilder needs a directory when no "
                    "ambient stream configuration is installed"
                )
            _BUILDER_SEQ += 1
            directory = config.directory / (
                f"trace-{os.getpid()}-{_BUILDER_SEQ:04d}{TRACE_DIR_SUFFIX}"
            )
        self.final_directory = Path(directory)
        if self.final_directory.suffix != TRACE_DIR_SUFFIX:
            self.final_directory = self.final_directory.with_name(
                self.final_directory.name + TRACE_DIR_SUFFIX
            )
        self.staging_directory = self.final_directory.with_name(
            self.final_directory.name + ".tmp"
        )
        self.staging_directory.mkdir(parents=True, exist_ok=True)
        self.shard_refs = shard_refs
        self.metadata = dict(metadata or {})
        self._writer = ShardWriter(self.staging_directory, shard_refs)
        self._addrs: List[int] = []
        self._kinds: List[int] = []
        self._built = False

    # -- TraceBuilder surface ----------------------------------------

    def read(self, addr: int) -> None:
        self._addrs.append(addr)
        self._kinds.append(READ)
        if len(self._addrs) >= self.shard_refs:
            self._spill()

    def write(self, addr: int) -> None:
        self._addrs.append(addr)
        self._kinds.append(WRITE)
        if len(self._addrs) >= self.shard_refs:
            self._spill()

    def read_range(self, base: int, count: int, stride: int = 8) -> None:
        self._addrs.extend(base + i * stride for i in range(count))
        self._kinds.extend([READ] * count)
        if len(self._addrs) >= self.shard_refs:
            self._spill()

    def write_range(self, base: int, count: int, stride: int = 8) -> None:
        self._addrs.extend(base + i * stride for i in range(count))
        self._kinds.extend([WRITE] * count)
        if len(self._addrs) >= self.shard_refs:
            self._spill()

    def extend(self, accesses: Iterable[Access]) -> None:
        for access in accesses:
            self._addrs.append(access.addr)
            self._kinds.append(access.kind)
            if len(self._addrs) >= self.shard_refs:
                self._spill()

    def extend_arrays(self, addrs: np.ndarray, kinds: np.ndarray) -> None:
        """Bulk-append parallel columns (differential/bench harness)."""
        self._addrs.extend(np.asarray(addrs, dtype=np.int64).tolist())
        self._kinds.extend(np.asarray(kinds, dtype=np.uint8).tolist())
        while len(self._addrs) >= self.shard_refs:
            self._spill()

    def __len__(self) -> int:
        return self._writer.refs + len(self._addrs)

    def _spill(self) -> None:
        """Seal full buffered chunks (never more than one chunk held)."""
        while len(self._addrs) >= self.shard_refs:
            head_addrs = np.asarray(self._addrs[: self.shard_refs], dtype=np.int64)
            head_kinds = np.asarray(self._kinds[: self.shard_refs], dtype=np.uint8)
            del self._addrs[: self.shard_refs]
            del self._kinds[: self.shard_refs]
            self._writer.write_shard(head_addrs, head_kinds)

    def build(self) -> StreamingTrace:
        """Seal the tail shard, finalize the manifest, publish the dir.

        The staging directory is renamed into place with ``os.replace``
        and the parent entry fsynced, mirroring the single-file
        atomic-save discipline.
        """
        if self._built:
            raise RuntimeError("StreamingTraceBuilder.build() called twice")
        from repro.obs import metrics as obs_metrics
        from repro.obs.console import debug

        self._spill()
        if self._addrs:
            self._writer.write_shard(
                np.asarray(self._addrs, dtype=np.int64),
                np.asarray(self._kinds, dtype=np.uint8),
            )
            self._addrs = []
            self._kinds = []
        total = self._writer.refs
        manifest = self._writer.finalize(self.metadata)
        try:
            io_replace(self.staging_directory, self.final_directory, SHARD_SITE)
            fsync_directory(self.final_directory.parent, SHARD_SITE)
        except OSError as exc:
            raise TraceFileWriteError(
                f"cannot publish trace directory {self.final_directory}: {exc}"
            ) from exc
        self._built = True
        debug(
            f"[trace] built {total:,} reference(s) in "
            f"{len(manifest['shards'])} shard(s) at {self.final_directory}"
        )
        obs_metrics.inc("mem.trace.refs_built", total)
        return StreamingTrace(self.final_directory)


# -- ambient stream configuration -----------------------------------------


@dataclass(frozen=True)
class StreamConfig:
    """Where streamed traces (and simulator checkpoints) live."""

    directory: Path
    shard_refs: int

    @property
    def checkpoint_directory(self) -> Path:
        return self.directory / "checkpoints"


_ACTIVE_CONFIG: Optional[StreamConfig] = None


def configure_streaming(
    directory: Union[str, Path],
    shard_refs: Optional[int] = None,
    export_env: bool = True,
) -> StreamConfig:
    """Install the ambient stream configuration for this process.

    With ``export_env`` (the default) the configuration is also placed
    in ``os.environ`` so worker subprocesses — which inherit the
    supervisor's environment — stream to the same directory.
    """
    global _ACTIVE_CONFIG
    config = StreamConfig(
        directory=Path(directory),
        shard_refs=int(shard_refs) if shard_refs else DEFAULT_SHARD_REFS,
    )
    if config.shard_refs < 1:
        raise ValueError(f"shard_refs must be >= 1 (got {config.shard_refs})")
    _ACTIVE_CONFIG = config
    if export_env:
        os.environ[STREAM_DIR_ENV] = str(config.directory)
        os.environ[SHARD_REFS_ENV] = str(config.shard_refs)
    return config


def clear_streaming(clear_env: bool = True) -> None:
    """Remove the ambient stream configuration (tests)."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = None
    if clear_env:
        os.environ.pop(STREAM_DIR_ENV, None)
        os.environ.pop(SHARD_REFS_ENV, None)


def active_stream_config() -> Optional[StreamConfig]:
    """The installed configuration, else one read from the environment.

    Reading the environment lazily means worker subprocesses need no
    explicit install: the first trace build in the worker finds the
    supervisor's exported configuration.
    """
    if _ACTIVE_CONFIG is not None:
        return _ACTIVE_CONFIG
    directory = os.environ.get(STREAM_DIR_ENV, "")
    if not directory:
        return None
    shard_refs = DEFAULT_SHARD_REFS
    raw = os.environ.get(SHARD_REFS_ENV, "")
    if raw:
        try:
            shard_refs = max(int(raw), 1)
        except ValueError:
            shard_refs = DEFAULT_SHARD_REFS
    return StreamConfig(directory=Path(directory), shard_refs=shard_refs)


def trace_builder(
    metadata: Optional[Dict[str, object]] = None,
) -> Union[TraceBuilder, StreamingTraceBuilder]:
    """The builder the ambient configuration calls for.

    Application generators call this instead of constructing
    :class:`~repro.mem.trace.TraceBuilder` directly: with streaming
    configured (``--stream`` / ``REPRO_STREAM_DIR``) they spill shards
    in bounded memory; without it they build in-memory traces exactly
    as before.
    """
    config = active_stream_config()
    if config is None:
        return TraceBuilder()
    return StreamingTraceBuilder(metadata=metadata)


# -- CRC-framed simulator checkpoints -------------------------------------


def save_sim_checkpoint(
    path: Union[str, Path], payload: Dict[str, object]
) -> None:
    """Atomically persist one simulator snapshot.

    Single CRC-framed line (``SIMCKPT1 <crc32:08x> <json>``), written
    with the shared atomic-write discipline at fault site ``"simckpt"``
    — a crash during the write leaves either the previous snapshot or
    the new one, never a torn file.
    """
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    line = f"{SIMCKPT_MAGIC} {zlib.crc32(data):08x} ".encode("ascii") + data
    atomic_write_bytes(Path(path), line, site=SIMCKPT_SITE)


def load_sim_checkpoint(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Read a snapshot; ``None`` on absence or *any* damage.

    Resume treats a damaged snapshot as "no snapshot" and restarts the
    simulation from shard zero — always safe, never wrong.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    parts = raw.split(b" ", 2)
    if len(parts) != 3 or parts[0] != SIMCKPT_MAGIC.encode("ascii"):
        return None
    try:
        stored = int(parts[1], 16)
    except ValueError:
        return None
    if zlib.crc32(parts[2]) != stored:
        return None
    try:
        payload = json.loads(parts[2])
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None
