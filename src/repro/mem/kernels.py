"""Columnar batch-vectorized simulation kernels with a trust harness.

ROADMAP item 1: the per-reference pure-Python hot loops in
:mod:`repro.mem.cache`, :mod:`repro.mem.setassoc` and
:mod:`repro.mem.stack_distance` are the campaign bottleneck.  This
module provides numpy batch implementations of all three ("the vector
tier") together with a :class:`KernelGuard` harness that keeps them
honest:

* every kernel chunk passes cheap structural sanity checks;
* every Nth chunk (``REPRO_KERNEL_VERIFY``) is replayed through the
  pure-Python oracle and compared exactly — counters, eviction order,
  histogram and full ``state_dict``;
* on any mismatch the guard records a typed
  :class:`~repro.runtime.errors.KernelDivergenceError`, writes a
  minimal repro bundle into the run directory, quarantines the kernel
  for the remainder of the process, and falls back to the oracle so
  the campaign completes *correctly* rather than fast;
* a deterministic fault injector (``REPRO_KERNELFAULT=KERNEL:KIND:NTH``)
  lets chaos tests and CI prove the detect → quarantine → fallback →
  complete path end to end.

Algorithm
---------

All three kernels reduce to exact Mattson stack depths.  For a chunk of
block ids the depth of reference ``i`` (1-based count of distinct
blocks since the previous reference to the same block, inclusive) is

    depth[i] = #{ j in (prev[i], i] : next[j] > i }
             = S_i - D_{prev[i]}

where ``S_i = (i+1) - #{j : next[j] <= i}`` is the live-interval count
at time ``i`` and ``D_p = #{k < p : next[k] > next[p]}`` is a
per-element inversion count of the ``next`` sequence.  ``S`` comes from
one ``bincount``/``cumsum`` pass; ``D`` from a bit-wise radix
partition ("wavelet") sweep that needs no sorting or searching per
level.  Cross-chunk exactness uses a synthetic prefix: the simulator
state is fully characterised by its blocks in last-access order
(the same invariant ``StackDistanceRun._compact`` relies on), so
prepending those blocks as synthetic references makes chunk-local
depths equal the global ones.

Everything is value-sorts of packed int64 keys, ``bincount`` and
``cumsum`` — ``np.argsort``/``np.searchsorted`` are avoided entirely
(they are an order of magnitude slower on small/medium arrays).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mem.trace import READ, Trace

KERNEL_KINDS = ("fullassoc", "setassoc", "stackdist")

#: Environment knobs (exported by :func:`configure_kernels` so worker
#: processes and dispatch nodes inherit the campaign's kernel policy).
TIER_ENV = "REPRO_KERNEL_TIER"
VERIFY_ENV = "REPRO_KERNEL_VERIFY"
FAULT_ENV = "REPRO_KERNELFAULT"
BUNDLE_DIR_ENV = "REPRO_KERNEL_BUNDLE_DIR"
MIN_REFS_ENV = "REPRO_KERNEL_MIN_REFS"

#: Below this many references per chunk the vector tier is not worth
#: the numpy fixed costs; the pure loops run instead.
DEFAULT_MIN_REFS = 2048

#: Default shadow-verification sampling period (chunk 0 always verifies).
DEFAULT_VERIFY_EVERY = 32

_FAULT_KINDS = ("wrong-count", "nan", "overflow", "crash")

# Refuse to pack block ids that could overflow int64 key space.
_MAX_BLOCK_ID = 1 << 44


# ---------------------------------------------------------------------------
# Vectorized stack-depth engine
# ---------------------------------------------------------------------------


def _pow2ceil(n: int) -> int:
    return 1 << max(int(n - 1).bit_length(), 0) if n > 1 else 1


def _per_element_inversions(ranks: np.ndarray) -> np.ndarray:
    """``D[j] = #{k < j : ranks[k] > ranks[j]}`` for distinct int ranks.

    Bit-wise top-down radix partition: a pair ``(k < j, rank_k >
    rank_j)`` is counted exactly once, at the highest bit where the two
    ranks diverge.  Per level: one cumsum, two gathers, two scatters —
    no sorts.  The element's rank and running count share one int64
    (``P``), as do its partition bounds (``Q``), halving scatter
    traffic; counts can never carry into the rank bits because
    ``D < m < 2**_PACK``.
    """
    m = int(ranks.shape[0])
    out = np.zeros(m, dtype=np.int64)
    if m < 2:
        return out
    nbits = int(m - 1).bit_length()
    pack = 29  # supports m up to 2**28 references per chunk
    mask = (1 << pack) - 1
    p = ranks.astype(np.int64) << pack
    q = np.full(m, m, dtype=np.int64)  # start=0, end=m packed
    pos = np.arange(m, dtype=np.int32)
    for shift in range(nbits - 1, -1, -1):
        # int64 only for the pack containers and fancy indices (int64
        # index gathers/scatters are ~3x faster than int32 ones here);
        # all per-pass arithmetic runs in int32.
        b = (p >> (pack + shift)).astype(np.int32) & 1
        start = q >> pack
        end = q & mask
        c = np.cumsum(b, dtype=np.int32)
        t = c - b  # ones strictly before each position (exclusive cumsum)
        tpad = np.append(t, c[-1])
        g_start = t[start]
        ones_before = t - g_start
        ones_total = tpad[end] - g_start
        p += ones_before * (1 - b)
        if shift == 0:
            break
        s32 = start.astype(np.int32)
        e32 = end.astype(np.int32)
        zeros_before = (pos - s32) - ones_before
        zeros_total = (e32 - s32) - ones_total
        dest = (
            s32
            + zeros_before
            + b * (zeros_total + ones_before - zeros_before)
        ).astype(np.int64)
        new_start = s32 + b * zeros_total
        new_q = (new_start.astype(np.int64) << pack) | (
            new_start + zeros_total + b * (ones_total - zeros_total)
        )
        p2 = np.empty_like(p)
        q2 = np.empty_like(q)
        p2[dest] = p
        q2[dest] = new_q
        p, q = p2, q2
    # p is in partition order but still carries each element's distinct
    # rank, so scatter counts to rank space and gather per position.
    by_rank = np.empty(m, dtype=np.int64)
    by_rank[p >> pack] = p & mask
    out[:] = by_rank[ranks]
    return out


def _link_occurrences(
    ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Link same-block occurrences in one packed value sort.

    Returns ``(prev, nxt, last_mask)``: index of the previous/next
    occurrence of each position's block (-1 / ``m`` when none) and a
    mask of each block's final occurrence.
    """
    m = int(ids.shape[0])
    arange = np.arange(m, dtype=np.int64)
    prev = np.full(m, -1, dtype=np.int64)
    nxt = np.full(m, m, dtype=np.int64)
    if m < 2:
        return prev, nxt, np.ones(m, dtype=bool)
    k = _pow2ceil(m)
    # Group occurrences by block id with one *value* sort of packed
    # (id, position) keys; within a block, positions come out ascending.
    packed = np.sort(ids * k + arange)
    pos_sorted = packed & (k - 1)
    id_sorted = packed // k
    same = np.empty(m, dtype=bool)
    same[0] = False
    np.equal(id_sorted[1:], id_sorted[:-1], out=same[1:])
    tail = pos_sorted[1:][same[1:]]
    head = pos_sorted[:-1][same[1:]]
    prev[tail] = head
    nxt[head] = tail
    return prev, nxt, nxt == m


def _stack_depths(ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact LRU stack depths for one sequence of block ids.

    Returns ``(depth, prev, last_mask)`` where ``prev[i]`` is the index
    of the previous occurrence of ``ids[i]`` (-1 if none), ``depth[i]``
    is the 1-based Mattson stack depth (valid where ``prev[i] >= 0``)
    and ``last_mask[i]`` marks each block's final occurrence.
    """
    m = int(ids.shape[0])
    if m == 0:
        zero = np.zeros(0, dtype=np.int64)
        return zero, np.full(0, -1, dtype=np.int64), np.zeros(0, dtype=bool)
    arange = np.arange(m, dtype=np.int64)
    if m == 1:
        return (
            np.ones(1, dtype=np.int64),
            np.full(1, -1, dtype=np.int64),
            np.ones(1, dtype=bool),
        )
    prev, nxt, last_mask = _link_occurrences(ids)
    # Distinct sentinels (> every finite next) for final occurrences.
    nxt = nxt + last_mask * arange
    # S_i = (i+1) - #{j : next[j] <= i}; sentinels never land <= i.
    counts = np.bincount(nxt, minlength=2 * m)
    live = arange + 1 - np.cumsum(counts[:m])
    # Sentinel elements always outrank finite ones, so their
    # contribution to D is just "sentinels seen so far"; the wavelet
    # sweep only runs over the finite-next positions.
    finite = ~last_mask
    sent_before = np.cumsum(last_mask) - last_mask
    fin_next = nxt[finite]
    # Dense ranks of the (distinct) finite next values via bincount.
    fin_counts = np.cumsum(np.bincount(fin_next, minlength=m))
    fin_ranks = fin_counts[fin_next] - 1
    d_fin = _per_element_inversions(fin_ranks)
    d_all = np.zeros(m, dtype=np.int64)
    d_all[finite] = d_fin
    d_all += sent_before
    has_prev = prev >= 0
    depth = live - d_all[np.maximum(prev, 0)] * has_prev
    return depth, prev, last_mask


def _merge_sorted_unique(base: np.ndarray, extra: np.ndarray) -> Tuple[np.ndarray, int]:
    """Union of a sorted-unique array with new unique values.

    Returns ``(merged_sorted_unique, n_new)`` where ``n_new`` counts the
    values of ``extra`` not already present in ``base``.  One value
    sort; no searchsorted.
    """
    if extra.size == 0:
        return base, 0
    if base.size == 0:
        return np.sort(extra), int(extra.size)
    merged = np.sort(np.concatenate([base, extra]))
    keep = np.empty(merged.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    unique = merged[keep]
    return unique, int(extra.size - (merged.shape[0] - unique.shape[0]))


def _cache_stats_delta(
    kinds: np.ndarray, hit: np.ndarray
) -> Tuple[int, int, int, int]:
    is_read = kinds == READ
    reads = int(np.count_nonzero(is_read))
    writes = int(kinds.shape[0] - reads)
    miss = ~hit
    read_misses = int(np.count_nonzero(miss & is_read))
    write_misses = int(np.count_nonzero(miss) - read_misses)
    return reads, writes, read_misses, write_misses


def kernel_fullassoc(
    state: dict, blocks: np.ndarray, kinds: np.ndarray
) -> dict:
    """Vectorized fully-associative LRU chunk step.

    Pure function from a :meth:`FullyAssociativeCache.state_dict`-shaped
    snapshot plus one columnar chunk to the successor snapshot.
    """
    capacity = int(state["capacity_bytes"]) // int(state["block_size"])
    resident = state["lru_mru_to_lru"]
    prefix = np.asarray(resident[::-1], dtype=np.int64)  # oldest -> newest
    n = int(blocks.shape[0])
    f = int(prefix.shape[0])
    ext = np.concatenate([prefix, blocks]) if f else blocks
    depth, prev, last_mask = _stack_depths(ext)
    hit = (prev[f:] >= 0) & (depth[f:] <= capacity)
    reads, writes, read_misses, write_misses = _cache_stats_delta(kinds, hit)
    # Cold misses: first-in-ext blocks never seen before.  A first-ever
    # reference always misses, so every such block scores one cold miss.
    new_blocks = blocks[prev[f:] < 0]
    ever = np.asarray(state["ever_seen"], dtype=np.int64)
    ever_new, n_cold = _merge_sorted_unique(ever, new_blocks)
    # Final LRU contents: the capacity most recently used distinct
    # blocks; final occurrences in position order are exactly the
    # blocks by last access (oldest -> newest).
    by_last_access = ext[np.flatnonzero(last_mask)]
    mru_to_lru = by_last_access[-capacity:][::-1].tolist()
    old = state["stats"]
    return {
        "capacity_bytes": state["capacity_bytes"],
        "block_size": state["block_size"],
        "lru_mru_to_lru": [int(b) for b in mru_to_lru],
        "ever_seen": ever_new.tolist(),
        "stats": {
            "reads": int(old["reads"]) + reads,
            "writes": int(old["writes"]) + writes,
            "read_misses": int(old["read_misses"]) + read_misses,
            "write_misses": int(old["write_misses"]) + write_misses,
            "cold_misses": int(old["cold_misses"]) + n_cold,
        },
    }


def kernel_stackdist(
    state: dict, blocks: np.ndarray, kinds: np.ndarray
) -> dict:
    """Vectorized Mattson stack-distance chunk step.

    Pure function over :meth:`StackDistanceRun.state_dict` snapshots.
    """
    n = int(blocks.shape[0])
    prefix = np.asarray(state["blocks_by_last_access"], dtype=np.int64)
    f = int(prefix.shape[0])
    ext = np.concatenate([prefix, blocks]) if f else blocks
    depth, prev, last_mask = _stack_depths(ext)
    pos0 = int(state["pos"])
    counted = np.arange(pos0, pos0 + n, dtype=np.int64) >= int(state["warmup"])
    if state["count_reads_only"]:
        counted &= kinds == READ
    first = prev[f:] < 0
    cold_new = int(np.count_nonzero(first & counted))
    total_new = int(np.count_nonzero(counted))
    depths = depth[f:][counted & ~first]
    old_hist = np.asarray(state["hist"], dtype=np.int64)
    if depths.size:
        add = np.bincount(depths)
        size = max(old_hist.shape[0], add.shape[0])
        hist = np.zeros(size, dtype=np.int64)
        hist[: old_hist.shape[0]] = old_hist
        hist[: add.shape[0]] += add
    else:
        hist = old_hist
    nonzero = np.nonzero(hist)[0]
    top = int(nonzero[-1]) if nonzero.size else 0
    by_last_access = ext[np.flatnonzero(last_mask)]
    return {
        "block_size": state["block_size"],
        "count_reads_only": state["count_reads_only"],
        "warmup": state["warmup"],
        "pos": pos0 + n,
        "cold": int(state["cold"]) + cold_new,
        "total": int(state["total"]) + total_new,
        "blocks_by_last_access": by_last_access.tolist(),
        "hist": hist[: top + 1].tolist(),
    }


def kernel_setassoc(
    state: dict, blocks: np.ndarray, kinds: np.ndarray
) -> dict:
    """Vectorized set-associative LRU chunk step.

    One global stack-depth pass over the chunk stably grouped by set
    index: same-block references always share a set, so the grouped
    sequence gives exact per-set depths, and a reference hits iff its
    depth is at most the associativity.
    """
    assoc = int(state["associativity"])
    num_blocks = int(state["capacity_bytes"]) // int(state["block_size"])
    num_sets = num_blocks // assoc
    n = int(blocks.shape[0])
    set_of = blocks % num_sets
    touched_counts = np.bincount(set_of, minlength=num_sets)
    touched = touched_counts > 0
    old_counts = np.asarray(state["set_counts"], dtype=np.int64)
    old_orders = np.asarray(state["set_orders_mru_to_lru"], dtype=np.int64)
    old_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(old_counts)]
    )
    # Synthetic prefix: residents of touched sets, per set oldest ->
    # newest (stored orders are MRU -> LRU, so reverse within set).
    pref_counts = np.where(touched, old_counts, 0)
    r = int(pref_counts.sum())
    if r:
        rows = np.repeat(np.arange(num_sets, dtype=np.int64), pref_counts)
        starts = np.repeat(old_offsets[:-1], pref_counts)
        counts_rep = np.repeat(old_counts, pref_counts)
        within = np.arange(r, dtype=np.int64) - np.repeat(
            np.cumsum(pref_counts) - pref_counts, pref_counts
        )
        src = starts + (counts_rep - 1) - within  # reversed within set
        pref_blocks = old_orders[src]
        pref_sets = rows
        all_blocks = np.concatenate([pref_blocks, blocks])
        all_sets = np.concatenate([pref_sets, set_of])
    else:
        all_blocks = blocks
        all_sets = set_of
    m = int(all_blocks.shape[0])
    seq = np.arange(m, dtype=np.int64)
    k = _pow2ceil(m)
    grouped = np.sort(all_sets * k + seq)
    order = grouped & (k - 1)
    g_blocks = all_blocks[order]
    chunk_rows = order >= r
    if assoc == 1 and m > 1:
        # Direct-mapped fast path: a reference hits iff the previous
        # reference to its set touched the same block — no stack-depth
        # (wavelet) pass needed, only occurrence linking for cold
        # misses and residency.
        prev, _, last_mask = _link_occurrences(g_blocks)
        g_sets = grouped // k
        hit_g = np.empty(m, dtype=bool)
        hit_g[0] = False
        np.equal(g_blocks[1:], g_blocks[:-1], out=hit_g[1:])
        hit_g[1:] &= g_sets[1:] == g_sets[:-1]
        hit_g &= chunk_rows
    else:
        depth, prev, last_mask = _stack_depths(g_blocks)
        hit_g = (prev >= 0) & (depth <= assoc) & chunk_rows
    orig = order[chunk_rows] - r
    hit = np.zeros(n, dtype=bool)
    hit[orig] = hit_g[chunk_rows]
    reads, writes, read_misses, write_misses = _cache_stats_delta(kinds, hit)
    first = np.zeros(n, dtype=bool)
    first[orig] = (prev < 0)[chunk_rows]
    new_blocks = blocks[first]
    ever = np.asarray(state["ever_seen"], dtype=np.int64)
    ever_new, n_cold = _merge_sorted_unique(ever, new_blocks)
    # New per-set residency: per set segment, final occurrences in
    # position order are LRU -> MRU; keep the most recent `assoc`.
    last_rows = np.flatnonzero(last_mask)
    lr_sets = all_sets[order[last_rows]]
    lr_blocks = g_blocks[last_rows]
    lr_total = np.bincount(lr_sets, minlength=num_sets)
    lr_start = np.cumsum(lr_total) - lr_total
    within_lr = np.arange(lr_blocks.shape[0], dtype=np.int64) - lr_start[lr_sets]
    from_end = lr_total[lr_sets] - within_lr  # 1 = most recent
    keep = from_end <= assoc
    kept_sets = lr_sets[keep]
    kept_blocks = lr_blocks[keep]
    kept_from_end = from_end[keep]
    new_counts = np.where(touched, np.minimum(lr_total, assoc), old_counts)
    new_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(new_counts)]
    )
    total_new = int(new_offsets[-1])
    new_orders = np.empty(total_new, dtype=np.int64)
    # Untouched sets copy their old segments verbatim.
    keep_old = ~touched & (old_counts > 0)
    if np.any(keep_old):
        cnts = np.where(keep_old, old_counts, 0)
        tot = int(cnts.sum())
        rows_u = np.repeat(np.arange(num_sets, dtype=np.int64), cnts)
        within_u = np.arange(tot, dtype=np.int64) - np.repeat(
            np.cumsum(cnts) - cnts, cnts
        )
        new_orders[new_offsets[rows_u] + within_u] = old_orders[
            old_offsets[rows_u] + within_u
        ]
    # Touched sets: MRU -> LRU is from_end - 1.
    new_orders[new_offsets[kept_sets] + kept_from_end - 1] = kept_blocks
    old = state["stats"]
    return {
        "capacity_bytes": state["capacity_bytes"],
        "block_size": state["block_size"],
        "associativity": state["associativity"],
        "set_orders_mru_to_lru": new_orders.tolist(),
        "set_counts": new_counts.tolist(),
        "ever_seen": ever_new.tolist(),
        "stats": {
            "reads": int(old["reads"]) + reads,
            "writes": int(old["writes"]) + writes,
            "read_misses": int(old["read_misses"]) + read_misses,
            "write_misses": int(old["write_misses"]) + write_misses,
            "cold_misses": int(old["cold_misses"]) + n_cold,
        },
    }


KERNELS = {
    "fullassoc": kernel_fullassoc,
    "setassoc": kernel_setassoc,
    "stackdist": kernel_stackdist,
}

_SAMPLER_NAMES = {
    "fullassoc": "mem.fullassoc",
    "setassoc": "mem.setassoc",
    "stackdist": "mem.stackdist",
}


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

DEFAULT_TIER = "vector"
TIERS = ("vector", "oracle")


@dataclass(frozen=True)
class KernelConfig:
    """Ambient kernel policy for this process (and its workers)."""

    tier: str = DEFAULT_TIER
    verify_every: int = DEFAULT_VERIFY_EVERY
    min_refs: int = DEFAULT_MIN_REFS
    bundle_dir: Optional[Path] = None


_ACTIVE_CONFIG: Optional[KernelConfig] = None


def active_kernel_config() -> KernelConfig:
    """The installed configuration, else one assembled from environment."""
    if _ACTIVE_CONFIG is not None:
        return _ACTIVE_CONFIG
    tier = os.environ.get(TIER_ENV, "") or DEFAULT_TIER
    if tier not in TIERS:
        tier = DEFAULT_TIER
    bundle_raw = os.environ.get(BUNDLE_DIR_ENV, "")
    return KernelConfig(
        tier=tier,
        verify_every=_env_int(VERIFY_ENV, DEFAULT_VERIFY_EVERY),
        min_refs=_env_int(MIN_REFS_ENV, DEFAULT_MIN_REFS),
        bundle_dir=Path(bundle_raw) if bundle_raw else None,
    )


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return default
        if value >= 0:
            return value
    return default


def configure_kernels(
    tier: Optional[str] = None,
    verify_every: Optional[int] = None,
    min_refs: Optional[int] = None,
    bundle_dir: Optional[Path] = None,
    export_env: bool = True,
) -> KernelConfig:
    """Install the ambient kernel configuration for this process.

    With ``export_env`` (the default) the configuration is also placed
    in ``os.environ`` so worker subprocesses and dispatched nodes —
    which inherit the supervisor's environment — apply the same kernel
    policy.  Unspecified fields keep their current (or environment)
    values.
    """
    global _ACTIVE_CONFIG
    base = active_kernel_config()
    config = KernelConfig(
        tier=tier if tier is not None else base.tier,
        verify_every=(
            int(verify_every) if verify_every is not None else base.verify_every
        ),
        min_refs=int(min_refs) if min_refs is not None else base.min_refs,
        bundle_dir=Path(bundle_dir) if bundle_dir is not None else base.bundle_dir,
    )
    if config.tier not in TIERS:
        raise ValueError(
            f"unknown kernel tier {config.tier!r} (expected one of {TIERS})"
        )
    if config.verify_every < 0:
        raise ValueError(f"verify_every must be >= 0 (got {config.verify_every})")
    if config.min_refs < 0:
        raise ValueError(f"min_refs must be >= 0 (got {config.min_refs})")
    _ACTIVE_CONFIG = config
    if export_env:
        os.environ[TIER_ENV] = config.tier
        os.environ[VERIFY_ENV] = str(config.verify_every)
        os.environ[MIN_REFS_ENV] = str(config.min_refs)
        if config.bundle_dir is not None:
            os.environ[BUNDLE_DIR_ENV] = str(config.bundle_dir)
        else:
            os.environ.pop(BUNDLE_DIR_ENV, None)
    return config


def clear_kernels(clear_env: bool = True) -> None:
    """Remove the ambient configuration (tests, teardown)."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = None
    if clear_env:
        for name in (TIER_ENV, VERIFY_ENV, MIN_REFS_ENV, BUNDLE_DIR_ENV):
            os.environ.pop(name, None)


@contextmanager
def tier_override(tier: str):
    """Temporarily force a kernel tier in this process (no env export)."""
    if tier not in TIERS:
        raise ValueError(f"unknown kernel tier {tier!r} (expected one of {TIERS})")
    global _ACTIVE_CONFIG
    prev = _ACTIVE_CONFIG
    _ACTIVE_CONFIG = replace(active_kernel_config(), tier=tier)
    try:
        yield
    finally:
        _ACTIVE_CONFIG = prev


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelFault:
    """One injected kernel misbehavior: fire on the NTH guarded chunk
    (1-based, per kernel) of ``kernel``."""

    kernel: str
    kind: str
    nth: int


def parse_fault_spec(raw: str) -> List[KernelFault]:
    """Parse ``KERNEL:KIND:NTH[,KERNEL:KIND:NTH...]`` fault grammar."""
    faults: List[KernelFault] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) != 3:
            raise ValueError(
                f"bad kernel fault {part!r}: expected KERNEL:KIND:NTH"
            )
        kernel, kind, nth_raw = pieces
        if kernel not in KERNEL_KINDS:
            raise ValueError(
                f"bad kernel fault {part!r}: kernel must be one of "
                f"{KERNEL_KINDS}"
            )
        if kind not in _FAULT_KINDS:
            raise ValueError(
                f"bad kernel fault {part!r}: kind must be one of {_FAULT_KINDS}"
            )
        try:
            nth = int(nth_raw)
        except ValueError:
            raise ValueError(f"bad kernel fault {part!r}: NTH must be an integer")
        if nth < 1:
            raise ValueError(f"bad kernel fault {part!r}: NTH must be >= 1")
        faults.append(KernelFault(kernel=kernel, kind=kind, nth=nth))
    return faults


_BAD_FAULT_SPEC_SEEN: Optional[str] = None


def _active_faults() -> List[KernelFault]:
    global _BAD_FAULT_SPEC_SEEN
    raw = os.environ.get(FAULT_ENV, "")
    if not raw:
        return []
    try:
        return parse_fault_spec(raw)
    except ValueError as exc:
        # A typo in the fault grammar must not corrupt or abort a real
        # campaign: surface it once through the event stream and ignore.
        if _BAD_FAULT_SPEC_SEEN != raw:
            _BAD_FAULT_SPEC_SEEN = raw
            _EVENTS.append(
                {
                    "kernel": None,
                    "chunk": None,
                    "reason": "bad-fault-spec",
                    "detail": str(exc),
                    "category": "kernel-divergence",
                    "error": f"ignored invalid {FAULT_ENV}: {exc}",
                    "bundle": None,
                }
            )
        return []


def _apply_fault(kernel: str, fault_kind: str, post: dict, pre: dict) -> bool:
    """Mutate a kernel result in place to simulate misbehavior.

    ``wrong-count`` is crafted to slip past the structural sanity
    checks so only shadow verification can catch it; ``nan`` and
    ``overflow`` are exactly what sanity is for.  Returns whether a
    mutation was actually applied.
    """
    if kernel == "stackdist":
        if fault_kind == "nan":
            post["total"] = float("nan")
            return True
        if fault_kind == "overflow":
            post["total"] = int(post["total"]) + (1 << 62)
            return True
        hist = [int(v) for v in post["hist"]]
        idx = next((i for i in range(len(hist)) if i > 0 and hist[i] > 0), None)
        if idx is not None:
            hist[idx] -= 1
            if idx + 1 >= len(hist):
                hist.append(0)
            hist[idx + 1] += 1
            post["hist"] = hist
            return True
        if int(post["cold"]) > int(pre["cold"]):
            while len(hist) < 2:
                hist.append(0)
            hist[1] += 1
            post["cold"] = int(post["cold"]) - 1
            post["hist"] = hist
            return True
        order = list(post["blocks_by_last_access"])
        if len(order) >= 2:
            order[0], order[1] = order[1], order[0]
            post["blocks_by_last_access"] = order
            return True
        return False
    stats = post["stats"]
    if fault_kind == "nan":
        stats["read_misses"] = float("nan")
        return True
    if fault_kind == "overflow":
        stats["reads"] = int(stats["reads"]) + (1 << 62)
        return True
    old = pre["stats"]
    d_reads = int(stats["reads"]) - int(old["reads"])
    d_writes = int(stats["writes"]) - int(old["writes"])
    d_rm = int(stats["read_misses"]) - int(old["read_misses"])
    d_wm = int(stats["write_misses"]) - int(old["write_misses"])
    if d_rm > 0 and d_wm < d_writes:
        stats["read_misses"] -= 1
        stats["write_misses"] += 1
        return True
    if d_wm > 0 and d_rm < d_reads:
        stats["write_misses"] -= 1
        stats["read_misses"] += 1
        return True
    if d_rm < d_reads:
        stats["read_misses"] += 1
        return True
    if d_wm < d_writes:
        stats["write_misses"] += 1
        return True
    return False


# ---------------------------------------------------------------------------
# Trust harness state
# ---------------------------------------------------------------------------


def _new_kernel_state() -> dict:
    return {
        "attempts": 0,
        "chunks": 0,
        "verified": 0,
        "divergences": 0,
        "fallback_chunks": 0,
        "quarantined": False,
    }


_STATE: Dict[str, dict] = {kind: _new_kernel_state() for kind in KERNEL_KINDS}
_EVENTS: List[dict] = []
_REPLAYING = False


def kernel_state(kind: str) -> dict:
    """A copy of one kernel's harness counters (tests, introspection)."""
    return dict(_STATE[kind])


def quarantined(kind: str) -> bool:
    return bool(_STATE[kind]["quarantined"])


def drain_kernel_events() -> List[dict]:
    """Return and clear the pending divergence/fallback event records.

    The campaign engine drains this after every in-process attempt;
    worker processes ship it back inside the payload ``obs`` block.
    """
    events = _EVENTS[:]
    del _EVENTS[:]
    return events


def reset_kernel_state() -> None:
    """Forget quarantines, counters and pending events (tests)."""
    global _BAD_FAULT_SPEC_SEEN
    for state in _STATE.values():
        state.update(_new_kernel_state())
    del _EVENTS[:]
    _BAD_FAULT_SPEC_SEEN = None


# ---------------------------------------------------------------------------
# Sanity checks, oracle replay, divergence handling
# ---------------------------------------------------------------------------


def _is_count(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


_STAT_KEYS = ("reads", "writes", "read_misses", "write_misses", "cold_misses")


def _sanity(
    kernel: str, pre: dict, post: dict, n: int, kinds: np.ndarray
) -> Optional[str]:
    """Cheap structural invariants checked on *every* kernel chunk.

    Returns a reason string on violation, ``None`` when clean.  These
    catch corrupt-value failure modes (NaN, overflow, impossible
    deltas) without paying for an oracle replay.
    """
    try:
        if kernel == "stackdist":
            for key in ("pos", "cold", "total"):
                value = post[key]
                if not _is_count(value) or value < 0:
                    return f"{key} is not a non-negative int"
            if int(post["pos"]) - int(pre["pos"]) != n:
                return "pos did not advance by the chunk size"
            d_total = int(post["total"]) - int(pre["total"])
            d_cold = int(post["cold"]) - int(pre["cold"])
            if not 0 <= d_total <= n:
                return "total delta outside [0, chunk size]"
            if not 0 <= d_cold <= d_total:
                return "cold delta outside [0, total delta]"
            hist = post["hist"]
            if not all(_is_count(v) and v >= 0 for v in hist):
                return "hist contains a non-int or negative entry"
            if sum(hist) + int(post["cold"]) != int(post["total"]):
                return "hist mass plus cold misses != total"
            return None
        old_stats = pre["stats"]
        stats = post["stats"]
        for key in _STAT_KEYS:
            value = stats[key]
            if not _is_count(value) or value < 0:
                return f"stats.{key} is not a non-negative int"
            delta = value - int(old_stats[key])
            if delta < 0:
                return f"stats.{key} decreased"
            if delta > n:
                return f"stats.{key} delta exceeds chunk size"
        n_reads = int(np.count_nonzero(kinds == READ))
        if int(stats["reads"]) - int(old_stats["reads"]) != n_reads:
            return "read count does not match chunk"
        if int(stats["writes"]) - int(old_stats["writes"]) != n - n_reads:
            return "write count does not match chunk"
        d_misses = (
            int(stats["read_misses"])
            - int(old_stats["read_misses"])
            + int(stats["write_misses"])
            - int(old_stats["write_misses"])
        )
        d_cold = int(stats["cold_misses"]) - int(old_stats["cold_misses"])
        if d_cold > d_misses:
            return "cold-miss delta exceeds miss delta"
        if len(post["ever_seen"]) < len(pre["ever_seen"]):
            return "ever_seen shrank"
        capacity = int(post["capacity_bytes"]) // int(post["block_size"])
        if kernel == "fullassoc":
            if len(post["lru_mru_to_lru"]) > capacity:
                return "LRU holds more blocks than capacity"
        else:
            assoc = int(post["associativity"])
            counts = post["set_counts"]
            if any(c > assoc for c in counts):
                return "a set holds more blocks than its associativity"
            if sum(counts) != len(post["set_orders_mru_to_lru"]):
                return "set_counts disagree with flattened orders"
        return None
    except (KeyError, TypeError, ValueError):
        return "malformed kernel state"


def _fresh_sim(kernel: str, state: dict):
    if kernel == "fullassoc":
        from repro.mem.cache import FullyAssociativeCache

        return FullyAssociativeCache(
            capacity_bytes=int(state["capacity_bytes"]),
            block_size=int(state["block_size"]),
        )
    if kernel == "setassoc":
        from repro.mem.setassoc import SetAssociativeCache

        return SetAssociativeCache(
            capacity_bytes=int(state["capacity_bytes"]),
            block_size=int(state["block_size"]),
            associativity=int(state["associativity"]),
        )
    from repro.mem.stack_distance import StackDistanceRun

    return StackDistanceRun(
        block_size=int(state["block_size"]),
        count_reads_only=bool(state["count_reads_only"]),
        warmup=int(state["warmup"]),
    )


def _oracle_replay(kernel: str, pre: dict, trace: Trace, budget) -> dict:
    """Replay one chunk through the pure-Python oracle from ``pre``."""
    global _REPLAYING
    from repro.obs.metrics import suppress_hot_loop_sampling

    sim = _fresh_sim(kernel, pre)
    sim.load_state_dict(pre)
    _REPLAYING = True
    try:
        with suppress_hot_loop_sampling():
            if kernel == "stackdist":
                sim.feed(trace, budget)
            else:
                sim.run(trace, budget)
    finally:
        _REPLAYING = False
    return sim.state_dict()


def _canonical(state: dict) -> str:
    return json.dumps(state, sort_keys=True, allow_nan=True)


def _write_bundle(
    kernel: str,
    config: KernelConfig,
    ordinal: int,
    pre: dict,
    blocks: np.ndarray,
    kinds: np.ndarray,
    reason: str,
    detail: str,
    kernel_state_dict: Optional[dict],
    oracle_state_dict: Optional[dict],
) -> Optional[Path]:
    """Persist a minimal repro bundle; best-effort (never raises)."""
    if config.bundle_dir is None:
        return None
    try:
        config.bundle_dir.mkdir(parents=True, exist_ok=True)
        path = config.bundle_dir / f"{kernel}-chunk{ordinal:06d}.json"
        payload = {
            "format": BUNDLE_FORMAT,
            "kernel": kernel,
            "chunk": ordinal,
            "reason": reason,
            "detail": detail,
            "pre_state": pre,
            "kernel_state": kernel_state_dict,
            "oracle_state": oracle_state_dict,
            "blocks": [int(b) for b in blocks.tolist()],
            "kinds": [int(k) for k in kinds.tolist()],
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return path
    except (OSError, TypeError, ValueError):
        return None


BUNDLE_FORMAT = "kernel-divergence-bundle-v1"


def _record_divergence(
    kernel: str,
    config: KernelConfig,
    state: dict,
    ordinal: int,
    pre: dict,
    blocks: np.ndarray,
    kinds: np.ndarray,
    reason: str,
    detail: str = "",
    kernel_state_dict: Optional[dict] = None,
    oracle_state_dict: Optional[dict] = None,
) -> None:
    """Quarantine a diverged kernel and leave a full audit trail."""
    from repro.obs import metrics as obs_metrics
    from repro.runtime.errors import KernelDivergenceError

    state["divergences"] += 1
    state["fallback_chunks"] += 1
    state["quarantined"] = True
    suffix = f": {detail}" if detail else ""
    error = KernelDivergenceError(
        f"{kernel} kernel diverged on guarded chunk {ordinal} "
        f"({reason}{suffix}); kernel quarantined for this process, "
        f"oracle fallback engaged"
    )
    bundle = _write_bundle(
        kernel,
        config,
        ordinal,
        pre,
        blocks,
        kinds,
        reason,
        detail,
        kernel_state_dict,
        oracle_state_dict,
    )
    obs_metrics.inc(f"mem.kernel.{kernel}.divergences")
    obs_metrics.inc(f"mem.kernel.{kernel}.fallback_chunks")
    obs_metrics.set_gauge(f"mem.kernel.{kernel}.tier", 0.0)
    _EVENTS.append(
        {
            "kernel": kernel,
            "chunk": ordinal,
            "reason": reason,
            "detail": detail,
            "category": error.category,
            "error": str(error),
            "bundle": str(bundle) if bundle is not None else None,
        }
    )


def _miss_delta(kernel: str, pre: dict, post: dict) -> int:
    if kernel == "stackdist":
        return int(post["cold"]) - int(pre["cold"])
    return (
        int(post["stats"]["read_misses"])
        - int(pre["stats"]["read_misses"])
        + int(post["stats"]["write_misses"])
        - int(pre["stats"]["write_misses"])
    )


def guard_run(kernel: str, sim, trace, budget=None) -> bool:
    """Try to advance ``sim`` over ``trace`` with a vectorized kernel.

    The trust-harness entry point the simulators call at the top of
    their hot loops.  Returns ``True`` when the kernel ran and the
    simulator state was updated (the caller is done); ``False`` when
    the caller must run its pure-Python loop — oracle tier, small or
    out-of-domain chunk, quarantined kernel, or a divergence detected
    on this very chunk.  In every ``False`` case the simulator is
    untouched.
    """
    if _REPLAYING:
        return False
    config = active_kernel_config()
    state = _STATE[kernel]
    if config.tier != "vector" or state["quarantined"]:
        return False
    n = len(trace)
    if n == 0 or n < max(config.min_refs, 1) or n >= (1 << 28):
        return False
    from repro.obs import metrics as obs_metrics
    from repro.obs.metrics import hot_loop_sampler
    from repro.runtime.budget import active_budget

    blocks = trace.block_ids(sim.block_size)
    bmin = int(blocks.min())
    bmax = int(blocks.max())
    # The depth engine packs (id, position) into int64 keys; the block
    # ids must leave room for the position bits of the prefixed chunk.
    if kernel == "stackdist":
        prefix_bound = len(sim._last_time)
    else:
        prefix_bound = sim.capacity_bytes // sim.block_size
    k = _pow2ceil(n + prefix_bound + 1)
    if bmin < 0 or bmax >= min(_MAX_BLOCK_ID, (1 << 62) // k):
        return False
    if budget is None:
        budget = active_budget()
    if budget is not None:
        budget.check(f"{kernel} kernel chunk")
    state["attempts"] += 1
    ordinal = state["attempts"]
    fault = next(
        (
            f
            for f in _active_faults()
            if f.kernel == kernel and f.nth == ordinal
        ),
        None,
    )
    kinds = trace.kinds
    pre = sim.state_dict()
    sampler = hot_loop_sampler(_SAMPLER_NAMES[kernel])
    fault_applied = False
    try:
        if fault is not None and fault.kind == "crash":
            fault_applied = True
            raise RuntimeError(
                f"injected kernel crash ({kernel} chunk {ordinal})"
            )
        post = KERNELS[kernel](pre, blocks, kinds)
        if fault is not None and not fault_applied:
            fault_applied = _apply_fault(kernel, fault.kind, post, pre)
    except Exception as exc:  # noqa: BLE001 — fallback is the contract
        _record_divergence(
            kernel,
            config,
            state,
            ordinal,
            pre,
            blocks,
            kinds,
            reason="kernel-crash",
            detail=f"{type(exc).__name__}: {exc}",
        )
        return False
    reason = _sanity(kernel, pre, post, n, kinds)
    if reason is not None:
        _record_divergence(
            kernel,
            config,
            state,
            ordinal,
            pre,
            blocks,
            kinds,
            reason="sanity",
            detail=reason,
            kernel_state_dict=post,
        )
        return False
    verify = config.verify_every > 0 and (
        (ordinal - 1) % config.verify_every == 0
    )
    if fault_applied:
        # An injected fault must always reach the detector it targets.
        verify = True
    if verify:
        state["verified"] += 1
        obs_metrics.inc(f"mem.kernel.{kernel}.verified")
        expected = _oracle_replay(kernel, pre, trace, budget)
        if _canonical(post) != _canonical(expected):
            _record_divergence(
                kernel,
                config,
                state,
                ordinal,
                pre,
                blocks,
                kinds,
                reason="shadow-verify",
                detail="kernel state differs from oracle replay",
                kernel_state_dict=post,
                oracle_state_dict=expected,
            )
            return False
    sim.load_state_dict(post)
    state["chunks"] += 1
    if sampler is not None:
        sampler.finish(refs=n, misses=_miss_delta(kernel, pre, post))
    obs_metrics.inc(f"mem.kernel.{kernel}.chunks")
    obs_metrics.set_gauge(f"mem.kernel.{kernel}.tier", 1.0)
    return True
