"""Explicit fully associative LRU cache simulator.

The paper's methodology (Section 2.2): "we use fully associative caches
with an LRU replacement policy" and look for knees in the miss rate
versus cache size curve.  This simulator is the direct realization of
that instrument; for sweeping many cache sizes at once, prefer
:class:`repro.mem.stack_distance.StackDistanceProfiler`, which computes
identical miss rates in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mem.lru import LRUList
from repro.mem.trace import READ, Trace
from repro.obs.metrics import hot_loop_sampler
from repro.runtime.budget import CHECK_MASK, Budget, active_budget


@dataclass
class CacheStats:
    """Hit/miss counters, split by reference kind and miss cause."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    cold_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def capacity_misses(self) -> int:
        """Misses to blocks seen before (i.e. not cold)."""
        return self.misses - self.cold_misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (all references)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def read_miss_rate(self) -> float:
        """Read misses per read reference — the paper's metric for
        Barnes-Hut and volume rendering."""
        return self.read_misses / self.reads if self.reads else 0.0


class FullyAssociativeCache:
    """A fully associative, LRU-replacement cache.

    Args:
        capacity_bytes: Total cache capacity in bytes.
        block_size: Cache line size in bytes (power of two).  The paper
            accounts misses at double-word (8-byte) granularity, so the
            default block size is 8.
    """

    def __init__(self, capacity_bytes: int, block_size: int = 8) -> None:
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError(
                f"block_size must be a positive power of two (got {block_size})"
            )
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive (got {capacity_bytes})"
            )
        if capacity_bytes < block_size:
            raise ValueError(
                f"capacity must hold at least one block "
                f"(capacity_bytes={capacity_bytes} < block_size={block_size})"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.num_blocks = capacity_bytes // block_size
        self._lru = LRUList()
        self._ever_seen: set = set()
        self.stats = CacheStats()

    def _block_of(self, addr: int) -> int:
        return addr // self.block_size

    def access(self, addr: int, kind: int = READ) -> bool:
        """Issue one reference.  Returns True on hit, False on miss."""
        block = self._block_of(addr)
        if kind == READ:
            self.stats.reads += 1
        else:
            self.stats.writes += 1
        hit = self._lru.touch(block)
        if not hit:
            if kind == READ:
                self.stats.read_misses += 1
            else:
                self.stats.write_misses += 1
            if block not in self._ever_seen:
                self.stats.cold_misses += 1
                self._ever_seen.add(block)
            if len(self._lru) > self.num_blocks:
                self._lru.evict_lru()
        return hit

    def run(self, trace: Trace, budget: Optional[Budget] = None) -> CacheStats:
        """Run a whole trace through the cache; returns cumulative stats.

        A sharded :class:`~repro.mem.shards.StreamingTrace` is consumed
        chunk-wise in bounded memory, with checkpoint/resume at shard
        boundaries when a stream configuration is active.

        Args:
            trace: The reference stream.
            budget: Optional wall-clock :class:`Budget` polled every
                few thousand references (defaults to the ambient
                campaign budget, if any).
        """
        if hasattr(trace, "iter_chunks"):
            from repro.mem.streamsim import run_cache_streamed

            return run_cache_streamed(self, trace, budget=budget)
        from repro.obs import timeline as obs_timeline

        recorder = obs_timeline.active_recorder()
        if recorder is None:
            return self._run_impl(trace, budget=budget)
        import time as _time

        pre = self.stats
        pre_reads, pre_writes = pre.reads, pre.writes
        pre_misses, pre_cold = pre.misses, pre.cold_misses
        t0 = _time.perf_counter()
        stats = self._run_impl(trace, budget=budget)
        obs_timeline.record_cache_chunk(
            recorder,
            "fullassoc",
            trace,
            block_size=self.block_size,
            capacity_bytes=self.capacity_bytes,
            refs=len(trace),
            counted=(stats.reads + stats.writes) - (pre_reads + pre_writes),
            cold=stats.cold_misses - pre_cold,
            misses_total=stats.misses - pre_misses,
            elapsed=_time.perf_counter() - t0,
        )
        return stats

    def _run_impl(
        self, trace: Trace, budget: Optional[Budget] = None
    ) -> CacheStats:
        from repro.mem import kernels

        if kernels.guard_run("fullassoc", self, trace, budget=budget):
            return self.stats
        if budget is None:
            budget = active_budget()
        blocks = trace.block_ids(self.block_size)
        kinds = trace.kinds
        lru = self._lru
        ever_seen = self._ever_seen
        num_blocks = self.num_blocks
        stats = self.stats
        sampler = hot_loop_sampler("mem.fullassoc")
        reads = writes = read_misses = write_misses = cold = 0
        for i, (block, kind) in enumerate(zip(blocks.tolist(), kinds.tolist())):
            # One masked branch covers both cooperative budget polling
            # and obs sampling; off the mask this costs one AND + test.
            if not (i & CHECK_MASK):
                if budget is not None:
                    budget.check("fully associative cache simulation")
                if sampler is not None:
                    sampler.tick(i)
            if kind == READ:
                reads += 1
            else:
                writes += 1
            if not lru.touch(block):
                if kind == READ:
                    read_misses += 1
                else:
                    write_misses += 1
                if block not in ever_seen:
                    cold += 1
                    ever_seen.add(block)
                if len(lru) > num_blocks:
                    lru.evict_lru()
        stats.reads += reads
        stats.writes += writes
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.cold_misses += cold
        if sampler is not None:
            sampler.finish(refs=reads + writes, misses=read_misses + write_misses)
        return stats

    def contains(self, addr: int) -> bool:
        """True if the block holding ``addr`` is currently resident."""
        return self._block_of(addr) in self._lru

    def resident_blocks(self) -> int:
        return len(self._lru)

    def reset_stats(self) -> None:
        """Zero the counters without flushing cache contents.

        Used to exclude cold-start misses: warm the cache on the first
        iterations, reset, then measure the steady state (Section 2.2).
        """
        self.stats = CacheStats()

    def flush(self) -> None:
        """Empty the cache and forget cold-miss history."""
        self._lru = LRUList()
        self._ever_seen = set()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of contents, history and stats."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "block_size": self.block_size,
            "lru_mru_to_lru": list(self._lru.keys_mru_to_lru()),
            "ever_seen": sorted(self._ever_seen),
            "stats": {
                "reads": self.stats.reads,
                "writes": self.stats.writes,
                "read_misses": self.stats.read_misses,
                "write_misses": self.stats.write_misses,
                "cold_misses": self.stats.cold_misses,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (geometry must match)."""
        for field_name in ("capacity_bytes", "block_size"):
            if state.get(field_name) != getattr(self, field_name):
                raise ValueError(
                    f"checkpoint {field_name}={state.get(field_name)!r} does "
                    f"not match this cache's "
                    f"{field_name}={getattr(self, field_name)!r}"
                )
        lru = LRUList()
        # Touching in LRU->MRU order reproduces the recency list exactly.
        for key in reversed([int(k) for k in state["lru_mru_to_lru"]]):
            lru.touch(key)
        self._lru = lru
        self._ever_seen = {int(b) for b in state["ever_seen"]}
        self.stats = CacheStats(**{k: int(v) for k, v in state["stats"].items()})


def sweep_cache_sizes(
    trace: Trace,
    capacities: "np.ndarray",
    block_size: int = 8,
    warmup: int = 0,
) -> "np.ndarray":
    """Miss rate of ``trace`` at each capacity, via explicit simulation.

    This is the slow reference implementation used to validate
    :class:`~repro.mem.stack_distance.StackDistanceProfiler`; it runs the
    trace once per capacity.

    Args:
        trace: The reference stream.
        capacities: Array of cache sizes in bytes.
        block_size: Line size in bytes.
        warmup: Number of initial references whose misses are ignored
            (cold-start exclusion).

    Returns:
        Array of miss rates (misses / accesses after warmup), aligned
        with ``capacities``.
    """
    rates = np.empty(len(capacities), dtype=float)
    for i, capacity in enumerate(capacities):
        cache = FullyAssociativeCache(int(capacity), block_size)
        if warmup:
            head = Trace(trace.addrs[:warmup], trace.kinds[:warmup])
            cache.run(head)
            cache.reset_stats()
            tail = Trace(trace.addrs[warmup:], trace.kinds[warmup:])
            stats = cache.run(tail)
        else:
            stats = cache.run(trace)
        rates[i] = stats.miss_rate
    return rates
