"""Multi-level cache hierarchy simulation.

The paper's abstract frames working sets as determining "how large
different levels of a multiprocessor's cache hierarchy should be".
This module simulates an inclusive two-(or more-)level hierarchy of
fully associative LRU caches and maps each working set to the level
that captures it: the lev1WS belongs in a small first-level cache, the
important working set in the second level, and the partition-sized set
(if anywhere) in memory.

Because every level is fully associative LRU over the same block size,
the hierarchy obeys inclusion automatically: a level-i hit implies the
block would hit in any larger level.  Per-level miss counts therefore
derive from one stack-distance profile; the explicit simulator here is
the cross-check and also yields per-level *traffic*, which the profile
alone does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.mem.cache import FullyAssociativeCache
from repro.mem.stack_distance import StackDistanceProfile
from repro.mem.trace import READ, Trace


@dataclass
class LevelStats:
    """Per-level counters.

    Attributes:
        capacity_bytes: The level's size.
        accesses: References that reached this level (misses of the
            level above; all references for level 1).
        misses: References this level could not satisfy.
    """

    capacity_bytes: int
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def local_miss_rate(self) -> float:
        """Misses over accesses *to this level*."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """An inclusive multi-level fully associative LRU hierarchy.

    Args:
        capacities: Strictly increasing level sizes in bytes
            (L1 smallest).
        block_size: Shared line size.
    """

    def __init__(self, capacities: Sequence[int], block_size: int = 8) -> None:
        if not capacities:
            raise ValueError("need at least one level")
        if any(b >= a for a, b in zip(capacities[1:], capacities)):
            raise ValueError("capacities must be strictly increasing")
        self.levels = [
            FullyAssociativeCache(int(c), block_size) for c in capacities
        ]
        self.block_size = block_size
        self.stats = [LevelStats(int(c)) for c in capacities]
        self.memory_accesses = 0

    def access(self, addr: int, kind: int = READ) -> int:
        """Issue one reference; returns the level index that hit
        (``len(levels)`` means main memory)."""
        hit_level = len(self.levels)
        for index, cache in enumerate(self.levels):
            self.stats[index].accesses += 1
            if cache.access(addr, kind):
                hit_level = index
                break
            self.stats[index].misses += 1
        else:
            self.memory_accesses += 1
        # Fill the block into every level above the hit (inclusion).
        for index in range(min(hit_level, len(self.levels))):
            pass  # already filled by the miss path of FullyAssociativeCache
        return hit_level

    def run(self, trace: Trace) -> List[LevelStats]:
        for block, kind in zip(
            trace.block_ids(self.block_size).tolist(), trace.kinds.tolist()
        ):
            self.access(block * self.block_size, kind)
        return self.stats

    @property
    def global_miss_rate(self) -> float:
        """References missing every level, over all references."""
        total = self.stats[0].accesses
        return self.stats[-1].misses / total if total else 0.0


@dataclass(frozen=True)
class LevelAssignment:
    """A working set mapped to a hierarchy level.

    Attributes:
        working_set_name: Which working set.
        working_set_bytes: Its size.
        level: 0-based cache level that captures it (== num_levels
            means it only fits in main memory).
    """

    working_set_name: str
    working_set_bytes: float
    level: int


def assign_working_sets(
    working_set_sizes: Sequence[tuple],
    level_capacities: Sequence[int],
    slack: float = 2.0,
) -> List[LevelAssignment]:
    """Map each (name, bytes) working set to the smallest hierarchy
    level that holds it with ``slack`` headroom.

    This is the design procedure the paper implies: read the working-set
    hierarchy off the knees, then size each cache level to the working
    set it must capture.
    """
    if slack < 1.0:
        raise ValueError("slack must be >= 1")
    assignments = []
    for name, size in working_set_sizes:
        level = len(level_capacities)
        for index, capacity in enumerate(level_capacities):
            if capacity >= size * slack:
                level = index
                break
        assignments.append(
            LevelAssignment(
                working_set_name=name, working_set_bytes=size, level=level
            )
        )
    return assignments


def hierarchy_miss_rates_from_profile(
    profile: StackDistanceProfile, level_capacities: Sequence[int]
) -> List[float]:
    """Per-level *local* miss rates derived from one stack-distance
    profile (exact for inclusive fully associative LRU levels).

    Level i's accesses are the misses of level i-1; its misses are the
    references whose stack depth exceeds its own capacity.
    """
    if profile.total == 0:
        return [0.0] * len(level_capacities)
    upstream = profile.total
    rates = []
    for capacity in level_capacities:
        misses = profile.misses_at(int(capacity) // profile.block_size)
        rates.append(misses / upstream if upstream else 0.0)
        upstream = misses
    return rates
