"""Trace persistence.

Application traces can take minutes to generate (the Barnes-Hut force
phase at Figure-6 scale emits millions of references); saving them lets
experiments and notebooks iterate on the *analysis* without re-running
the application.  Traces are stored as compressed ``.npz`` archives
with a format version, CRC32 content checksums, and optional metadata.

Integrity guarantees (format version 2):

- **Durable atomic save** — the archive is written to a temporary file
  in the destination directory, fsynced, moved into place with
  ``os.replace``, and the directory entry fsynced (the shared
  crash-consistency discipline of :mod:`repro.runtime.iofault`), so an
  interrupted :func:`save_trace` never leaves a truncated ``.npz``
  where a valid one was expected — and a completed one survives
  power-loss/kill semantics, not just process death.
- **Typed write failures** — an I/O failure during the save (ENOSPC,
  EIO) unlinks the temporary file and raises
  :class:`~repro.runtime.errors.TraceFileWriteError`; a failed save
  never leaves ``*.tmp`` litter for ``validate`` to trip over.
- **Checksummed load** — the stored CRC32 over the canonicalized
  ``addrs``/``kinds`` arrays (and a separate one over the metadata) is
  verified on load; any mismatch, missing field, or undecodable
  archive raises :class:`TraceFileCorruptError` instead of returning
  silently wrong data.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.mem.trace import Trace
from repro.runtime.errors import TraceFileWriteError
from repro.runtime.iofault import check_io, fsync_directory, io_fsync, io_replace

#: Bumped when the on-disk layout changes.  Version 2 added the CRC32
#: content checksums; version-1 archives (no checksum) are rejected.
FORMAT_VERSION = 2


class TraceFileCorruptError(ValueError):
    """A trace archive failed its integrity check.

    Subclasses :class:`ValueError` so callers that guarded the old
    format errors keep working.
    """


def _array_checksum(addrs: np.ndarray, kinds: np.ndarray) -> int:
    """CRC32 over the canonical little-endian bytes of both arrays."""
    canonical_addrs = np.ascontiguousarray(addrs, dtype="<i8")
    canonical_kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
    crc = zlib.crc32(canonical_addrs.tobytes())
    return zlib.crc32(canonical_kinds.tobytes(), crc)


def trace_header(trace: Trace) -> Dict[str, int]:
    """The reference-count header (``refs``/``reads``/``writes``) for
    ``trace``, for embedding in :func:`save_trace` metadata so artifact
    validation can cross-check the header against the stored arrays."""
    reads = int((np.asarray(trace.kinds) == 0).sum())
    return {
        "refs": len(trace.addrs),
        "reads": reads,
        "writes": len(trace.addrs) - reads,
    }


def save_trace(
    path: Union[str, Path],
    trace: Trace,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write ``trace`` to ``path`` (.npz, compressed, atomic).

    The archive is staged in a temporary file and renamed into place:
    an interruption leaves either the previous file or nothing, never
    a half-written archive.

    Args:
        path: Destination file (suffix .npz recommended).
        trace: The trace to persist.
        metadata: JSON-serializable description (problem parameters,
            generator name, ...), stored alongside the arrays and
            round-tripped verbatim by :func:`load_metadata`.  Include
            :func:`trace_header` in it to let artifact validation
            cross-check reference counts against the arrays.
    """
    path = Path(path)
    payload = json.dumps(metadata or {}).encode("utf-8")
    parent = path.parent if str(path.parent) else Path(".")
    tmp_name = None
    try:
        # mkstemp lives inside the try so that a missing parent
        # directory takes the same typed-error path as ENOSPC/EIO.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=parent
        )
        with os.fdopen(fd, "wb") as handle:
            # The archive bytes go through numpy's own writer; give the
            # fault injector its deterministic hook here so
            # ENOSPC/EIO/kill can land "inside" the trace write.
            check_io("tracefile", "write")
            np.savez_compressed(
                handle,
                addrs=trace.addrs,
                kinds=trace.kinds,
                version=np.int64(FORMAT_VERSION),
                checksum=np.int64(_array_checksum(trace.addrs, trace.kinds)),
                meta_checksum=np.int64(zlib.crc32(payload)),
                metadata=np.frombuffer(payload, dtype=np.uint8),
            )
            handle.flush()
            io_fsync(handle.fileno(), "tracefile")
        io_replace(tmp_name, path, "tracefile")
    except BaseException as exc:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        if isinstance(exc, OSError):
            raise TraceFileWriteError(
                f"cannot save trace to {path}: {exc}"
            ) from exc
        raise
    fsync_directory(parent, "tracefile")


def _open_archive(path: Path):
    """np.load with decode failures mapped to TraceFileCorruptError."""
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as exc:
        raise TraceFileCorruptError(
            f"trace file {path} is not a readable archive: {exc}"
        )


def _check_version(archive, path: Path) -> None:
    if "version" not in archive.files:
        raise TraceFileCorruptError(f"trace file {path} has no format version")
    version = _scalar(archive, "version", path)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"trace file format {version} unsupported (expected {FORMAT_VERSION})"
        )


def _field(archive, name: str, path: Path) -> np.ndarray:
    """One archive member, with *every* decode failure mapped to
    :class:`TraceFileCorruptError`.

    Member access is lazy in ``.npz`` archives — the zip entry is only
    decompressed here, so this is where corruption actually surfaces
    (fuzzing found ``BadZipFile``, ``zlib.error``, and
    ``NotImplementedError`` for mangled compression-method fields all
    escaping from what looked like a plain dictionary lookup).
    """
    if name not in archive.files:
        raise TraceFileCorruptError(f"trace file {path} is missing {name!r}")
    try:
        return archive[name]
    except (
        zipfile.BadZipFile,
        OSError,
        EOFError,
        zlib.error,
        ValueError,
        NotImplementedError,
    ) as exc:
        raise TraceFileCorruptError(
            f"trace file {path} field {name!r} is undecodable: {exc}"
        )


def _scalar(archive, name: str, path: Path) -> int:
    """An integer scalar member; shape/dtype damage is corruption."""
    value = _field(archive, name, path)
    try:
        return int(value)
    except (TypeError, ValueError, OverflowError) as exc:
        raise TraceFileCorruptError(
            f"trace file {path} field {name!r} is not an integer scalar: {exc}"
        )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        TraceFileCorruptError: When the archive is truncated,
            undecodable, missing fields, or fails its checksum.
        ValueError: When the archive is valid but of an unsupported
            format version.
    """
    path = Path(path)
    with _open_archive(path) as archive:
        _check_version(archive, path)
        try:
            addrs = _field(archive, "addrs", path).astype(np.int64)
            kinds = _field(archive, "kinds", path).astype(np.uint8)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, TraceFileCorruptError):
                raise
            raise TraceFileCorruptError(
                f"trace file {path} arrays are undecodable: {exc}"
            )
        stored = _scalar(archive, "checksum", path)
        actual = _array_checksum(addrs, kinds)
        if stored != actual:
            raise TraceFileCorruptError(
                f"trace file {path} failed its checksum "
                f"(stored {stored:#010x}, recomputed {actual:#010x})"
            )
        return Trace(addrs, kinds)


def load_metadata(path: Union[str, Path]) -> Dict[str, object]:
    """Read only the metadata of a saved trace (checksum-verified)."""
    path = Path(path)
    with _open_archive(path) as archive:
        _check_version(archive, path)
        raw = bytes(_field(archive, "metadata", path).tobytes())
        stored = _scalar(archive, "meta_checksum", path)
        if stored != zlib.crc32(raw):
            raise TraceFileCorruptError(
                f"trace file {path} metadata failed its checksum"
            )
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFileCorruptError(
                f"trace file {path} metadata is undecodable: {exc}"
            )
