"""Trace persistence.

Application traces can take minutes to generate (the Barnes-Hut force
phase at Figure-6 scale emits millions of references); saving them lets
experiments and notebooks iterate on the *analysis* without re-running
the application.  Traces are stored as compressed ``.npz`` archives
with a format version and optional metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.mem.trace import Trace

#: Bumped when the on-disk layout changes.
FORMAT_VERSION = 1


def save_trace(
    path: Union[str, Path],
    trace: Trace,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write ``trace`` to ``path`` (.npz, compressed).

    Args:
        path: Destination file (suffix .npz recommended).
        trace: The trace to persist.
        metadata: JSON-serializable description (problem parameters,
            generator name, ...), stored alongside the arrays.
    """
    payload = json.dumps(metadata or {})
    np.savez_compressed(
        Path(path),
        addrs=trace.addrs,
        kinds=trace.kinds,
        version=np.int64(FORMAT_VERSION),
        metadata=np.frombuffer(payload.encode("utf-8"), dtype=np.uint8),
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace file format {version} unsupported (expected {FORMAT_VERSION})"
            )
        return Trace(
            archive["addrs"].astype(np.int64),
            archive["kinds"].astype(np.uint8),
        )


def load_metadata(path: Union[str, Path]) -> Dict[str, object]:
    """Read only the metadata of a saved trace."""
    with np.load(Path(path)) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace file format {version} unsupported (expected {FORMAT_VERSION})"
            )
        raw = bytes(archive["metadata"].tobytes())
        return json.loads(raw.decode("utf-8")) if raw else {}
