"""Chunk-wise simulation over sharded traces, with checkpoint/resume.

The streamed drivers here replay a :class:`~repro.mem.shards.StreamingTrace`
through the ordinary in-memory simulators one shard at a time — each
chunk is wrapped as a plain :class:`~repro.mem.trace.Trace` and fed to
the exact hot loop the in-memory path runs, so streamed results are
identical *by construction*, not by reimplementation (the
``validate/differential.py`` oracle still checks this exhaustively).

At every shard boundary the simulator's full state is snapshotted to a
CRC-framed checkpoint file (see :func:`repro.mem.shards.save_sim_checkpoint`)
keyed on the SHA-256 of ``(trace content, simulator kind, parameters)``:

* a SIGKILL at any instant leaves either the previous snapshot or the
  new one — resume replays from the last sealed boundary and finishes
  byte-identical with an uninterrupted run;
* the key is *content*-addressed, so a retried attempt that
  deterministically regenerates the same trace (into a fresh ``.trd``
  directory) still resumes its simulation where the killed attempt
  stopped;
* a damaged or mismatched snapshot degrades to "no snapshot" and the
  simulation restarts from shard zero — always safe.

Each checkpoint file has a sibling ``<key>.ckpt.wal`` journal (the WAL1
framing of :mod:`repro.runtime.journal`) recording one ``sim-checkpoint``
record per boundary, giving crash forensics the same treatment as
PR 4's attempt records.

Progress is exported as gauges (``mem.stream.shards_done`` /
``mem.stream.shards_total``) so ``status`` can report mid-simulation
position; reference throughput still comes from the simulators' own
hot-loop samplers — no counters are double-published here.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

from repro.mem.shards import (
    StreamingTrace,
    active_stream_config,
    load_sim_checkpoint,
    save_sim_checkpoint,
)
from repro.mem.trace import Trace
from repro.obs import metrics as obs_metrics

#: Sentinel: "derive the checkpoint path from the ambient config".
_AMBIENT = object()


def _canonical_params(params: Dict[str, object]) -> str:
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def checkpoint_key(trace: StreamingTrace, kind: str, params: Dict[str, object]) -> str:
    """Content-addressed identity of one (trace, simulator) pairing."""
    digest = hashlib.sha256(
        f"{trace.content_sha256}|{kind}|{_canonical_params(params)}".encode("utf-8")
    )
    return digest.hexdigest()[:32]


def default_checkpoint_path(
    trace: StreamingTrace, kind: str, params: Dict[str, object]
) -> Optional[Path]:
    """Where the ambient configuration keeps this simulation's snapshot.

    ``None`` (checkpointing disabled) when no stream configuration is
    installed — e.g. ad-hoc streamed runs in tests.
    """
    config = active_stream_config()
    if config is None:
        return None
    return config.checkpoint_directory / f"{checkpoint_key(trace, kind, params)}.ckpt"


def _load_resume_point(
    path: Optional[Path],
    trace: StreamingTrace,
    kind: str,
    params: Dict[str, object],
) -> Optional[Dict[str, object]]:
    """The snapshot to resume from, or ``None`` to start at shard zero.

    A snapshot only counts if it matches the trace content, simulator
    kind and parameters, *and* the shard geometry (boundaries move when
    ``shard_refs`` changes, so a snapshot taken under a different
    geometry cannot be replayed from).
    """
    if path is None:
        return None
    payload = load_sim_checkpoint(path)
    if payload is None:
        return None
    if (
        payload.get("trace_sha256") != trace.content_sha256
        or payload.get("kind") != kind
        or payload.get("params") != params
        or payload.get("shard_refs") != trace.shard_refs
        or not isinstance(payload.get("next_shard"), int)
        or not isinstance(payload.get("state"), dict)
    ):
        return None
    next_shard = payload["next_shard"]
    if not 0 < next_shard <= trace.num_shards:
        return None
    return payload


def run_chunked(
    sim,
    trace: StreamingTrace,
    kind: str,
    params: Dict[str, object],
    budget=None,
    checkpoint_path=_AMBIENT,
) -> None:
    """Feed ``trace`` through ``sim`` shard-by-shard with checkpoints.

    ``sim`` is any object with ``state_dict()`` / ``load_state_dict()``
    and either ``feed(trace, budget)`` (incremental profilers) or
    ``run(trace, budget)`` (the caches).  ``checkpoint_path`` defaults
    to the ambient stream configuration's content-addressed location;
    pass ``None`` to disable checkpointing explicitly.
    """
    path = (
        default_checkpoint_path(trace, kind, params)
        if checkpoint_path is _AMBIENT
        else (Path(checkpoint_path) if checkpoint_path else None)
    )
    start_shard = 0
    resume = _load_resume_point(path, trace, kind, params)
    if resume is not None:
        sim.load_state_dict(resume["state"])
        start_shard = resume["next_shard"]
        obs_metrics.inc("mem.stream.resumes")
    step = sim.feed if hasattr(sim, "feed") else sim.run
    journal = None
    obs_metrics.set_gauge("mem.stream.shards_total", trace.num_shards)
    obs_metrics.set_gauge("mem.stream.shards_done", start_shard)
    try:
        for index, addrs, kinds in trace.iter_chunks(start_shard):
            step(Trace(addrs, kinds), budget)
            done = index + 1
            obs_metrics.set_gauge("mem.stream.shards_done", done)
            if path is not None:
                save_sim_checkpoint(
                    path,
                    {
                        "trace_sha256": trace.content_sha256,
                        "kind": kind,
                        "params": params,
                        "shard_refs": trace.shard_refs,
                        "next_shard": done,
                        "state": sim.state_dict(),
                    },
                )
                if journal is None:
                    from repro.runtime.journal import Journal

                    journal = Journal(path.with_name(path.name + ".wal"))
                journal.append(
                    "sim-checkpoint",
                    kind=kind,
                    trace_sha256=trace.content_sha256,
                    shard=done,
                    shards_total=trace.num_shards,
                )
    finally:
        if journal is not None:
            journal.close()


def run_cache_streamed(cache, trace: StreamingTrace, budget=None, checkpoint_path=_AMBIENT):
    """Streamed drive of a :class:`~repro.mem.cache.FullyAssociativeCache`."""
    params = {
        "capacity_bytes": cache.capacity_bytes,
        "block_size": cache.block_size,
    }
    run_chunked(
        cache, trace, "fullassoc", params, budget=budget, checkpoint_path=checkpoint_path
    )
    return cache.stats


def run_setassoc_streamed(cache, trace: StreamingTrace, budget=None, checkpoint_path=_AMBIENT):
    """Streamed drive of a :class:`~repro.mem.setassoc.SetAssociativeCache`."""
    params = {
        "capacity_bytes": cache.capacity_bytes,
        "block_size": cache.block_size,
        "associativity": cache.associativity,
    }
    run_chunked(
        cache, trace, "setassoc", params, budget=budget, checkpoint_path=checkpoint_path
    )
    return cache.stats


def profile_streamed(profiler, trace: StreamingTrace, budget=None, checkpoint_path=_AMBIENT):
    """Streamed stack-distance profile (exact, bounded memory).

    ``profiler`` is a configured
    :class:`~repro.mem.stack_distance.StackDistanceProfiler`; the heavy
    lifting happens in the incremental
    :class:`~repro.mem.stack_distance.StackDistanceRun`, whose Fenwick
    tree is compacted at every snapshot so both the running state and
    the serialized checkpoints stay proportional to the footprint, not
    the trace length.
    """
    from repro.mem.stack_distance import StackDistanceRun

    run = StackDistanceRun(
        block_size=profiler.block_size,
        count_reads_only=profiler.count_reads_only,
        warmup=profiler.warmup,
    )
    params = {
        "block_size": profiler.block_size,
        "count_reads_only": profiler.count_reads_only,
        "warmup": profiler.warmup,
    }
    run_chunked(
        run, trace, "stackdist", params, budget=budget, checkpoint_path=checkpoint_path
    )
    return run.result()
