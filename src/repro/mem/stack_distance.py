"""Mattson stack-distance profiling.

For a fully associative LRU cache, whether a reference hits depends only
on its *stack depth*: the number of distinct blocks referenced since the
previous reference to the same block (inclusive of the block itself).  A
reference with stack depth ``d`` hits in every cache of at least ``d``
blocks and misses in every smaller cache.  Profiling the distribution of
stack depths over a trace therefore yields the exact LRU miss rate at
**every** cache size in a single pass — the classic inclusion property
of Mattson, Gecsei, Slutz & Traiger (1970).

The paper sweeps cache sizes and looks for knees in the resulting curve
(Section 2.2); this profiler is how we make that sweep tractable in
Python.

Implementation: a Fenwick (binary-indexed) tree over reference
timestamps counts, for each access, how many *distinct* blocks were
touched since the previous access to the same block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.mem.trace import READ, Trace
from repro.obs.metrics import hot_loop_sampler
from repro.runtime.budget import CHECK_MASK, Budget, active_budget


class _FenwickTree:
    """Prefix-sum tree over ``n`` slots, 0-indexed externally."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self._tree
        n = self._n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots [0, index]."""
        i = index + 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots [lo, hi]; zero when the range is empty."""
        if hi < lo:
            return 0
        total = self.prefix_sum(hi)
        if lo > 0:
            total -= self.prefix_sum(lo - 1)
        return total

    @classmethod
    def from_ones(cls, count: int, capacity: int) -> "_FenwickTree":
        """Tree of ``capacity`` slots with ones in slots ``[0, count)``.

        Linear-time construction (set the leaves, propagate each node
        into its parent once) — used when rebuilding from a compacted
        timestamp space, where the live slots are exactly a prefix.
        """
        if count > capacity:
            raise ValueError("count cannot exceed capacity")
        tree = cls(capacity)
        arr = tree._tree
        arr[1 : count + 1] = 1
        for i in range(1, capacity + 1):
            j = i + (i & -i)
            if j <= capacity:
                arr[j] += arr[i]
        return tree


@dataclass
class StackDistanceProfile:
    """Result of profiling one trace.

    Attributes:
        depth_histogram: ``depth_histogram[d]`` counts references whose
            stack depth is ``d`` (1-based; index 0 is unused).
        cold_misses: References to never-before-seen blocks (infinite
            depth).
        total: Total counted references.
        block_size: Cache line size in bytes used during profiling.
    """

    depth_histogram: np.ndarray
    cold_misses: int
    total: int
    block_size: int

    def misses_at(self, capacity_blocks: int) -> int:
        """Miss count for a fully associative LRU cache of
        ``capacity_blocks`` lines."""
        if capacity_blocks < 1:
            return self.total
        hist = self.depth_histogram
        upper = min(capacity_blocks, len(hist) - 1)
        hits = int(hist[1 : upper + 1].sum())
        return self.total - hits

    def miss_rate_at(self, capacity_bytes: int) -> float:
        """Miss rate for a cache of ``capacity_bytes`` bytes."""
        if self.total == 0:
            return 0.0
        return self.misses_at(capacity_bytes // self.block_size) / self.total

    def miss_rates(self, capacities_bytes: Sequence[int]) -> np.ndarray:
        """Vector of miss rates, one per capacity (in bytes)."""
        return np.array(
            [self.miss_rate_at(int(c)) for c in capacities_bytes], dtype=float
        )

    def misses_per_op(
        self, capacities_bytes: Sequence[int], flops: float
    ) -> np.ndarray:
        """Misses per floating-point operation — the paper's metric for
        LU, CG and FFT (Section 2.2)."""
        if flops <= 0:
            raise ValueError("flops must be positive")
        return np.array(
            [self.misses_at(int(c) // self.block_size) / flops for c in capacities_bytes],
            dtype=float,
        )

    @property
    def max_useful_capacity_blocks(self) -> int:
        """Smallest capacity (in blocks) achieving the compulsory-only
        miss rate; equals the trace footprint in blocks."""
        hist = self.depth_histogram
        nonzero = np.nonzero(hist)[0]
        return int(nonzero[-1]) if nonzero.size else 0

    @property
    def compulsory_miss_rate(self) -> float:
        """Miss rate of an infinite cache (cold misses only)."""
        return self.cold_misses / self.total if self.total else 0.0


class StackDistanceProfiler:
    """Single-pass LRU stack-distance profiler.

    Args:
        block_size: Cache line size in bytes (power of two; default one
            double word, matching the paper's accounting).
        count_reads_only: When True, only read references contribute to
            the histogram (the paper's read-miss-rate metric for
            Barnes-Hut and volume rendering) but *all* references update
            LRU state.
        warmup: Number of initial references excluded from the
            histogram (cold-start exclusion per Section 2.2); they still
            update LRU state.
    """

    def __init__(
        self,
        block_size: int = 8,
        count_reads_only: bool = False,
        warmup: int = 0,
    ) -> None:
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError("block_size must be a positive power of two")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.block_size = block_size
        self.count_reads_only = count_reads_only
        self.warmup = warmup

    def profile(
        self, trace: Trace, budget: Optional[Budget] = None
    ) -> StackDistanceProfile:
        """Profile a trace; returns the full stack-depth distribution.

        A sharded :class:`~repro.mem.shards.StreamingTrace` is consumed
        chunk-wise in bounded memory (with checkpoint/resume when a
        stream configuration is active); an in-memory trace runs the
        same incremental engine in a single feed.

        Args:
            trace: The reference stream.
            budget: Optional wall-clock :class:`Budget` polled
                cooperatively every few thousand references (defaults
                to the ambient campaign budget, if any); raises
                :class:`~repro.runtime.errors.BudgetExceeded` when the
                deadline passes.
        """
        if hasattr(trace, "iter_chunks"):
            from repro.mem.streamsim import profile_streamed

            return profile_streamed(self, trace, budget=budget)
        from repro.obs import timeline as obs_timeline

        run = StackDistanceRun(
            block_size=self.block_size,
            count_reads_only=self.count_reads_only,
            warmup=self.warmup,
            capacity_hint=len(trace),
        )
        recorder = obs_timeline.active_recorder()
        step = (
            recorder.chunk_refs_for(len(trace)) if recorder is not None else 0
        )
        if recorder is None or step >= len(trace):
            run.feed(trace, budget=budget)
            return run.result()
        # Timeline recording is on: feed the same trace in windows so
        # each one lands a per-chunk row.  The incremental engine makes
        # chunked feeding bit-identical to a single feed, and the
        # window floor stays above the kernel guard's min_refs so the
        # vector tier is never demoted by the chunking itself.
        for start in range(0, len(trace), step):
            run.feed(
                Trace(
                    trace.addrs[start : start + step],
                    trace.kinds[start : start + step],
                ),
                budget=budget,
            )
        return run.result()


class StackDistanceRun:
    """Incremental stack-distance engine with bounded, serializable state.

    The classic single-pass algorithm indexes its Fenwick tree by raw
    reference timestamp, so the tree grows with the *trace* — fatal for
    out-of-core streams.  The saving observation: the tree slot for
    time ``i`` holds 1 exactly when ``i`` is some block's most recent
    access time, so the entire tree is a function of the ``last_time``
    map alone.  Depths depend only on the *relative order* of last
    accesses, which lets us compact: renumber the live timestamps to
    ``0..F-1`` (order preserved), rebuild the tree linearly, and keep
    going — results are bit-identical while memory stays
    ``O(footprint + chunk)`` instead of ``O(trace)``.

    The same property makes checkpoints small: :meth:`state_dict`
    compacts first, so a snapshot is just the blocks in last-access
    order plus the histogram — no tree, no raw timestamps.

    Feed chunks with :meth:`feed`; finish with :meth:`result`.
    """

    def __init__(
        self,
        block_size: int = 8,
        count_reads_only: bool = False,
        warmup: int = 0,
        capacity_hint: int = 0,
    ) -> None:
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError("block_size must be a positive power of two")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.block_size = block_size
        self.count_reads_only = count_reads_only
        self.warmup = warmup
        capacity = max(int(capacity_hint), 1024)
        self._tree = _FenwickTree(capacity)
        self._last_time: Dict[int, int] = {}
        self._clock = 0  # next free tree timestamp (resets on compaction)
        self._pos = 0  # total references fed (never resets; drives warmup)
        self._hist = np.zeros(max(int(capacity_hint) + 2, 1024), dtype=np.int64)
        self._cold = 0
        self._total = 0

    @property
    def refs_fed(self) -> int:
        return self._pos

    def _grow_hist(self, size: int) -> None:
        if len(self._hist) < size:
            grown = np.zeros(size, dtype=np.int64)
            grown[: len(self._hist)] = self._hist
            self._hist = grown

    def _compact(self, incoming: int) -> None:
        """Renumber live timestamps to ``0..F-1`` and rebuild the tree.

        Order-preserving, so every subsequent depth is unchanged; the
        new capacity leaves room for ``incoming`` more references plus
        slack so compactions stay rare.
        """
        live = sorted(self._last_time.items(), key=lambda item: item[1])
        footprint = len(live)
        capacity = max(2 * (footprint + incoming), 4096)
        self._last_time = {block: rank for rank, (block, _) in enumerate(live)}
        self._tree = _FenwickTree.from_ones(footprint, capacity)
        self._clock = footprint

    def feed(self, trace: Trace, budget: Optional[Budget] = None) -> None:
        """Consume one chunk of references, updating the running state.

        When a timeline recorder is active (``repro.obs.timeline``),
        every feed also emits one per-chunk telemetry row — covering
        both the vectorized kernel tier and the pure-Python loop, since
        both leave their results in the same incremental state.  The
        kernel trust harness replays chunks with sampling suppressed,
        which deactivates the recorder for the shadow copy.
        """
        from repro.obs import timeline as obs_timeline

        recorder = obs_timeline.active_recorder()
        if recorder is None:
            self._feed_impl(trace, budget=budget)
            return
        pre_hist = self._hist.copy()
        pre_cold = self._cold
        pre_total = self._total
        t0 = time.perf_counter()
        self._feed_impl(trace, budget=budget)
        elapsed = time.perf_counter() - t0
        self._record_chunk(
            recorder, trace, pre_hist, pre_cold, pre_total, elapsed
        )

    def _record_chunk(
        self,
        recorder,
        trace: Trace,
        pre_hist: np.ndarray,
        pre_cold: int,
        pre_total: int,
        elapsed: float,
    ) -> None:
        """Emit one timeline row for the chunk just fed (never raises)."""
        from repro.mem import kernels
        from repro.obs.metrics import inc

        try:
            n = len(trace)
            if n == 0:
                return
            d_cold = self._cold - pre_cold
            d_total = self._total - pre_total
            size = max(len(self._hist), len(pre_hist))
            d_hist = np.zeros(size, dtype=np.int64)
            d_hist[: len(self._hist)] += self._hist
            d_hist[: len(pre_hist)] -= pre_hist
            cum = np.cumsum(d_hist)
            hits_total = int(cum[-1])
            grid = default_capacity_grid()
            cap_blocks = np.minimum(grid // self.block_size, size - 1)
            hits_within = np.where(cap_blocks >= 1, cum[cap_blocks], 0)
            misses = d_total - hits_within
            percentiles: Dict[str, int] = {}
            if hits_total > 0:
                for label, q in (
                    ("depth_p50", 0.50),
                    ("depth_p90", 0.90),
                    ("depth_p99", 0.99),
                ):
                    percentiles[label] = int(
                        np.searchsorted(cum, q * hits_total)
                    )
            config = kernels.active_kernel_config()
            tier = (
                "vector"
                if config.tier == "vector"
                and not kernels.quarantined("stackdist")
                else "oracle"
            )
            recorder.record(
                "stackdist",
                refs=n,
                counted=int(d_total),
                cold=int(d_cold),
                elapsed_s=round(elapsed, 9),
                refs_per_second=(n / elapsed) if elapsed > 0 else None,
                block_size=self.block_size,
                ws_blocks=int(trace.footprint(self.block_size)),
                footprint_blocks=len(self._last_time),
                cache_sizes=[int(c) for c in grid],
                misses=[int(m) for m in misses],
                tier=tier,
                **percentiles,
            )
        except Exception:
            inc("obs.timeline.write_errors")

    def _feed_impl(self, trace: Trace, budget: Optional[Budget] = None) -> None:
        from repro.mem import kernels

        if kernels.guard_run("stackdist", self, trace, budget=budget):
            return
        if budget is None:
            budget = active_budget()
        blocks = trace.block_ids(self.block_size).tolist()
        kinds = trace.kinds.tolist()
        n = len(blocks)
        if n == 0:
            return
        if self._clock + n > self._tree._n:
            self._compact(n)
        self._grow_hist(len(self._last_time) + n + 2)
        tree = self._tree
        last_time = self._last_time
        hist = self._hist
        cold = 0
        total = 0
        t0 = self._clock
        p0 = self._pos
        count_reads_only = self.count_reads_only
        warmup = self.warmup
        sampler = hot_loop_sampler("mem.stackdist")
        for i in range(n):
            if not (i & CHECK_MASK):
                if budget is not None:
                    budget.check("stack-distance profiling")
                if sampler is not None:
                    sampler.tick(i)
            t = t0 + i
            block = blocks[i]
            counted = p0 + i >= warmup and (
                not count_reads_only or kinds[i] == READ
            )
            prev = last_time.get(block)
            if prev is None:
                if counted:
                    cold += 1
                    total += 1
            else:
                # Distinct blocks touched strictly between prev and t,
                # plus the block itself -> 1-based stack depth.
                depth = tree.range_sum(prev + 1, t - 1) + 1
                if counted:
                    hist[depth] += 1
                    total += 1
                tree.add(prev, -1)
            tree.add(t, +1)
            last_time[block] = t
        self._clock = t0 + n
        self._pos = p0 + n
        self._cold += cold
        self._total += total
        if sampler is not None:
            sampler.finish(refs=n, misses=cold)

    def result(self) -> StackDistanceProfile:
        """The profile over everything fed so far (histogram trimmed)."""
        nonzero = np.nonzero(self._hist)[0]
        top = int(nonzero[-1]) if nonzero.size else 0
        return StackDistanceProfile(
            depth_histogram=self._hist[: top + 1].copy(),
            cold_misses=self._cold,
            total=self._total,
            block_size=self.block_size,
        )

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot; compacts first so it is small.

        The ``last_time`` map serializes as just the blocks in
        last-access order — after compaction their timestamps are
        exactly ``0..F-1``, so order alone reconstructs the map *and*
        the tree.
        """
        self._compact(0)
        ordered = sorted(self._last_time.items(), key=lambda item: item[1])
        nonzero = np.nonzero(self._hist)[0]
        top = int(nonzero[-1]) if nonzero.size else 0
        return {
            "block_size": self.block_size,
            "count_reads_only": self.count_reads_only,
            "warmup": self.warmup,
            "pos": self._pos,
            "cold": self._cold,
            "total": self._total,
            "blocks_by_last_access": [block for block, _ in ordered],
            "hist": self._hist[: top + 1].tolist(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (parameters must match)."""
        for field in ("block_size", "count_reads_only", "warmup"):
            if state.get(field) != getattr(self, field):
                raise ValueError(
                    f"checkpoint {field}={state.get(field)!r} does not match "
                    f"this run's {field}={getattr(self, field)!r}"
                )
        blocks = [int(b) for b in state["blocks_by_last_access"]]
        footprint = len(blocks)
        self._last_time = {block: rank for rank, block in enumerate(blocks)}
        self._tree = _FenwickTree.from_ones(
            footprint, max(2 * footprint, 4096)
        )
        self._clock = footprint
        self._pos = int(state["pos"])
        self._cold = int(state["cold"])
        self._total = int(state["total"])
        hist = np.asarray(state["hist"], dtype=np.int64)
        self._hist = np.zeros(max(len(hist), 1024), dtype=np.int64)
        self._hist[: len(hist)] = hist


def profile_trace(
    trace: Trace,
    block_size: int = 8,
    count_reads_only: bool = False,
    warmup: int = 0,
    budget: Optional[Budget] = None,
) -> StackDistanceProfile:
    """Convenience wrapper: profile ``trace`` with a fresh profiler."""
    profiler = StackDistanceProfiler(
        block_size=block_size,
        count_reads_only=count_reads_only,
        warmup=warmup,
    )
    return profiler.profile(trace, budget=budget)


def default_capacity_grid(
    min_bytes: int = 64,
    max_bytes: int = 8 * 1024 * 1024,
    points_per_octave: int = 4,
) -> np.ndarray:
    """A geometric grid of cache sizes for miss-rate sweeps.

    Mirrors the paper's log-scale cache-size axes (Figures 2, 4-7).
    """
    if min_bytes < 8:
        raise ValueError("min_bytes must be at least one double word")
    if max_bytes < min_bytes:
        raise ValueError("max_bytes must be >= min_bytes")
    octaves = np.log2(max_bytes / min_bytes)
    count = max(2, int(round(octaves * points_per_octave)) + 1)
    grid = np.unique(
        np.round(
            min_bytes * np.power(2.0, np.linspace(0.0, octaves, count))
        ).astype(np.int64)
    )
    return grid
