"""Mattson stack-distance profiling.

For a fully associative LRU cache, whether a reference hits depends only
on its *stack depth*: the number of distinct blocks referenced since the
previous reference to the same block (inclusive of the block itself).  A
reference with stack depth ``d`` hits in every cache of at least ``d``
blocks and misses in every smaller cache.  Profiling the distribution of
stack depths over a trace therefore yields the exact LRU miss rate at
**every** cache size in a single pass — the classic inclusion property
of Mattson, Gecsei, Slutz & Traiger (1970).

The paper sweeps cache sizes and looks for knees in the resulting curve
(Section 2.2); this profiler is how we make that sweep tractable in
Python.

Implementation: a Fenwick (binary-indexed) tree over reference
timestamps counts, for each access, how many *distinct* blocks were
touched since the previous access to the same block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.mem.trace import READ, Trace
from repro.obs.metrics import hot_loop_sampler
from repro.runtime.budget import CHECK_MASK, Budget, active_budget


class _FenwickTree:
    """Prefix-sum tree over ``n`` slots, 0-indexed externally."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self._tree
        n = self._n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots [0, index]."""
        i = index + 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots [lo, hi]; zero when the range is empty."""
        if hi < lo:
            return 0
        total = self.prefix_sum(hi)
        if lo > 0:
            total -= self.prefix_sum(lo - 1)
        return total


@dataclass
class StackDistanceProfile:
    """Result of profiling one trace.

    Attributes:
        depth_histogram: ``depth_histogram[d]`` counts references whose
            stack depth is ``d`` (1-based; index 0 is unused).
        cold_misses: References to never-before-seen blocks (infinite
            depth).
        total: Total counted references.
        block_size: Cache line size in bytes used during profiling.
    """

    depth_histogram: np.ndarray
    cold_misses: int
    total: int
    block_size: int

    def misses_at(self, capacity_blocks: int) -> int:
        """Miss count for a fully associative LRU cache of
        ``capacity_blocks`` lines."""
        if capacity_blocks < 1:
            return self.total
        hist = self.depth_histogram
        upper = min(capacity_blocks, len(hist) - 1)
        hits = int(hist[1 : upper + 1].sum())
        return self.total - hits

    def miss_rate_at(self, capacity_bytes: int) -> float:
        """Miss rate for a cache of ``capacity_bytes`` bytes."""
        if self.total == 0:
            return 0.0
        return self.misses_at(capacity_bytes // self.block_size) / self.total

    def miss_rates(self, capacities_bytes: Sequence[int]) -> np.ndarray:
        """Vector of miss rates, one per capacity (in bytes)."""
        return np.array(
            [self.miss_rate_at(int(c)) for c in capacities_bytes], dtype=float
        )

    def misses_per_op(
        self, capacities_bytes: Sequence[int], flops: float
    ) -> np.ndarray:
        """Misses per floating-point operation — the paper's metric for
        LU, CG and FFT (Section 2.2)."""
        if flops <= 0:
            raise ValueError("flops must be positive")
        return np.array(
            [self.misses_at(int(c) // self.block_size) / flops for c in capacities_bytes],
            dtype=float,
        )

    @property
    def max_useful_capacity_blocks(self) -> int:
        """Smallest capacity (in blocks) achieving the compulsory-only
        miss rate; equals the trace footprint in blocks."""
        hist = self.depth_histogram
        nonzero = np.nonzero(hist)[0]
        return int(nonzero[-1]) if nonzero.size else 0

    @property
    def compulsory_miss_rate(self) -> float:
        """Miss rate of an infinite cache (cold misses only)."""
        return self.cold_misses / self.total if self.total else 0.0


class StackDistanceProfiler:
    """Single-pass LRU stack-distance profiler.

    Args:
        block_size: Cache line size in bytes (power of two; default one
            double word, matching the paper's accounting).
        count_reads_only: When True, only read references contribute to
            the histogram (the paper's read-miss-rate metric for
            Barnes-Hut and volume rendering) but *all* references update
            LRU state.
        warmup: Number of initial references excluded from the
            histogram (cold-start exclusion per Section 2.2); they still
            update LRU state.
    """

    def __init__(
        self,
        block_size: int = 8,
        count_reads_only: bool = False,
        warmup: int = 0,
    ) -> None:
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError("block_size must be a positive power of two")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.block_size = block_size
        self.count_reads_only = count_reads_only
        self.warmup = warmup

    def profile(
        self, trace: Trace, budget: Optional[Budget] = None
    ) -> StackDistanceProfile:
        """Profile a trace; returns the full stack-depth distribution.

        Args:
            trace: The reference stream.
            budget: Optional wall-clock :class:`Budget` polled
                cooperatively every few thousand references (defaults
                to the ambient campaign budget, if any); raises
                :class:`~repro.runtime.errors.BudgetExceeded` when the
                deadline passes.
        """
        if budget is None:
            budget = active_budget()
        blocks = trace.block_ids(self.block_size).tolist()
        kinds = trace.kinds.tolist()
        n = len(blocks)
        tree = _FenwickTree(n)
        last_time: Dict[int, int] = {}
        # Depth histogram sized to worst case (footprint <= n).
        hist = np.zeros(n + 2, dtype=np.int64)
        cold = 0
        total = 0
        count_reads_only = self.count_reads_only
        warmup = self.warmup
        sampler = hot_loop_sampler("mem.stackdist")
        for t in range(n):
            if not (t & CHECK_MASK):
                if budget is not None:
                    budget.check("stack-distance profiling")
                if sampler is not None:
                    sampler.tick(t)
            block = blocks[t]
            counted = t >= warmup and (
                not count_reads_only or kinds[t] == READ
            )
            prev = last_time.get(block)
            if prev is None:
                if counted:
                    cold += 1
                    total += 1
            else:
                # Distinct blocks touched strictly between prev and t,
                # plus the block itself -> 1-based stack depth.
                depth = tree.range_sum(prev + 1, t - 1) + 1
                if counted:
                    hist[depth] += 1
                    total += 1
                tree.add(prev, -1)
            tree.add(t, +1)
            last_time[block] = t
        # Trim the histogram to the maximum observed depth.
        if sampler is not None:
            sampler.finish(refs=n, misses=cold)
        nonzero = np.nonzero(hist)[0]
        top = int(nonzero[-1]) if nonzero.size else 0
        return StackDistanceProfile(
            depth_histogram=hist[: top + 1].copy(),
            cold_misses=cold,
            total=total,
            block_size=self.block_size,
        )


def profile_trace(
    trace: Trace,
    block_size: int = 8,
    count_reads_only: bool = False,
    warmup: int = 0,
    budget: Optional[Budget] = None,
) -> StackDistanceProfile:
    """Convenience wrapper: profile ``trace`` with a fresh profiler."""
    profiler = StackDistanceProfiler(
        block_size=block_size,
        count_reads_only=count_reads_only,
        warmup=warmup,
    )
    return profiler.profile(trace, budget=budget)


def default_capacity_grid(
    min_bytes: int = 64,
    max_bytes: int = 8 * 1024 * 1024,
    points_per_octave: int = 4,
) -> np.ndarray:
    """A geometric grid of cache sizes for miss-rate sweeps.

    Mirrors the paper's log-scale cache-size axes (Figures 2, 4-7).
    """
    if min_bytes < 8:
        raise ValueError("min_bytes must be at least one double word")
    if max_bytes < min_bytes:
        raise ValueError("max_bytes must be >= min_bytes")
    octaves = np.log2(max_bytes / min_bytes)
    count = max(2, int(round(octaves * points_per_octave)) + 1)
    grid = np.unique(
        np.round(
            min_bytes * np.power(2.0, np.linspace(0.0, octaves, count))
        ).astype(np.int64)
    )
    return grid
