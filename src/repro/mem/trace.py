"""Memory reference traces.

A trace is a sequence of :class:`Access` records, one per memory
reference issued by one logical processor.  Applications in
:mod:`repro.apps` generate traces at *double-word* granularity (8-byte
addresses), mirroring the paper's double-word miss accounting.

For performance, a :class:`Trace` stores its accesses in parallel numpy
arrays rather than a list of objects; :class:`Access` is only the
record type used at the edges of the API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.budget import Budget, active_budget

#: Access kinds.  Stored in a uint8 column of the trace.
READ = 0
WRITE = 1


@dataclass(frozen=True)
class Access:
    """One memory reference.

    Attributes:
        addr: Byte address of the reference.
        kind: ``READ`` or ``WRITE``.
    """

    addr: int
    kind: int = READ

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE


class TraceBuilder:
    """Incrementally build a :class:`Trace`.

    Application trace generators append references one at a time (or in
    bulk) and then call :meth:`build`.
    """

    def __init__(self) -> None:
        self._addrs: List[int] = []
        self._kinds: List[int] = []

    def read(self, addr: int) -> None:
        """Append a read of the double word at byte address ``addr``."""
        self._addrs.append(addr)
        self._kinds.append(READ)

    def write(self, addr: int) -> None:
        """Append a write of the double word at byte address ``addr``."""
        self._addrs.append(addr)
        self._kinds.append(WRITE)

    def read_range(self, base: int, count: int, stride: int = 8) -> None:
        """Append ``count`` sequential reads starting at ``base``."""
        self._addrs.extend(base + i * stride for i in range(count))
        self._kinds.extend([READ] * count)

    def write_range(self, base: int, count: int, stride: int = 8) -> None:
        """Append ``count`` sequential writes starting at ``base``."""
        self._addrs.extend(base + i * stride for i in range(count))
        self._kinds.extend([WRITE] * count)

    def extend(self, accesses: Iterable[Access]) -> None:
        for access in accesses:
            self._addrs.append(access.addr)
            self._kinds.append(access.kind)

    def __len__(self) -> int:
        return len(self._addrs)

    def build(self) -> "Trace":
        from repro.obs import metrics as obs_metrics
        from repro.obs.console import debug

        debug(f"[trace] built {len(self._addrs):,} reference(s)")
        obs_metrics.inc("mem.trace.refs_built", len(self._addrs))
        return Trace(
            np.asarray(self._addrs, dtype=np.int64),
            np.asarray(self._kinds, dtype=np.uint8),
        )


class Trace:
    """An immutable sequence of memory references for one processor."""

    def __init__(self, addrs: np.ndarray, kinds: np.ndarray) -> None:
        if addrs.shape != kinds.shape:
            raise ValueError("addrs and kinds must have the same length")
        self.addrs = addrs
        self.kinds = kinds

    @classmethod
    def from_accesses(cls, accesses: Sequence[Access]) -> "Trace":
        builder = TraceBuilder()
        builder.extend(accesses)
        return builder.build()

    @classmethod
    def from_addresses(cls, addrs: Iterable[int], kind: int = READ) -> "Trace":
        arr = np.fromiter(addrs, dtype=np.int64)
        kinds = np.full(arr.shape, kind, dtype=np.uint8)
        return cls(arr, kinds)

    def __len__(self) -> int:
        return int(self.addrs.shape[0])

    def __iter__(self) -> Iterator[Access]:
        for addr, kind in zip(self.addrs, self.kinds):
            yield Access(int(addr), int(kind))

    def __getitem__(self, index: int) -> Access:
        return Access(int(self.addrs[index]), int(self.kinds[index]))

    def block_ids(self, block_size: int = 8) -> np.ndarray:
        """Return the cache-block index of every reference."""
        if block_size <= 0 or (block_size & (block_size - 1)) != 0:
            raise ValueError("block_size must be a positive power of two")
        return self.addrs // block_size

    def reads(self) -> "Trace":
        """The sub-trace containing only read references."""
        mask = self.kinds == READ
        return Trace(self.addrs[mask], self.kinds[mask])

    def writes(self) -> "Trace":
        """The sub-trace containing only write references."""
        mask = self.kinds == WRITE
        return Trace(self.addrs[mask], self.kinds[mask])

    @property
    def read_count(self) -> int:
        return int(np.count_nonzero(self.kinds == READ))

    @property
    def write_count(self) -> int:
        return int(np.count_nonzero(self.kinds == WRITE))

    def footprint(self, block_size: int = 8) -> int:
        """Number of distinct cache blocks touched by the trace."""
        bids = self.block_ids(block_size)
        if bids.size == 0:
            return 0
        lo = int(bids.min())
        span = int(bids.max()) - lo + 1
        # Dense block ranges (the common case for generated traces)
        # admit a boolean-scatter count far cheaper than the sort
        # inside np.unique; fall back to unique when the range is so
        # sparse the scatter table would dwarf the trace itself.
        if span <= max(1 << 16, 8 * bids.size):
            seen = np.zeros(span, dtype=bool)
            seen[bids - lo] = True
            return int(np.count_nonzero(seen))
        return int(np.unique(bids).shape[0])

    def footprint_bytes(self, block_size: int = 8) -> int:
        """Bytes of distinct data touched, at block granularity."""
        return self.footprint(block_size) * block_size

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            np.concatenate([self.addrs, other.addrs]),
            np.concatenate([self.kinds, other.kinds]),
        )


def iter_interleave_round_robin(
    traces: Sequence["Trace"], budget: Optional[Budget] = None
) -> Iterator[Tuple[int, Access]]:
    """Lazy round-robin interleaving of per-processor traces.

    Yields ``(processor_id, access)`` pairs one at a time — the merged
    stream is never materialized, so interleaving P out-of-core traces
    costs O(P) memory instead of O(total references).  Round-robin
    interleaving models processors proceeding in lock-step, a
    reasonable approximation for the regular SPMD computations studied
    in the paper.

    Works over anything iterable of :class:`Access` — in-memory
    :class:`Trace` and sharded
    :class:`~repro.mem.shards.StreamingTrace` alike.  The emission
    order is identical to the historical list-building implementation:
    each round visits processors in pid order, skipping exhausted ones.

    Args:
        traces: One trace per processor.
        budget: Optional wall-clock :class:`Budget` polled once per
            interleaving round (defaults to the ambient campaign
            budget, if any).
    """
    if budget is None:
        budget = active_budget()
    iterators = [iter(trace) for trace in traces]
    live = list(range(len(iterators)))
    while live:
        if budget is not None:
            budget.check("trace interleaving")
        exhausted = []
        for pid in live:
            try:
                yield pid, next(iterators[pid])
            except StopIteration:
                exhausted.append(pid)
        if exhausted:
            live = [pid for pid in live if pid not in exhausted]


def interleave_round_robin(
    traces: Sequence["Trace"], budget: Optional[Budget] = None
) -> List[Tuple[int, Access]]:
    """Materialized round-robin interleaving (compatibility wrapper).

    Historical callers expect a list; new code should prefer
    :func:`iter_interleave_round_robin`, which interleaves lazily in
    O(P) memory.
    """
    return list(iter_interleave_round_robin(traces, budget=budget))
