#!/usr/bin/env python
"""Volume rendering: render rotating frames of the head phantom and
show the three levels of data reuse the paper identifies — along a ray,
between successive rays, and between successive frames.

Run:  python examples/volrend_frames.py
"""

import numpy as np

from repro import MissRateCurve, default_capacity_grid, format_size
from repro.apps.volrend import (
    Camera,
    MinMaxOctree,
    RayCaster,
    VolrendModel,
    VolrendTraceGenerator,
    synthetic_head,
)
from repro.mem.stack_distance import StackDistanceProfiler


def ascii_image(image: np.ndarray) -> str:
    """Render an opacity image as ASCII art."""
    shades = " .:-=+*#%@"
    rows = []
    for row in image:
        rows.append(
            "".join(shades[min(int(v * (len(shades) - 1)), len(shades) - 1)] for v in row)
        )
    return "\n".join(rows)


def render_sequence() -> None:
    print("== rendering three frames of the rotating phantom ==")
    volume = synthetic_head(40)
    octree = MinMaxOctree(volume)
    for frame, angle in enumerate((0.0, 0.35, 0.7)):
        caster = RayCaster(volume, octree)
        image = caster.render(Camera(angle=angle, image_size=40))
        skipped = caster.samples_skipped
        taken = caster.samples_taken
        print(f"\nframe {frame} (angle {angle:.2f} rad): "
              f"{taken:,} samples taken, {skipped:,} skipped by the octree")
        print(ascii_image(image[::2, ::2]))  # half-resolution art


def measure_reuse() -> None:
    print("\n== working sets across two frames (Figure 7 method) ==")
    volume = synthetic_head(40)
    generator = VolrendTraceGenerator(volume, num_processors=4, image_size=40)
    trace = generator.trace_for_processor(0, frames=2)
    profile = StackDistanceProfiler(
        count_reads_only=True, warmup=len(trace) // 4
    ).profile(trace)
    curve = MissRateCurve.from_profile(
        profile,
        default_capacity_grid(min_bytes=64, max_bytes=512 * 1024),
        metric="read_miss_rate",
        label="volume rendering, 40^3 phantom",
    )
    print(curve.render_ascii())
    model = VolrendModel(n=40, num_processors=4)
    print(f"model: lev1WS {format_size(model.lev1_bytes())} (along-ray reuse),"
          f" lev2WS {format_size(model.lev2_bytes())} (ray-to-ray),"
          f" lev3WS {format_size(model.lev3_bytes())} (frame-to-frame)")
    print(f"paper's 600^3 prototypical lev2WS:"
          f" {format_size(VolrendModel(n=600).lev2_bytes())} — grows only as"
          " the cube root of the data set")


def main() -> None:
    render_sequence()
    measure_reuse()


if __name__ == "__main__":
    main()
