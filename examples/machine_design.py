#!/usr/bin/env python
"""Machine-design explorer: the paper's bottom-line question.

Given a total problem size, how should a machine distribute resources
between processors, cache and memory?  This sweeps node granularities
for all five application classes, judges each against the
communication sustainability bands calibrated from the Intel Paragon
and CM-5, and prints each application's desirable grain size and cache
requirement.

Run:  python examples/machine_design.py [total-size, e.g. 4GB]
"""

import sys

from repro import (
    CM5,
    CommunicationPattern,
    GrainConfig,
    PARAGON,
    characterize,
    format_size,
)
from repro.core.report import format_table
from repro.core.speedup import project_speedup, utilization_summary
from repro.experiments.table2 import prototypical_models
from repro.units import GB, parse_size


def show_machines() -> None:
    print("== sustainable ratios on reference machines (Section 2.3) ==")
    rows = []
    for machine in (PARAGON, CM5):
        rows.append(
            [
                machine.name,
                f"{machine.sustainable_ratio(CommunicationPattern.NEAREST_NEIGHBOR):.0f}",
                f"{machine.sustainable_ratio(CommunicationPattern.GENERAL, 1024):.0f}",
            ]
        )
    print(
        format_table(
            ["machine", "nearest-neighbor FLOPs/dw", "general FLOPs/dw"], rows
        )
    )


def explore(total_bytes: float) -> None:
    print(f"\n== grain-size exploration for a {format_size(total_bytes)} problem ==")
    configs = [
        GrainConfig(total_bytes, p, f"P={p}")
        for p in (64, 256, 1024, 4096, 16384)
    ]
    for model in prototypical_models():
        result = characterize(model, configs)
        important = result.working_sets.important_working_set
        grain = result.desirable_grain
        print(f"\n{model.name}:")
        print(f"  important working set: {format_size(important.size_bytes)}"
              f" ({important.name}; scales as {important.scaling})")
        for assessment in result.assessments:
            print(
                f"    P={assessment.config.num_processors:>6}"
                f" ({format_size(assessment.config.memory_per_processor):>9}/node):"
                f" {assessment.flops_per_word:>8.0f} FLOPs/word,"
                f" {assessment.units_per_processor:>9.0f} {model.load_model.unit_name:<14}"
                f" -> {assessment.verdict.value}"
            )
        print(f"  desirable grain: {format_size(grain.memory_per_processor)}/node"
              f" ({grain.num_processors} processors)")


def project(total_bytes: float) -> None:
    print(f"\n== projected speedups (Paragon-class network) ==")
    counts = [64, 256, 1024, 4096, 16384]
    for model in prototypical_models():
        pattern = (
            CommunicationPattern.GENERAL
            if model.name == "FFT"
            else CommunicationPattern.NEAREST_NEIGHBOR
        )
        points = project_speedup(model, total_bytes, counts, pattern=pattern)
        print(f"\n{model.name}:")
        print(utilization_summary(points))


def main() -> None:
    total = parse_size(sys.argv[1]) if len(sys.argv) > 1 else GB
    show_machines()
    explore(total)
    project(total)
    print(
        "\nconclusion (Section 9): relatively fine-grained machines, with"
        "\nlarge numbers of processors and small per-node cache and memory,"
        "\nare appropriate for all five application classes."
    )


if __name__ == "__main__":
    main()
