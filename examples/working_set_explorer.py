#!/usr/bin/env python
"""Working-set explorer: measure any application's miss-rate curve.

The general-purpose version of quickstart.py — pick an application,
problem size and machine size from the command line; get the curve, the
knees, and the model's predicted hierarchy.

Examples::

    python examples/working_set_explorer.py lu --size 96 --block 8
    python examples/working_set_explorer.py cg --size 64 -p 4
    python examples/working_set_explorer.py fft --size 4096 --radix 8
    python examples/working_set_explorer.py barnes-hut --size 512
    python examples/working_set_explorer.py volrend --size 32 --save trace.npz
"""

import argparse
import sys

from repro import MissRateCurve, default_capacity_grid, format_size
from repro.mem.stack_distance import StackDistanceProfiler
from repro.mem.tracefile import save_trace


def build_trace(args):
    """Returns (trace, metric, flops-or-None, model)."""
    if args.app == "lu":
        from repro.apps.lu import LUModel, LUTraceGenerator

        gen = LUTraceGenerator(
            n=args.size, block_size=args.block, num_processors=args.processors
        )
        trace = gen.trace_for_processor(0)
        model = LUModel(
            n=args.size, block_size=args.block, num_processors=args.processors
        )
        return trace, "misses_per_flop", gen.flops, model
    if args.app == "cg":
        from repro.apps.cg import CGModel, CGTraceGenerator

        gen = CGTraceGenerator(n=args.size, num_processors=args.processors)
        trace = gen.trace_for_processor(0, iterations=2)
        model = CGModel(n=args.size, num_processors=args.processors)
        return trace, "misses_per_flop", gen.flops / 2, model
    if args.app == "fft":
        from repro.apps.fft import FFTModel, FFTTraceGenerator

        gen = FFTTraceGenerator(
            n=args.size, num_processors=args.processors, internal_radix=args.radix
        )
        trace = gen.trace_for_processor(0)
        model = FFTModel(
            n=args.size, num_processors=args.processors, internal_radix=args.radix
        )
        return trace, "misses_per_flop", gen.flops, model
    if args.app == "barnes-hut":
        from repro.apps.barnes_hut import BarnesHutModel, BarnesHutTraceGenerator
        from repro.apps.barnes_hut.bodies import plummer_model

        bodies = plummer_model(args.size, seed=args.seed)
        gen = BarnesHutTraceGenerator(
            bodies, theta=args.theta, num_processors=args.processors
        )
        trace = gen.trace_for_processor(0)
        model = BarnesHutModel(
            n=args.size, theta=args.theta, num_processors=args.processors
        )
        return trace, "read_miss_rate", None, model
    if args.app == "volrend":
        from repro.apps.volrend import VolrendModel, VolrendTraceGenerator
        from repro.apps.volrend.volume import synthetic_head

        volume = synthetic_head(args.size, seed=args.seed)
        gen = VolrendTraceGenerator(
            volume, num_processors=args.processors, image_size=args.size
        )
        trace = gen.trace_for_processor(0, frames=2)
        model = VolrendModel(n=args.size, num_processors=args.processors)
        return trace, "read_miss_rate", None, model
    raise SystemExit(f"unknown application {args.app!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "app", choices=["lu", "cg", "fft", "barnes-hut", "volrend"]
    )
    parser.add_argument("--size", type=int, default=64,
                        help="matrix order / grid side / FFT points /"
                        " particles / voxels per side")
    parser.add_argument("-p", "--processors", type=int, default=4)
    parser.add_argument("--block", type=int, default=8, help="LU block size B")
    parser.add_argument("--radix", type=int, default=8, help="FFT internal radix")
    parser.add_argument("--theta", type=float, default=1.0, help="Barnes-Hut theta")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-cache", type=str, default="512KB")
    parser.add_argument("--save", type=str, default="",
                        help="also save the trace to this .npz file")
    args = parser.parse_args()

    trace, metric, flops, model = build_trace(args)
    print(f"traced {len(trace):,} references"
          f" (footprint {format_size(trace.footprint_bytes())})")
    if args.save:
        save_trace(args.save, trace, metadata=vars(args))
        print(f"saved to {args.save}")

    from repro.units import parse_size

    profiler = StackDistanceProfiler(
        count_reads_only=(metric == "read_miss_rate"),
        warmup=len(trace) // 10,
    )
    profile = profiler.profile(trace)
    grid = default_capacity_grid(64, parse_size(args.max_cache))
    curve = MissRateCurve.from_profile(
        profile, grid, metric=metric, flops=flops, label=args.app
    )
    print()
    print(curve.render_ascii())
    print("\nknees:")
    for knee in curve.knees(rel_threshold=0.2):
        print(f"  {knee}")
    print("\nmodel hierarchy:")
    print(model.working_sets().describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
