#!/usr/bin/env python
"""Dense LU deep dive: the Figure 2 story plus the communication-miss
floor measured on a real multiprocessor memory simulation.

Shows (1) the analytical miss-rate curves for several block sizes at
full prototype scale, (2) a trace-driven validation at reduced scale,
and (3) the coherence (communication) misses that remain with infinite
caches, measured by running all processors' traces through private
caches with write-invalidate sharing.

Run:  python examples/lu_working_sets.py
"""

from repro import (
    MissRateCurve,
    MultiprocessorMemory,
    default_capacity_grid,
    format_size,
    profile_trace,
)
from repro.apps.lu import LUModel, LUTraceGenerator
from repro.core.report import format_curve_series


def analytical_story() -> None:
    print("== Figure 2: analytical curves, n=10,000, P=1024 ==")
    grid = default_capacity_grid(min_bytes=64, max_bytes=1024 * 1024, points_per_octave=1)
    curves = []
    for block in (4, 16, 64):
        model = LUModel(n=10_000, block_size=block, num_processors=1024)
        curves.append(
            MissRateCurve.from_model(
                model.miss_rate_model, grid,
                metric="misses_per_flop", label=f"B={block}",
            )
        )
    print(format_curve_series(curves))
    model16 = LUModel(n=10_000, block_size=16, num_processors=1024)
    print(f"\nworking sets at B=16: lev1 {format_size(model16.lev1_bytes())},"
          f" lev2 {format_size(model16.lev2_bytes())},"
          f" lev3 {format_size(model16.lev3_bytes())},"
          f" lev4 {format_size(model16.lev4_bytes())}")


def trace_validation() -> None:
    print("\n== trace validation at n=96, B=8, P=4 ==")
    generator = LUTraceGenerator(n=96, block_size=8, num_processors=4)
    trace = generator.trace_for_processor(0)
    profile = profile_trace(trace)
    curve = MissRateCurve.from_profile(
        profile,
        default_capacity_grid(min_bytes=64, max_bytes=128 * 1024),
        metric="misses_per_flop",
        flops=generator.flops,
        label="simulated",
    )
    for knee in curve.knees(rel_threshold=0.2):
        print(f"  {knee}")


def communication_floor() -> None:
    print("\n== communication misses with infinite caches (n=48, P=4) ==")
    generator = LUTraceGenerator(n=48, block_size=8, num_processors=4)
    traces = generator.traces_for_all()
    memory = MultiprocessorMemory(4, capacity_bytes=None)
    memory.run_traces(traces)
    total = memory.aggregate()
    print(f"  accesses: {total.accesses:,}")
    print(f"  coherence (communication) misses: {total.coherence_misses:,}"
          f" ({total.coherence_misses / total.accesses:.3%} of accesses)")
    print(f"  invalidations delivered: {total.invalidations_received:,}")
    print("  -> these persist at any cache size; they are the floor of"
          " the Figure 2 curves")


def main() -> None:
    analytical_story()
    trace_validation()
    communication_floor()


if __name__ == "__main__":
    main()
