#!/usr/bin/env python
"""Cache design walkthrough: size the hierarchy, pick associativity and
line size, and check prefetchability — all from measured working sets.

Pulls together four instruments on one application (Barnes-Hut, the
hardest of the five):

1. the working-set hierarchy (fully associative LRU knees),
2. two-level hierarchy sizing and verification,
3. the direct-mapped capacity penalty (Section 6.4),
4. stride-prefetch coverage of the remaining misses.

Run:  python examples/cache_design.py
"""

from repro import format_size
from repro.apps.barnes_hut import BarnesHutModel, BarnesHutTraceGenerator, plummer_model
from repro.mem.hierarchy import (
    CacheHierarchy,
    assign_working_sets,
    hierarchy_miss_rates_from_profile,
)
from repro.mem.prefetch import measure_prefetch_coverage
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import StackDistanceProfiler
from repro.units import KB


def main() -> None:
    bodies = plummer_model(512, seed=17)
    generator = BarnesHutTraceGenerator(bodies, theta=1.0, num_processors=4)
    trace = generator.trace_for_processor(0)
    model = BarnesHutModel(n=512, theta=1.0, num_processors=4)
    print(f"traced {len(trace):,} references of the force phase")

    # 1. Working sets.
    hierarchy = model.working_sets()
    print("\n== working-set hierarchy (model) ==")
    print(hierarchy.describe())

    # 2. Hierarchy sizing: smallest power-of-two levels with 2x slack.
    sets = [(f"lev{ws.level}WS", ws.size_bytes) for ws in hierarchy.levels]
    levels = (4 * KB, 128 * KB)
    assignments = assign_working_sets(sets, levels)
    print(f"\n== two-level design: {format_size(levels[0])} L1,"
          f" {format_size(levels[1])} L2 ==")
    for assignment in assignments:
        where = (
            f"L{assignment.level + 1}"
            if assignment.level < len(levels)
            else "memory"
        )
        print(f"  {assignment.working_set_name}"
              f" ({format_size(assignment.working_set_bytes)}) -> {where}")

    profile = StackDistanceProfiler().profile(trace)
    predicted = hierarchy_miss_rates_from_profile(profile, levels)
    simulated = CacheHierarchy(levels)
    stats = simulated.run(trace)
    print("  verification (profile vs explicit simulation):")
    for index, (rate, stat) in enumerate(zip(predicted, stats)):
        print(f"    L{index + 1} local miss rate: {rate:.4f} vs"
              f" {stat.local_miss_rate:.4f}")

    # 3. Associativity: capacity needed to reach the L2 plateau.
    print("\n== associativity penalty at the important working set ==")
    fa_profile = StackDistanceProfiler(count_reads_only=True).profile(trace)
    target = fa_profile.miss_rate_at(256 * KB) * 1.25 + 1e-6
    for assoc, label in ((1, "direct-mapped"), (4, "4-way"), (0, "fully assoc")):
        capacity = 1024
        while capacity <= 512 * KB:
            if assoc == 0:
                rate = fa_profile.miss_rate_at(capacity)
            else:
                cache = SetAssociativeCache(capacity, 8, assoc)
                rate = cache.run(trace).read_miss_rate
            if rate <= target:
                break
            capacity *= 2
        print(f"  {label:>13}: {format_size(capacity)} to reach the plateau")

    # 4. Prefetchability of what remains.
    coverage = measure_prefetch_coverage(trace, 2 * KB)
    print(f"\n== stride-prefetch coverage of post-lev1 misses:"
          f" {coverage.coverage:.0%} ==")
    print("(tree-walk misses are data-dependent — as the paper says,"
          " 'not predictable enough to be easily prefetched')")


if __name__ == "__main__":
    main()
