#!/usr/bin/env python
"""Quickstart: measure an application's working-set hierarchy.

This walks the paper's core methodology end to end on a small blocked
LU factorization:

1. generate one processor's memory-reference trace,
2. profile it through the fully associative LRU instrument (a single
   stack-distance pass gives the miss rate at every cache size),
3. find the knees of the miss-rate-versus-cache-size curve,
4. compare them with the paper's analytical working-set model.

Run:  python examples/quickstart.py
"""

from repro import MissRateCurve, default_capacity_grid, format_size, profile_trace
from repro.apps.lu import LUModel, LUTraceGenerator


def main() -> None:
    # A 96x96 blocked LU with B=8 on 4 processors: small enough to
    # simulate in seconds, large enough to expose every working set.
    generator = LUTraceGenerator(n=96, block_size=8, num_processors=4)
    trace = generator.trace_for_processor(0)
    print(f"traced {len(trace):,} references, {generator.flops:,.0f} FLOPs")

    profile = profile_trace(trace)
    capacities = default_capacity_grid(min_bytes=64, max_bytes=256 * 1024)
    curve = MissRateCurve.from_profile(
        profile,
        capacities,
        metric="misses_per_flop",
        flops=generator.flops,
        label="LU B=8 (simulated)",
    )

    print("\nmiss-rate curve (misses per FLOP):")
    print(curve.render_ascii())

    print("\ndetected knees (working sets):")
    for knee in curve.knees(rel_threshold=0.2):
        print(f"  {knee}")

    model = LUModel(n=96, block_size=8, num_processors=4)
    hierarchy = model.working_sets()
    print("\nanalytical working-set hierarchy (Section 3.2):")
    print(hierarchy.describe())

    recommendation = hierarchy.cache_size_recommendation()
    print(
        f"\ncache recommendation: {format_size(recommendation)}"
        " (important working set with 2x slack)"
    )


if __name__ == "__main__":
    main()
