#!/usr/bin/env python
"""Barnes-Hut study: run a real N-body simulation, measure its working
sets, and project them to future machines under MC and TC scaling.

This mirrors Section 6 of the paper: the lev2WS (tree data per
particle) is measured by trace simulation, then the n-theta-dt
co-scaling rule projects it for memory-constrained and time-constrained
scaling up to a million processors.

Run:  python examples/barnes_hut_study.py
"""

from repro import MissRateCurve, default_capacity_grid, format_size
from repro.apps.barnes_hut import (
    BarnesHutModel,
    BarnesHutTraceGenerator,
    Simulation,
    plummer_model,
)
from repro.mem.stack_distance import StackDistanceProfiler


def simulate_galaxy() -> None:
    print("== a short galactic simulation (leapfrog, quadrupole) ==")
    bodies = plummer_model(512, seed=42)
    sim = Simulation(bodies, theta=0.8, dt=0.01, softening=0.05)
    energy_before = sim.total_energy()
    sim.step(10)
    energy_after = sim.total_energy()
    drift = abs(energy_after - energy_before) / abs(energy_before)
    print(f"  10 steps, energy drift {drift:.2%}")
    print(f"  interactions in last step: {sim.history[-1].interactions:,}")


def measure_working_sets() -> None:
    print("\n== working sets by trace simulation (Figure 6 method) ==")
    bodies = plummer_model(512, seed=1)
    generator = BarnesHutTraceGenerator(bodies, theta=1.0, num_processors=4)
    trace = generator.trace_for_processor(0)
    profile = StackDistanceProfiler(
        count_reads_only=True, warmup=len(trace) // 10
    ).profile(trace)
    curve = MissRateCurve.from_profile(
        profile,
        default_capacity_grid(min_bytes=64, max_bytes=256 * 1024),
        metric="read_miss_rate",
        label="Barnes-Hut n=512",
    )
    print(curve.render_ascii())
    for knee in curve.knees(rel_threshold=0.3):
        print(f"  {knee}")
    model = BarnesHutModel(n=512, theta=1.0, num_processors=4)
    print(f"  model lev1WS {format_size(model.lev1_bytes())},"
          f" lev2WS {format_size(model.lev2_bytes())}")


def project_scaling() -> None:
    print("\n== scaling the 64K-particle baseline (Section 6.2) ==")
    base = BarnesHutModel(n=65536, theta=1.0, num_processors=64)
    print(f"  baseline: n={base.n:,}, theta={base.theta},"
          f" lev2WS {format_size(base.lev2_bytes())}")
    for p in (1024, 16384, 1_048_576):
        mc = base.mc_scaled(p)
        tc = base.tc_scaled(p)
        print(
            f"  P={p:>9,}:"
            f"  MC -> n={mc.n:>13,} theta={mc.theta:.2f}"
            f" lev2WS {format_size(mc.lev2_bytes()):>9}"
            f" | TC -> n={tc.n:>11,} theta={tc.theta:.2f}"
            f" lev2WS {format_size(tc.lev2_bytes()):>9}"
        )
    print("  (the important working set stays under a few hundred KB"
          " even at a million processors)")


def main() -> None:
    simulate_galaxy()
    measure_working_sets()
    project_scaling()


if __name__ == "__main__":
    main()
