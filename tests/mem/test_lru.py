"""Unit and property-based tests for the LRU ordering structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.lru import LRUList


class TestBasics:
    def test_empty(self):
        lru = LRUList()
        assert len(lru) == 0
        assert 1 not in lru

    def test_touch_inserts(self):
        lru = LRUList()
        assert lru.touch(5) is False
        assert 5 in lru
        assert len(lru) == 1

    def test_touch_hit(self):
        lru = LRUList()
        lru.touch(5)
        assert lru.touch(5) is True
        assert len(lru) == 1

    def test_mru_lru_order(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.mru_key() == 3
        assert lru.lru_key() == 1

    def test_touch_moves_to_front(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        lru.touch(1)
        assert lru.mru_key() == 1
        assert lru.lru_key() == 2

    def test_evict_lru(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.evict_lru() == 1
        assert 1 not in lru
        assert len(lru) == 2

    def test_evict_order_is_fifo_without_reuse(self):
        lru = LRUList()
        for key in range(5):
            lru.touch(key)
        assert [lru.evict_lru() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_evict_empty_raises(self):
        with pytest.raises(KeyError):
            LRUList().evict_lru()

    def test_lru_key_empty_raises(self):
        with pytest.raises(KeyError):
            LRUList().lru_key()

    def test_mru_key_empty_raises(self):
        with pytest.raises(KeyError):
            LRUList().mru_key()

    def test_remove_middle(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        lru.remove(2)
        assert 2 not in lru
        assert list(lru.keys_mru_to_lru()) == [3, 1]

    def test_remove_head_and_tail(self):
        lru = LRUList()
        for key in (1, 2, 3):
            lru.touch(key)
        lru.remove(3)
        lru.remove(1)
        assert list(lru.keys_mru_to_lru()) == [2]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LRUList().remove(42)

    def test_single_element_evict(self):
        lru = LRUList()
        lru.touch(9)
        assert lru.evict_lru() == 9
        assert len(lru) == 0

    def test_reinsert_after_evict(self):
        lru = LRUList()
        lru.touch(1)
        lru.evict_lru()
        assert lru.touch(1) is False  # miss again

    def test_keys_mru_to_lru(self):
        lru = LRUList()
        for key in (4, 7, 2):
            lru.touch(key)
        assert list(lru.keys_mru_to_lru()) == [2, 7, 4]


@st.composite
def operations(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["touch", "evict", "remove"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=200,
        )
    )
    return ops


class TestProperties:
    @given(operations())
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_model(self, ops):
        """The linked structure behaves exactly like an ordered list."""
        lru = LRUList()
        model = []  # MRU first
        for op, key in ops:
            if op == "touch":
                hit = lru.touch(key)
                assert hit == (key in model)
                if key in model:
                    model.remove(key)
                model.insert(0, key)
            elif op == "evict" and model:
                assert lru.evict_lru() == model.pop()
            elif op == "remove" and key in model:
                lru.remove(key)
                model.remove(key)
            lru.check_invariants()
            assert list(lru.keys_mru_to_lru()) == model

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_length_equals_distinct_keys(self, keys):
        lru = LRUList()
        for key in keys:
            lru.touch(key)
        assert len(lru) == len(set(keys))
