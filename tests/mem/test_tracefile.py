"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.mem.tracefile import FORMAT_VERSION, load_metadata, load_trace, save_trace
from repro.mem.trace import Trace, TraceBuilder
from repro.runtime.errors import TraceFileWriteError
from tests.conftest import random_trace


class TestRoundtrip:
    def test_addresses_and_kinds_preserved(self, tmp_path):
        trace = random_trace(500, 100, seed=1)
        path = tmp_path / "t.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.addrs, trace.addrs)
        np.testing.assert_array_equal(loaded.kinds, trace.kinds)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.npz"
        save_trace(path, Trace.from_addresses([]))
        assert len(load_trace(path)) == 0

    def test_metadata_roundtrip(self, tmp_path):
        trace = random_trace(10, 10)
        path = tmp_path / "m.npz"
        save_trace(path, trace, metadata={"app": "LU", "n": 96, "B": 8})
        assert load_metadata(path) == {"app": "LU", "n": 96, "B": 8}

    def test_default_metadata_empty(self, tmp_path):
        path = tmp_path / "d.npz"
        save_trace(path, random_trace(10, 10))
        assert load_metadata(path) == {}

    def test_version_checked(self, tmp_path):
        trace = random_trace(10, 10)
        path = tmp_path / "v.npz"
        np.savez_compressed(
            path,
            addrs=trace.addrs,
            kinds=trace.kinds,
            version=np.int64(FORMAT_VERSION + 1),
            metadata=np.frombuffer(b"{}", dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_trace(path)
        with pytest.raises(ValueError):
            load_metadata(path)

    def test_profiling_after_reload(self, tmp_path):
        """A reloaded trace profiles identically."""
        from repro.mem.stack_distance import profile_trace

        builder = TraceBuilder()
        for _ in range(3):
            builder.read_range(0, 32)
        trace = builder.build()
        path = tmp_path / "p.npz"
        save_trace(path, trace)
        original = profile_trace(trace)
        reloaded = profile_trace(load_trace(path))
        np.testing.assert_array_equal(
            original.depth_histogram, reloaded.depth_histogram
        )
        assert original.cold_misses == reloaded.cold_misses


class TestIntegrity:
    """Format v2: checksums detect corruption; saves are atomic."""

    def _saved(self, tmp_path, with_metadata=False):
        trace = random_trace(2000, 300, seed=9)
        path = tmp_path / "t.npz"
        metadata = {"app": "LU", "n": 96} if with_metadata else None
        save_trace(path, trace, metadata=metadata)
        return path, trace

    def test_bit_flip_raises_corrupt_error(self, tmp_path):
        from repro.mem.tracefile import TraceFileCorruptError

        path, _ = self._saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFileCorruptError):
            load_trace(path)

    def test_truncated_archive_raises_corrupt_error(self, tmp_path):
        from repro.mem.tracefile import TraceFileCorruptError

        path, _ = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFileCorruptError):
            load_trace(path)

    def test_garbage_file_raises_corrupt_error(self, tmp_path):
        from repro.mem.tracefile import TraceFileCorruptError

        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(TraceFileCorruptError):
            load_trace(path)
        with pytest.raises(TraceFileCorruptError):
            load_metadata(path)

    def test_missing_checksum_field_raises(self, tmp_path):
        from repro.mem.tracefile import TraceFileCorruptError

        trace = random_trace(10, 10)
        path = tmp_path / "nochecksum.npz"
        np.savez_compressed(
            path,
            addrs=trace.addrs,
            kinds=trace.kinds,
            version=np.int64(FORMAT_VERSION),
            metadata=np.frombuffer(b"{}", dtype=np.uint8),
        )
        with pytest.raises(TraceFileCorruptError):
            load_trace(path)

    def test_wrong_checksum_raises(self, tmp_path):
        from repro.mem.tracefile import TraceFileCorruptError

        trace = random_trace(10, 10)
        path = tmp_path / "badsum.npz"
        np.savez_compressed(
            path,
            addrs=trace.addrs,
            kinds=trace.kinds,
            version=np.int64(FORMAT_VERSION),
            checksum=np.int64(12345),
            meta_checksum=np.int64(0),
            metadata=np.frombuffer(b"", dtype=np.uint8),
        )
        with pytest.raises(TraceFileCorruptError, match="checksum"):
            load_trace(path)

    def test_metadata_checksum_verified(self, tmp_path):
        import zlib

        from repro.mem.tracefile import TraceFileCorruptError

        trace = random_trace(10, 10)
        path = tmp_path / "badmeta.npz"
        payload = b'{"app": "LU"}'
        np.savez_compressed(
            path,
            addrs=trace.addrs,
            kinds=trace.kinds,
            version=np.int64(FORMAT_VERSION),
            checksum=np.int64(0),
            meta_checksum=np.int64(zlib.crc32(payload) ^ 0xFF),
            metadata=np.frombuffer(payload, dtype=np.uint8),
        )
        with pytest.raises(TraceFileCorruptError, match="metadata"):
            load_metadata(path)

    def test_corrupt_file_helper_integration(self, tmp_path):
        """The fault harness's corrupt_file damages real archives."""
        from repro.mem.tracefile import TraceFileCorruptError
        from repro.runtime.faults import corrupt_file

        path, _ = self._saved(tmp_path)
        corrupt_file(path, offset=path.stat().st_size // 2)
        with pytest.raises(TraceFileCorruptError):
            load_trace(path)

    def test_interrupted_save_preserves_previous_file(self, tmp_path, monkeypatch):
        path, original = self._saved(tmp_path)

        def crashing_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(np, "savez_compressed", crashing_savez)
        with pytest.raises(TraceFileWriteError):
            save_trace(path, random_trace(50, 10, seed=3))
        monkeypatch.undo()
        reloaded = load_trace(path)  # previous archive still intact
        np.testing.assert_array_equal(reloaded.addrs, original.addrs)

    def test_interrupted_save_leaves_no_temp_files(self, tmp_path, monkeypatch):
        import os

        def crashing_savez(handle, **arrays):
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(np, "savez_compressed", crashing_savez)
        with pytest.raises(TraceFileWriteError):
            save_trace(tmp_path / "t.npz", random_trace(50, 10))
        monkeypatch.undo()
        assert os.listdir(tmp_path) == []

    def test_missing_parent_directory_raises_typed_error(self, tmp_path):
        """FileNotFoundError is an OSError like any other: callers get
        the typed write error, not a leaked builtin."""
        with pytest.raises(TraceFileWriteError):
            save_trace(
                tmp_path / "no" / "such" / "dir" / "t.npz",
                random_trace(10, 10),
            )

    def test_metadata_roundtrip_with_checksum(self, tmp_path):
        path, _ = self._saved(tmp_path, with_metadata=True)
        assert load_metadata(path) == {"app": "LU", "n": 96}

    def test_enospc_during_save_is_typed_and_clean(self, tmp_path):
        """Regression: an injected disk-full during save_trace must
        surface as TraceFileWriteError, keep the previous archive, and
        unlink the staging temp file."""
        import os

        from repro.runtime.iofault import IOFault, IOFaultInjector, install

        path, original = self._saved(tmp_path)
        injector = IOFaultInjector(
            [IOFault("tracefile", "write", "enospc", repeat=True)]
        )
        with install(injector):
            with pytest.raises(TraceFileWriteError) as caught:
                save_trace(path, random_trace(50, 10, seed=4))
        assert isinstance(caught.value.__cause__, OSError)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        reloaded = load_trace(path)
        np.testing.assert_array_equal(reloaded.addrs, original.addrs)

    def test_fsync_fault_during_save_is_typed(self, tmp_path):
        from repro.runtime.iofault import IOFault, IOFaultInjector, install

        injector = IOFaultInjector(
            [IOFault("tracefile", "fsync", "fsync-fail")]
        )
        with install(injector):
            with pytest.raises(TraceFileWriteError):
                save_trace(tmp_path / "t.npz", random_trace(50, 10))
        assert not (tmp_path / "t.npz").exists()
