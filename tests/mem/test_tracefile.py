"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.mem.tracefile import FORMAT_VERSION, load_metadata, load_trace, save_trace
from repro.mem.trace import Trace, TraceBuilder
from tests.conftest import random_trace


class TestRoundtrip:
    def test_addresses_and_kinds_preserved(self, tmp_path):
        trace = random_trace(500, 100, seed=1)
        path = tmp_path / "t.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.addrs, trace.addrs)
        np.testing.assert_array_equal(loaded.kinds, trace.kinds)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.npz"
        save_trace(path, Trace.from_addresses([]))
        assert len(load_trace(path)) == 0

    def test_metadata_roundtrip(self, tmp_path):
        trace = random_trace(10, 10)
        path = tmp_path / "m.npz"
        save_trace(path, trace, metadata={"app": "LU", "n": 96, "B": 8})
        assert load_metadata(path) == {"app": "LU", "n": 96, "B": 8}

    def test_default_metadata_empty(self, tmp_path):
        path = tmp_path / "d.npz"
        save_trace(path, random_trace(10, 10))
        assert load_metadata(path) == {}

    def test_version_checked(self, tmp_path):
        trace = random_trace(10, 10)
        path = tmp_path / "v.npz"
        np.savez_compressed(
            path,
            addrs=trace.addrs,
            kinds=trace.kinds,
            version=np.int64(FORMAT_VERSION + 1),
            metadata=np.frombuffer(b"{}", dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_trace(path)
        with pytest.raises(ValueError):
            load_metadata(path)

    def test_profiling_after_reload(self, tmp_path):
        """A reloaded trace profiles identically."""
        from repro.mem.stack_distance import profile_trace

        builder = TraceBuilder()
        for _ in range(3):
            builder.read_range(0, 32)
        trace = builder.build()
        path = tmp_path / "p.npz"
        save_trace(path, trace)
        original = profile_trace(trace)
        reloaded = profile_trace(load_trace(path))
        np.testing.assert_array_equal(
            original.depth_histogram, reloaded.depth_histogram
        )
        assert original.cold_misses == reloaded.cold_misses
