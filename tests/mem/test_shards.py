"""Tests for the sharded out-of-core trace substrate (format v3).

Covers the shard round-trip, manifest integrity, the five shard-damage
kinds mapped to their exact validation codes, ambient stream
configuration, the simulator-checkpoint envelope, and the typed
write-error path under injected faults.
"""

import json
import os
import zlib

import numpy as np
import pytest

from repro.mem.shards import (
    DEFAULT_SHARD_REFS,
    MANIFEST_FILENAME,
    SHARD_FORMAT_VERSION,
    SHARD_REFS_ENV,
    STREAM_DIR_ENV,
    StreamConfig,
    StreamingTrace,
    StreamingTraceBuilder,
    TraceShardCorruptError,
    active_stream_config,
    clear_streaming,
    configure_streaming,
    load_sim_checkpoint,
    read_manifest,
    save_sim_checkpoint,
    shard_name,
    trace_builder,
)
from repro.mem.trace import Trace, TraceBuilder
from repro.runtime.errors import TraceFileWriteError
from tests.conftest import random_trace


def build_sharded(tmp_path, trace, shard_refs, name="t.trd"):
    builder = StreamingTraceBuilder(tmp_path / name, shard_refs=shard_refs)
    builder.extend_arrays(trace.addrs, trace.kinds)
    return builder.build()


class TestRoundtrip:
    def test_columns_preserved_across_shards(self, tmp_path):
        trace = random_trace(5000, 700, seed=2)
        streamed = build_sharded(tmp_path, trace, shard_refs=512)
        assert streamed.num_shards == 10
        assert len(streamed) == len(trace)
        np.testing.assert_array_equal(streamed.load().addrs, trace.addrs)
        np.testing.assert_array_equal(streamed.load().kinds, trace.kinds)

    def test_iter_chunks_covers_stream_in_order(self, tmp_path):
        trace = random_trace(1000, 100, seed=3)
        streamed = build_sharded(tmp_path, trace, shard_refs=256)
        pieces_a, pieces_k, indexes = [], [], []
        for index, addrs, kinds in streamed.iter_chunks():
            indexes.append(index)
            pieces_a.append(addrs)
            pieces_k.append(kinds)
        assert indexes == list(range(streamed.num_shards))
        np.testing.assert_array_equal(np.concatenate(pieces_a), trace.addrs)
        np.testing.assert_array_equal(np.concatenate(pieces_k), trace.kinds)

    def test_iter_chunks_start_shard(self, tmp_path):
        trace = random_trace(1000, 100, seed=4)
        streamed = build_sharded(tmp_path, trace, shard_refs=256)
        tail = list(streamed.iter_chunks(start_shard=2))
        assert [index for index, _, _ in tail] == [2, 3]
        np.testing.assert_array_equal(
            np.concatenate([a for _, a, _ in tail]), trace.addrs[512:]
        )

    def test_read_write_counts_from_manifest(self, tmp_path):
        trace = random_trace(800, 64, seed=5)
        streamed = build_sharded(tmp_path, trace, shard_refs=100)
        assert streamed.read_count == trace.read_count
        assert streamed.write_count == trace.write_count

    def test_footprint_matches_in_memory(self, tmp_path):
        trace = random_trace(2000, 321, seed=6)
        streamed = build_sharded(tmp_path, trace, shard_refs=333)
        assert streamed.footprint(8) == trace.footprint(8)
        assert streamed.footprint_bytes(8) == trace.footprint_bytes(8)

    def test_lazy_iteration_yields_accesses(self, tmp_path):
        builder = StreamingTraceBuilder(tmp_path / "rw.trd", shard_refs=4)
        builder.read(0)
        builder.write(8)
        builder.read_range(16, 2)
        streamed = builder.build()
        accesses = list(streamed)
        assert [a.addr for a in accesses] == [0, 8, 16, 24]
        assert [a.is_write for a in accesses] == [False, True, False, False]

    def test_builder_mirrors_tracebuilder(self, tmp_path):
        mem = TraceBuilder()
        out = StreamingTraceBuilder(tmp_path / "m.trd", shard_refs=3)
        for tb in (mem, out):
            tb.read(0)
            tb.write(8)
            tb.read_range(64, 24)
            tb.write_range(128, 16)
            from repro.mem.trace import READ, WRITE, Access

            tb.extend([Access(256, READ), Access(264, WRITE)])
        reference = mem.build()
        streamed = out.build()
        np.testing.assert_array_equal(streamed.load().addrs, reference.addrs)
        np.testing.assert_array_equal(streamed.load().kinds, reference.kinds)

    def test_empty_trace(self, tmp_path):
        streamed = StreamingTraceBuilder(tmp_path / "e.trd").build()
        assert len(streamed) == 0 and streamed.num_shards == 0
        assert list(streamed.iter_chunks()) == []

    def test_build_twice_rejected(self, tmp_path):
        builder = StreamingTraceBuilder(tmp_path / "d.trd")
        builder.read(0)
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()

    def test_metadata_roundtrip(self, tmp_path):
        builder = StreamingTraceBuilder(
            tmp_path / "md.trd", shard_refs=2, metadata={"app": "LU", "n": 64}
        )
        builder.read_range(0, 10)
        streamed = builder.build()
        assert streamed.metadata == {"app": "LU", "n": 64}
        assert StreamingTrace(streamed.directory).metadata == {
            "app": "LU",
            "n": 64,
        }

    def test_no_shard_exceeds_spill_threshold(self, tmp_path):
        trace = random_trace(1000, 50, seed=8)
        streamed = build_sharded(tmp_path, trace, shard_refs=128)
        manifest = read_manifest(streamed.directory)
        assert all(e["refs"] <= 128 for e in manifest["shards"])

    def test_content_sha_is_sharding_independent(self, tmp_path):
        trace = random_trace(900, 80, seed=9)
        a = build_sharded(tmp_path, trace, shard_refs=100, name="a.trd")
        b = build_sharded(tmp_path, trace, shard_refs=333, name="b.trd")
        assert a.num_shards != b.num_shards
        assert a.content_sha256 == b.content_sha256


class TestAmbientConfig:
    def teardown_method(self):
        clear_streaming()

    def test_trace_builder_defaults_to_in_memory(self):
        clear_streaming()
        assert active_stream_config() is None
        assert isinstance(trace_builder(), TraceBuilder)

    def test_configure_dispatches_to_streaming(self, tmp_path):
        configure_streaming(tmp_path / "stream", shard_refs=7)
        config = active_stream_config()
        assert config == StreamConfig(tmp_path / "stream", 7)
        builder = trace_builder()
        assert isinstance(builder, StreamingTraceBuilder)
        builder.read_range(0, 20)
        streamed = builder.build()
        assert streamed.directory.parent == tmp_path / "stream"
        assert streamed.num_shards == 3

    def test_env_vars_reach_child_config(self, tmp_path):
        configure_streaming(tmp_path / "s", shard_refs=5, export_env=True)
        assert os.environ[STREAM_DIR_ENV] == str(tmp_path / "s")
        assert os.environ[SHARD_REFS_ENV] == "5"
        clear_streaming(clear_env=False)
        # Env alone (what a worker inherits) still yields the config.
        config = active_stream_config()
        assert config is not None and config.shard_refs == 5
        clear_streaming()
        assert STREAM_DIR_ENV not in os.environ
        assert active_stream_config() is None

    def test_default_shard_refs_applied(self, tmp_path):
        configure_streaming(tmp_path / "s2")
        assert active_stream_config().shard_refs == DEFAULT_SHARD_REFS


class TestShardDamage:
    """Each damage kind maps to exactly one validation code."""

    def _streamed(self, tmp_path):
        trace = random_trace(600, 90, seed=10)
        return build_sharded(tmp_path, trace, shard_refs=128)

    def test_truncated_shard_is_corrupt(self, tmp_path):
        from repro.validate.artifacts import validate_trace_dir

        streamed = self._streamed(tmp_path)
        shard = streamed.directory / shard_name(1)
        shard.write_bytes(shard.read_bytes()[:-20])
        report = validate_trace_dir(streamed.directory)
        assert [f.code for f in report.errors] == ["trace-shard-corrupt"]
        with pytest.raises(TraceShardCorruptError):
            list(streamed.iter_chunks())

    def test_bit_flip_in_payload_is_corrupt(self, tmp_path):
        from repro.validate.artifacts import validate_trace_dir

        streamed = self._streamed(tmp_path)
        shard = streamed.directory / shard_name(2)
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        shard.write_bytes(bytes(blob))
        report = validate_trace_dir(streamed.directory)
        assert [f.code for f in report.errors] == ["trace-shard-corrupt"]

    def test_missing_shard(self, tmp_path):
        from repro.validate.artifacts import validate_trace_dir

        streamed = self._streamed(tmp_path)
        (streamed.directory / shard_name(3)).unlink()
        report = validate_trace_dir(streamed.directory)
        assert [f.code for f in report.errors] == ["trace-shard-missing"]
        with pytest.raises(TraceShardCorruptError):
            list(streamed.iter_chunks())

    def test_manifest_shard_count_mismatch(self, tmp_path):
        from repro.validate.artifacts import validate_trace_dir

        streamed = self._streamed(tmp_path)
        manifest_path = streamed.directory / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        dropped = manifest["shards"].pop()
        manifest["refs"] -= dropped["refs"]
        body = dict(manifest)
        body.pop("checksum", None)
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        manifest["checksum"] = (
            f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"
        )
        manifest_path.write_text(json.dumps(manifest, sort_keys=True))
        report = validate_trace_dir(streamed.directory)
        assert report.errors
        assert all(
            f.code == "trace-manifest-mismatch" for f in report.errors
        )

    def test_duplicate_shard_index(self, tmp_path):
        from repro.validate.artifacts import validate_trace_dir

        streamed = self._streamed(tmp_path)
        manifest_path = streamed.directory / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"][1] = dict(manifest["shards"][0])
        body = dict(manifest)
        body.pop("checksum", None)
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        manifest["checksum"] = (
            f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"
        )
        manifest_path.write_text(json.dumps(manifest, sort_keys=True))
        report = validate_trace_dir(streamed.directory)
        assert report.errors
        assert all(
            f.code == "trace-manifest-mismatch" for f in report.errors
        )

    def test_manifest_bit_flip_fails_self_checksum(self, tmp_path):
        streamed = self._streamed(tmp_path)
        manifest_path = streamed.directory / MANIFEST_FILENAME
        text = manifest_path.read_text().replace('"refs"', '"refz"', 1)
        manifest_path.write_text(text)
        with pytest.raises(TraceShardCorruptError):
            read_manifest(streamed.directory)

    def test_undamaged_trace_validates_clean(self, tmp_path):
        from repro.validate.artifacts import validate_trace_dir

        report = validate_trace_dir(self._streamed(tmp_path).directory)
        assert not report.errors and not report.warnings

    def test_format_version_pinned(self, tmp_path):
        manifest = read_manifest(self._streamed(tmp_path).directory)
        assert manifest["format"] == SHARD_FORMAT_VERSION


class TestSimCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sim.ckpt"
        payload = {"kind": "fullassoc", "next_shard": 3, "state": {"x": [1]}}
        save_sim_checkpoint(path, payload)
        assert load_sim_checkpoint(path) == payload

    def test_missing_returns_none(self, tmp_path):
        assert load_sim_checkpoint(tmp_path / "absent.ckpt") is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda data: data[: len(data) // 2],
            lambda data: data.replace(b"SIMCKPT1", b"SIMCKPT9"),
            lambda data: data[:-4] + b"!!!}",
            lambda data: b"",
        ],
        ids=["truncated", "bad-magic", "payload-flip", "empty"],
    )
    def test_damage_returns_none(self, tmp_path, mutate):
        path = tmp_path / "sim.ckpt"
        save_sim_checkpoint(path, {"next_shard": 1, "state": {}})
        path.write_bytes(mutate(path.read_bytes()))
        assert load_sim_checkpoint(path) is None


class TestWriteFaults:
    def test_enospc_raises_typed_error(self, tmp_path):
        from repro.runtime.iofault import IOFaultInjector, install

        builder = StreamingTraceBuilder(tmp_path / "f.trd", shard_refs=8)
        with install(IOFaultInjector.parse("shard:write:enospc:1")):
            with pytest.raises(TraceFileWriteError):
                builder.extend_arrays(
                    np.arange(64, dtype=np.int64) * 8,
                    np.zeros(64, dtype=np.uint8),
                )
                builder.build()

    def test_interrupted_build_leaves_only_staging(self, tmp_path):
        builder = StreamingTraceBuilder(tmp_path / "s.trd", shard_refs=4)
        builder.read_range(0, 40)  # spills, but never build()
        assert (tmp_path / "s.trd.tmp").is_dir()
        assert not (tmp_path / "s.trd").exists()
