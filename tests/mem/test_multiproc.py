"""Tests for the shared-address-space multiprocessor memory model —
especially the miss classification (cold vs capacity vs coherence) the
paper's methodology depends on."""

import pytest

from repro.mem.multiproc import MultiprocessorMemory
from repro.mem.trace import Access, READ, Trace, TraceBuilder, WRITE


class TestConstruction:
    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            MultiprocessorMemory(0)

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            MultiprocessorMemory(2, capacity_bytes=4)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            MultiprocessorMemory(2, block_size=12)


class TestPrivateCaching:
    def test_independent_caches(self):
        mem = MultiprocessorMemory(2, capacity_bytes=None)
        mem.access(0, 0)
        # Processor 1 still cold-misses the block processor 0 loaded.
        assert mem.access(1, 0) is False
        assert mem.stats[1].cold_misses == 1

    def test_hit_after_load(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0)
        assert mem.access(0, 0) is True

    def test_capacity_eviction(self):
        mem = MultiprocessorMemory(1, capacity_bytes=16)  # two blocks
        mem.access(0, 0)
        mem.access(0, 8)
        mem.access(0, 16)
        mem.access(0, 0)  # evicted earlier -> capacity miss
        assert mem.stats[0].capacity_misses == 1


class TestCoherence:
    def test_write_invalidates_other_copies(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0, READ)
        mem.access(1, 0, READ)
        mem.access(1, 0, WRITE)
        # Processor 0's copy is gone; its re-read is a coherence miss.
        assert mem.access(0, 0, READ) is False
        assert mem.stats[0].coherence_misses == 1
        assert mem.stats[0].invalidations_received == 1

    def test_writer_keeps_its_copy(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0, WRITE)
        assert mem.access(0, 0, READ) is True

    def test_no_self_invalidation(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0, READ)
        mem.access(0, 0, WRITE)
        assert mem.stats[0].invalidations_received == 0

    def test_coherence_miss_with_infinite_cache(self):
        """Communication misses persist even with infinite caches — the
        paper's definition of inherent communication."""
        mem = MultiprocessorMemory(2, capacity_bytes=None)
        for _ in range(4):
            mem.access(0, 0, WRITE)
            mem.access(1, 0, READ)
        assert mem.stats[1].coherence_misses == 3
        assert mem.stats[1].communication_miss_rate > 0

    def test_ping_pong_classification(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0, WRITE)
        mem.access(1, 0, WRITE)
        mem.access(0, 0, WRITE)
        mem.access(1, 0, WRITE)
        assert mem.stats[0].coherence_misses == 1
        assert mem.stats[1].coherence_misses == 1

    def test_read_sharing_no_invalidation(self):
        mem = MultiprocessorMemory(4)
        for pid in range(4):
            mem.access(pid, 0, READ)
        for pid in range(4):
            assert mem.access(pid, 0, READ) is True
        assert all(s.coherence_misses == 0 for s in mem.stats)


class TestRun:
    def test_run_traces_round_robin(self):
        a = TraceBuilder()
        a.write(0)
        b = TraceBuilder()
        b.read(0)
        mem = MultiprocessorMemory(2)
        stats = mem.run_traces([a.build(), b.build()])
        # P0's write happens first (round robin), so P1's read cold-misses
        # but then holds a valid copy.
        assert stats[1].cold_misses == 1

    def test_run_traces_count_mismatch(self):
        mem = MultiprocessorMemory(2)
        with pytest.raises(ValueError):
            mem.run_traces([Trace.from_addresses([0])])

    def test_aggregate_sums(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0)
        mem.access(1, 8)
        total = mem.aggregate()
        assert total.reads == 2
        assert total.misses == 2

    def test_reset_stats_preserves_state(self):
        mem = MultiprocessorMemory(1)
        mem.access(0, 0)
        mem.reset_stats()
        assert mem.stats[0].accesses == 0
        assert mem.access(0, 0) is True

    def test_interleaved_input(self):
        mem = MultiprocessorMemory(2)
        mem.run([(0, Access(0, WRITE)), (1, Access(0, READ)), (0, Access(0, READ))])
        assert mem.stats[0].misses == 1  # write cold; read hits
        assert mem.stats[1].misses == 1


class TestEvictionDirectoryConsistency:
    def test_evicted_block_not_invalidated_later(self):
        mem = MultiprocessorMemory(2, capacity_bytes=8)  # one block each
        mem.access(0, 0, READ)
        mem.access(0, 8, READ)  # evicts block 0 from P0
        mem.access(1, 0, WRITE)  # must not count an invalidation at P0
        assert mem.stats[0].invalidations_received == 0
        # P0's re-read of block 0 is a capacity miss, not coherence.
        mem.access(0, 0, READ)
        assert mem.stats[0].coherence_misses == 0
        assert mem.stats[0].capacity_misses >= 1
