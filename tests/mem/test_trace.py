"""Tests for trace records, builders and interleaving."""

import numpy as np
import pytest

from repro.mem.trace import (
    Access,
    READ,
    Trace,
    TraceBuilder,
    WRITE,
    interleave_round_robin,
)


class TestAccess:
    def test_read_flags(self):
        access = Access(addr=8, kind=READ)
        assert access.is_read and not access.is_write

    def test_write_flags(self):
        access = Access(addr=8, kind=WRITE)
        assert access.is_write and not access.is_read

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Access(0).addr = 1  # type: ignore[misc]


class TestBuilder:
    def test_read_write(self):
        builder = TraceBuilder()
        builder.read(0)
        builder.write(8)
        trace = builder.build()
        assert len(trace) == 2
        assert trace[0] == Access(0, READ)
        assert trace[1] == Access(8, WRITE)

    def test_read_range(self):
        builder = TraceBuilder()
        builder.read_range(100, 3)
        trace = builder.build()
        assert list(trace.addrs) == [100, 108, 116]

    def test_write_range_custom_stride(self):
        builder = TraceBuilder()
        builder.write_range(0, 3, stride=16)
        trace = builder.build()
        assert list(trace.addrs) == [0, 16, 32]
        assert trace.write_count == 3

    def test_extend(self):
        builder = TraceBuilder()
        builder.extend([Access(0), Access(8, WRITE)])
        assert len(builder) == 2

    def test_len(self):
        builder = TraceBuilder()
        builder.read(0)
        assert len(builder) == 1


class TestTrace:
    def test_from_accesses_roundtrip(self):
        accesses = [Access(0), Access(8, WRITE), Access(0)]
        trace = Trace.from_accesses(accesses)
        assert list(trace) == accesses

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.uint8))

    def test_block_ids(self):
        trace = Trace.from_addresses([0, 7, 8, 64])
        assert list(trace.block_ids(8)) == [0, 0, 1, 8]

    def test_block_ids_rejects_bad_block_size(self):
        trace = Trace.from_addresses([0])
        with pytest.raises(ValueError):
            trace.block_ids(6)

    def test_reads_writes_split(self):
        trace = Trace.from_accesses([Access(0), Access(8, WRITE), Access(16)])
        assert trace.reads().read_count == 2
        assert trace.writes().write_count == 1
        assert len(trace.reads()) + len(trace.writes()) == len(trace)

    def test_footprint(self):
        trace = Trace.from_addresses([0, 4, 8, 8, 800])
        assert trace.footprint(8) == 3
        assert trace.footprint_bytes(8) == 24

    def test_concat(self):
        a = Trace.from_addresses([0, 8])
        b = Trace.from_addresses([16])
        merged = a.concat(b)
        assert list(merged.addrs) == [0, 8, 16]

    def test_empty_from_addresses(self):
        trace = Trace.from_addresses([])
        assert len(trace) == 0
        assert trace.footprint() == 0


class TestInterleave:
    def test_round_robin_order(self):
        a = Trace.from_addresses([0, 8])
        b = Trace.from_addresses([100])
        merged = interleave_round_robin([a, b])
        assert [(pid, acc.addr) for pid, acc in merged] == [
            (0, 0),
            (1, 100),
            (0, 8),
        ]

    def test_total_length_preserved(self):
        traces = [Trace.from_addresses(range(0, n * 8, 8)) for n in (3, 1, 5)]
        merged = interleave_round_robin(traces)
        assert len(merged) == 9

    def test_empty_traces(self):
        assert interleave_round_robin([Trace.from_addresses([])]) == []

    def test_lazy_iterator_matches_wrapper(self):
        from repro.mem.trace import iter_interleave_round_robin

        traces = [Trace.from_addresses(range(0, n * 8, 8)) for n in (4, 2, 7)]
        lazy = list(iter_interleave_round_robin(traces))
        assert lazy == interleave_round_robin(traces)

    def test_lazy_iterator_is_lazy(self):
        """The generator pulls references on demand, never whole traces."""
        from itertools import islice

        from repro.mem.trace import iter_interleave_round_robin

        pulled = []

        class CountingTrace:
            def __init__(self, addresses):
                self._trace = Trace.from_addresses(addresses)

            def __iter__(self):
                for access in self._trace:
                    pulled.append(access.addr)
                    yield access

        merged = iter_interleave_round_robin(
            [CountingTrace(range(0, 8000, 8)), CountingTrace([100])]
        )
        head = list(islice(merged, 4))
        assert len(head) == 4
        assert len(pulled) <= 5  # not the 1001 total references
