"""Tests for the Mattson stack-distance profiler — including the
equivalence property against the explicit LRU cache simulator that
justifies using the single-pass instrument everywhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import FullyAssociativeCache, sweep_cache_sizes
from repro.mem.stack_distance import (
    StackDistanceProfiler,
    default_capacity_grid,
    profile_trace,
)
from repro.mem.trace import READ, WRITE, Trace, TraceBuilder
from tests.conftest import random_trace


class TestBasics:
    def test_all_cold_for_streaming(self, sequential_trace):
        profile = profile_trace(sequential_trace)
        assert profile.cold_misses == len(sequential_trace)
        assert profile.miss_rate_at(10**9) == 1.0  # cold misses never go away

    def test_loop_depth_distribution(self, looping_trace):
        profile = profile_trace(looping_trace)
        # Each of 3 repeat sweeps re-touches 64 blocks at depth exactly 64.
        assert profile.cold_misses == 64
        assert profile.depth_histogram[64] == 3 * 64

    def test_hit_iff_capacity_at_least_depth(self, looping_trace):
        profile = profile_trace(looping_trace)
        assert profile.misses_at(63) == len(looping_trace)
        assert profile.misses_at(64) == 64  # cold only

    def test_miss_rate_at_bytes_granularity(self, looping_trace):
        profile = profile_trace(looping_trace)
        assert profile.miss_rate_at(64 * 8) == 64 / 256
        assert profile.miss_rate_at(63 * 8) == 1.0

    def test_zero_capacity_misses_everything(self, looping_trace):
        profile = profile_trace(looping_trace)
        assert profile.misses_at(0) == len(looping_trace)

    def test_compulsory_miss_rate(self, looping_trace):
        profile = profile_trace(looping_trace)
        assert profile.compulsory_miss_rate == pytest.approx(0.25)

    def test_max_useful_capacity_is_footprint(self, looping_trace):
        profile = profile_trace(looping_trace)
        assert profile.max_useful_capacity_blocks == 64

    def test_empty_trace(self):
        profile = profile_trace(Trace.from_addresses([]))
        assert profile.total == 0
        assert profile.miss_rate_at(1024) == 0.0

    def test_misses_per_op(self, looping_trace):
        profile = profile_trace(looping_trace)
        per_op = profile.misses_per_op([64 * 8], flops=512.0)
        assert per_op[0] == pytest.approx(64 / 512)

    def test_misses_per_op_requires_positive_flops(self, looping_trace):
        profile = profile_trace(looping_trace)
        with pytest.raises(ValueError):
            profile.misses_per_op([64], flops=0.0)


class TestOptions:
    def test_warmup_excludes_head(self, looping_trace):
        profile = profile_trace(looping_trace, warmup=64)
        # Cold misses all fall in the warmup window.
        assert profile.cold_misses == 0
        assert profile.total == 192

    def test_count_reads_only(self):
        builder = TraceBuilder()
        builder.read(0)
        builder.write(8)
        builder.read(0)
        builder.write(8)
        trace = builder.build()
        profile = profile_trace(trace, count_reads_only=True)
        assert profile.total == 2  # the two reads
        # Writes still update LRU state: the second read hits depth 2.
        assert profile.depth_histogram[2] == 1

    def test_block_size_coalesces(self):
        trace = Trace.from_addresses([0, 4, 8, 12])
        coarse = profile_trace(trace, block_size=16)
        assert coarse.cold_misses == 1
        assert coarse.total == 4

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(block_size=10)

    def test_negative_warmup(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(warmup=-1)


class TestEquivalenceWithExplicitCache:
    """The inclusion property: one stack-distance pass equals explicit
    simulation at every capacity."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_traces(self, seed):
        trace = random_trace(2000, 80, seed=seed)
        profile = profile_trace(trace)
        capacities = np.array([8, 64, 128, 256, 320, 640])
        expected = sweep_cache_sizes(trace, capacities)
        actual = profile.miss_rates(capacities)
        np.testing.assert_allclose(actual, expected)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.sampled_from([READ, WRITE]),
            ),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_trace_any_capacity(self, refs, capacity_blocks):
        builder = TraceBuilder()
        for block, kind in refs:
            if kind == READ:
                builder.read(block * 8)
            else:
                builder.write(block * 8)
        trace = builder.build()
        profile = profile_trace(trace)
        cache = FullyAssociativeCache(capacity_blocks * 8, block_size=8)
        stats = cache.run(trace)
        assert profile.misses_at(capacity_blocks) == stats.misses

    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_miss_counts_monotone_in_capacity(self, blocks):
        trace = Trace.from_addresses([b * 8 for b in blocks])
        profile = profile_trace(trace)
        misses = [profile.misses_at(c) for c in range(0, 70)]
        assert all(a >= b for a, b in zip(misses, misses[1:]))
        assert misses[-1] == profile.cold_misses


class TestCapacityGrid:
    def test_geometric_and_increasing(self):
        grid = default_capacity_grid(64, 1024, points_per_octave=2)
        assert grid[0] == 64
        assert grid[-1] == 1024
        assert np.all(np.diff(grid) > 0)

    def test_rejects_tiny_min(self):
        with pytest.raises(ValueError):
            default_capacity_grid(min_bytes=4)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            default_capacity_grid(min_bytes=1024, max_bytes=64)
