"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.mem.hierarchy import (
    CacheHierarchy,
    assign_working_sets,
    hierarchy_miss_rates_from_profile,
)
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import Trace, TraceBuilder
from tests.conftest import random_trace


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            CacheHierarchy([1024, 1024])
        with pytest.raises(ValueError):
            CacheHierarchy([2048, 1024])


class TestAccess:
    def test_l1_hit(self):
        hierarchy = CacheHierarchy([64, 256])
        hierarchy.access(0)
        assert hierarchy.access(0) == 0

    def test_miss_goes_to_memory(self):
        hierarchy = CacheHierarchy([64, 256])
        assert hierarchy.access(0) == 2  # both levels miss
        assert hierarchy.memory_accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy([16, 1024])  # 2-block L1
        hierarchy.access(0)
        hierarchy.access(8)
        hierarchy.access(16)  # evicts 0 from L1, still in L2
        assert hierarchy.access(0) == 1

    def test_level_accesses_chain(self):
        hierarchy = CacheHierarchy([16, 256])
        trace = Trace.from_addresses(range(0, 400, 8))
        hierarchy.run(trace)
        assert hierarchy.stats[1].accesses == hierarchy.stats[0].misses

    def test_global_miss_rate(self, looping_trace):
        hierarchy = CacheHierarchy([64, 64 * 8])
        hierarchy.run(looping_trace)
        assert hierarchy.global_miss_rate == pytest.approx(0.25)  # cold only


class TestProfileEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_local_rates_match_explicit_sim(self, seed):
        """Inclusion: per-level local miss rates from one profile equal
        explicit two-level simulation."""
        trace = random_trace(3000, 100, seed=seed)
        levels = [128, 2048]
        profile = profile_trace(trace)
        predicted = hierarchy_miss_rates_from_profile(profile, levels)
        hierarchy = CacheHierarchy(levels)
        stats = hierarchy.run(trace)
        assert stats[0].local_miss_rate == pytest.approx(predicted[0])
        assert stats[1].local_miss_rate == pytest.approx(predicted[1])

    def test_empty_profile(self):
        profile = profile_trace(Trace.from_addresses([]))
        assert hierarchy_miss_rates_from_profile(profile, [64, 128]) == [0.0, 0.0]


class TestAssignment:
    def test_smallest_capturing_level(self):
        assignments = assign_working_sets(
            [("a", 100), ("b", 5000), ("c", 10**9)],
            level_capacities=[1024, 65536],
        )
        assert assignments[0].level == 0
        assert assignments[1].level == 1
        assert assignments[2].level == 2  # memory

    def test_slack_applied(self):
        assignments = assign_working_sets(
            [("a", 600)], level_capacities=[1024, 65536], slack=2.0
        )
        assert assignments[0].level == 1  # 600*2 > 1024

    def test_rejects_bad_slack(self):
        with pytest.raises(ValueError):
            assign_working_sets([("a", 1)], [64], slack=0.5)
