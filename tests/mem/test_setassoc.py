"""Tests for set-associative and direct-mapped caches."""

import pytest

from repro.mem.cache import FullyAssociativeCache
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.trace import Trace, TraceBuilder
from tests.conftest import random_trace


class TestConstruction:
    def test_direct_mapped_flag(self):
        cache = SetAssociativeCache(64, block_size=8, associativity=1)
        assert cache.is_direct_mapped
        assert cache.num_sets == 8

    def test_rejects_non_dividing_associativity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64, block_size=8, associativity=3)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64, block_size=8, associativity=0)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64, block_size=9)

    def test_rejects_empty_cache(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(4, block_size=8)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="must be positive"):
            SetAssociativeCache(0)
        with pytest.raises(ValueError, match="must be positive"):
            SetAssociativeCache(-64)

    def test_non_dividing_associativity_message_names_values(self):
        with pytest.raises(ValueError, match="3 does not divide 8"):
            SetAssociativeCache(64, block_size=8, associativity=3)


class TestConflicts:
    def test_direct_mapped_conflict(self):
        """Two blocks mapping to the same set thrash a direct-mapped
        cache even though it has free space elsewhere."""
        cache = SetAssociativeCache(64, block_size=8, associativity=1)
        # Blocks 0 and 8 both map to set 0 of 8 sets.
        for _ in range(4):
            cache.access(0 * 8)
            cache.access(8 * 8)
        assert cache.stats.misses == 8  # every access misses

    def test_two_way_absorbs_that_conflict(self):
        cache = SetAssociativeCache(64, block_size=8, associativity=2)
        for _ in range(4):
            cache.access(0 * 8)
            cache.access(4 * 8)  # same set in a 4-set cache
        assert cache.stats.misses == 2  # cold only

    def test_full_associativity_equals_fa_cache(self):
        trace = random_trace(3000, 50, seed=11)
        num_blocks = 16
        setassoc = SetAssociativeCache(
            num_blocks * 8, block_size=8, associativity=num_blocks
        )
        fa = FullyAssociativeCache(num_blocks * 8, block_size=8)
        setassoc.run(trace)
        fa.run(trace)
        assert setassoc.stats.misses == fa.stats.misses
        assert setassoc.stats.read_misses == fa.stats.read_misses

    def test_direct_mapped_never_beats_full_on_uniform(self):
        trace = random_trace(5000, 64, seed=5)
        dm = SetAssociativeCache(32 * 8, block_size=8, associativity=1)
        fa = FullyAssociativeCache(32 * 8, block_size=8)
        dm.run(trace)
        fa.run(trace)
        # On uniform random traffic LRU's recency is optimal on average.
        assert dm.stats.misses >= fa.stats.misses * 0.95

    def test_cold_miss_classification(self):
        cache = SetAssociativeCache(64, block_size=8, associativity=1)
        cache.access(0)
        cache.access(64)  # conflicts with block 0
        cache.access(0)  # conflict miss, not cold
        assert cache.stats.cold_misses == 2
        assert cache.stats.misses == 3


class TestLifecycle:
    def test_reset_stats(self):
        cache = SetAssociativeCache(64, block_size=8)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0) is True

    def test_flush(self):
        cache = SetAssociativeCache(64, block_size=8)
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_run_returns_stats(self):
        builder = TraceBuilder()
        builder.read_range(0, 16)
        stats = SetAssociativeCache(256, block_size=8).run(builder.build())
        assert stats.reads == 16
