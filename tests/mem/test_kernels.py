"""Tests for the vectorized simulation kernels and their trust harness.

The contract under test (see ``docs/KERNELS.md``): the columnar numpy
kernels in :mod:`repro.mem.kernels` must be *byte-identical* to the
pure-Python hot loops at every chunk boundary, and when they are not —
proven here with deterministic fault injection — the KernelGuard must
record a typed divergence, quarantine the kernel, fall back to the
oracle, and leave the campaign result exactly what the oracle alone
would have produced.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import kernels
from repro.mem.cache import FullyAssociativeCache
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import StackDistanceRun, profile_trace
from repro.mem.trace import Trace
from repro.runtime.errors import KernelDivergenceError


@pytest.fixture(autouse=True)
def _clean_kernel_world(monkeypatch):
    """Every test starts unconfigured, unquarantined, and fault-free."""
    for name in (
        kernels.TIER_ENV,
        kernels.VERIFY_ENV,
        kernels.MIN_REFS_ENV,
        kernels.BUNDLE_DIR_ENV,
        kernels.FAULT_ENV,
    ):
        monkeypatch.delenv(name, raising=False)
    kernels.clear_kernels(clear_env=False)
    kernels.reset_kernel_state()
    yield
    kernels.clear_kernels(clear_env=False)
    kernels.reset_kernel_state()


def _trace(blocks, kinds=None):
    addrs = np.asarray(blocks, dtype=np.int64) * 8
    if kinds is None:
        kinds = np.zeros(len(addrs), dtype=np.uint8)
    return Trace(addrs, np.asarray(kinds, dtype=np.uint8))


def _mixed_trace(num_refs, num_blocks, seed=0):
    rng = np.random.default_rng(seed)
    return _trace(
        rng.integers(0, num_blocks, size=num_refs),
        rng.integers(0, 2, size=num_refs),
    )


def _vector(min_refs=0, **kwargs):
    kernels.configure_kernels(
        tier="vector", min_refs=min_refs, export_env=False, **kwargs
    )


# -- configuration and fault grammar ---------------------------------------


class TestConfig:
    def test_defaults_from_empty_environment(self):
        config = kernels.active_kernel_config()
        assert config.tier == kernels.DEFAULT_TIER
        assert config.verify_every == kernels.DEFAULT_VERIFY_EVERY
        assert config.min_refs == kernels.DEFAULT_MIN_REFS

    def test_configure_exports_environment(self, monkeypatch):
        kernels.configure_kernels(tier="oracle", verify_every=7)
        assert kernels.active_kernel_config().tier == "oracle"
        import os

        assert os.environ[kernels.TIER_ENV] == "oracle"
        assert os.environ[kernels.VERIFY_ENV] == "7"
        kernels.clear_kernels()
        assert kernels.TIER_ENV not in os.environ

    def test_configure_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            kernels.configure_kernels(tier="gpu")

    def test_tier_override_restores(self):
        _vector()
        with kernels.tier_override("oracle"):
            assert kernels.active_kernel_config().tier == "oracle"
        assert kernels.active_kernel_config().tier == "vector"

    def test_tier_override_rejects_unknown(self):
        with pytest.raises(ValueError):
            with kernels.tier_override("turbo"):
                pass

    def test_parse_fault_spec(self):
        faults = kernels.parse_fault_spec(
            "fullassoc:wrong-count:1,stackdist:crash:3"
        )
        assert [(f.kernel, f.kind, f.nth) for f in faults] == [
            ("fullassoc", "wrong-count", 1),
            ("stackdist", "crash", 3),
        ]

    @pytest.mark.parametrize(
        "raw",
        ["nope", "fullassoc:wrong-count", "fullassoc:melt:1", "x:nan:1", "fullassoc:nan:0"],
    )
    def test_parse_fault_spec_rejects_garbage(self, raw):
        with pytest.raises(ValueError):
            kernels.parse_fault_spec(raw)


# -- guard engagement ------------------------------------------------------


class TestGuard:
    def test_vector_tier_engages_and_matches_oracle(self):
        trace = _mixed_trace(4000, 64)
        _vector()
        stats = FullyAssociativeCache(32 * 8).run(trace)
        assert kernels.kernel_state("fullassoc")["chunks"] == 1
        assert kernels.kernel_state("fullassoc")["verified"] == 1
        with kernels.tier_override("oracle"):
            expected = FullyAssociativeCache(32 * 8).run(trace)
        assert stats.__dict__ == expected.__dict__

    def test_small_chunks_stay_on_the_oracle(self):
        _vector(min_refs=2048)
        FullyAssociativeCache(32 * 8).run(_mixed_trace(100, 16))
        assert kernels.kernel_state("fullassoc")["chunks"] == 0

    def test_oracle_tier_never_engages(self):
        kernels.configure_kernels(tier="oracle", min_refs=0, export_env=False)
        profile_trace(_mixed_trace(4000, 64))
        assert kernels.kernel_state("stackdist")["chunks"] == 0

    def test_out_of_domain_block_ids_fall_back(self):
        _vector()
        trace = _trace([0, 1, 2, (1 << 45)] * 300)
        stats = FullyAssociativeCache(32 * 8).run(trace)
        assert kernels.kernel_state("fullassoc")["chunks"] == 0
        assert stats.accesses == len(trace)

    def test_sampling_skips_between_verifies(self):
        _vector(verify_every=3)
        trace = _mixed_trace(1000, 32)
        for _ in range(6):
            FullyAssociativeCache(16 * 8).run(trace)
        state = kernels.kernel_state("fullassoc")
        assert state["chunks"] == 6
        assert state["verified"] == 2  # ordinals 1 and 4


# -- deterministic fault injection: the full detection matrix --------------


_EXPECTED_REASON = {
    "wrong-count": "shadow-verify",
    "nan": "sanity",
    "overflow": "sanity",
    "crash": "kernel-crash",
}


def _run_sim(kind, trace):
    """Run one guarded simulator end to end; return its final state."""
    if kind == "fullassoc":
        sim = FullyAssociativeCache(32 * 8)
        sim.run(trace)
    elif kind == "setassoc":
        sim = SetAssociativeCache(64 * 8, associativity=4)
        sim.run(trace)
    else:
        sim = StackDistanceRun()
        sim.feed(trace)
    return sim.state_dict()


class TestFaultMatrix:
    @pytest.mark.parametrize("kernel", kernels.KERNEL_KINDS)
    @pytest.mark.parametrize("fault", kernels._FAULT_KINDS)
    def test_every_fault_is_caught_and_survived(
        self, kernel, fault, tmp_path, monkeypatch
    ):
        trace = _mixed_trace(3000, 48, seed=11)
        with kernels.tier_override("oracle"):
            expected = _run_sim(kernel, trace)

        monkeypatch.setenv(kernels.FAULT_ENV, f"{kernel}:{fault}:1")
        _vector(bundle_dir=tmp_path / "bundles")
        got = _run_sim(kernel, trace)

        # The campaign result is byte-identical to the pure oracle.
        assert json.dumps(got, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
        state = kernels.kernel_state(kernel)
        assert state["divergences"] == 1
        assert state["quarantined"]
        assert kernels.quarantined(kernel)
        events = kernels.drain_kernel_events()
        assert len(events) == 1
        assert events[0]["kernel"] == kernel
        assert events[0]["reason"] == _EXPECTED_REASON[fault]
        assert events[0]["category"] == KernelDivergenceError("x").category
        bundles = list((tmp_path / "bundles").glob("*.json"))
        assert len(bundles) == 1
        payload = json.loads(bundles[0].read_text())
        assert payload["format"] == kernels.BUNDLE_FORMAT
        assert payload["kernel"] == kernel
        assert payload["blocks"] == trace.block_ids(8).tolist()

    def test_quarantine_is_sticky_for_the_process(self, monkeypatch):
        monkeypatch.setenv(kernels.FAULT_ENV, "fullassoc:crash:1")
        _vector()
        trace = _mixed_trace(3000, 48)
        FullyAssociativeCache(32 * 8).run(trace)
        assert kernels.quarantined("fullassoc")
        FullyAssociativeCache(32 * 8).run(trace)
        state = kernels.kernel_state("fullassoc")
        assert state["chunks"] == 0  # never ran again
        assert state["divergences"] == 1
        # Other kernels are unaffected.
        profile_trace(trace)
        assert kernels.kernel_state("stackdist")["chunks"] == 1

    def test_bad_fault_spec_disables_injection_with_one_event(
        self, monkeypatch
    ):
        monkeypatch.setenv(kernels.FAULT_ENV, "fullassoc:melt")
        _vector()
        trace = _mixed_trace(3000, 48)
        FullyAssociativeCache(32 * 8).run(trace)
        FullyAssociativeCache(32 * 8).run(trace)
        events = kernels.drain_kernel_events()
        assert [e["reason"] for e in events] == ["bad-fault-spec"]
        assert kernels.kernel_state("fullassoc")["chunks"] == 2


# -- property: byte-identical state at every chunk boundary ----------------


def _twin_check(make_vector_sim, make_oracle_sim, chunks):
    """Feed identical chunks both ways; states must match at every cut."""
    _vector()
    vec = make_vector_sim()
    with kernels.tier_override("oracle"):
        ora = make_oracle_sim()
    for chunk in chunks:
        step = getattr(vec, "run", None) or vec.feed
        step(chunk)
        with kernels.tier_override("oracle"):
            (getattr(ora, "run", None) or ora.feed)(chunk)
        assert json.dumps(vec.state_dict(), sort_keys=True) == json.dumps(
            ora.state_dict(), sort_keys=True
        )


def _chunked(blocks, kinds, cuts):
    bounds = sorted({c % (len(blocks) + 1) for c in cuts} | {0, len(blocks)})
    return [
        _trace(blocks[a:b], kinds[a:b])
        for a, b in zip(bounds, bounds[1:])
        if b > a
    ]


block_lists = st.lists(st.integers(0, 7), min_size=1, max_size=60)
cut_lists = st.lists(st.integers(0, 60), max_size=4)


class TestPropertyEquivalence:
    @given(blocks=block_lists, cuts=cut_lists, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_all_kernels_match_oracle_at_every_boundary(
        self, blocks, cuts, data
    ):
        kinds = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(blocks), max_size=len(blocks)
            )
        )
        chunks = _chunked(blocks, kinds, cuts)
        _twin_check(
            lambda: FullyAssociativeCache(4 * 8),
            lambda: FullyAssociativeCache(4 * 8),
            chunks,
        )
        kernels.reset_kernel_state()
        for ways in (1, 2, 4):
            _twin_check(
                lambda: SetAssociativeCache(8 * 8, associativity=ways),
                lambda: SetAssociativeCache(8 * 8, associativity=ways),
                chunks,
            )
            kernels.reset_kernel_state()
        _twin_check(StackDistanceRun, StackDistanceRun, chunks)

    @pytest.mark.parametrize(
        "blocks",
        [
            [5] * 200,  # all-same-address
            [0, 1] * 150,  # two-block thrash
            list(range(31)) * 8,  # footprint == capacity - 1
            list(range(32)) * 8,  # footprint == capacity
            list(range(33)) * 8,  # footprint == capacity + 1
            # max-proc interleaving: 16 "processors" with disjoint
            # footprints touched round-robin, the paper's worst case
            # for LRU depth.
            [p * 64 + i for i in range(12) for p in range(16)],
        ],
    )
    def test_adversarial_traces(self, blocks):
        rng = np.random.default_rng(5)
        kinds = rng.integers(0, 2, size=len(blocks)).tolist()
        cuts = [7, len(blocks) // 3, len(blocks) // 2]
        chunks = _chunked(blocks, kinds, cuts)
        _twin_check(
            lambda: FullyAssociativeCache(32 * 8),
            lambda: FullyAssociativeCache(32 * 8),
            chunks,
        )
        kernels.reset_kernel_state()
        _twin_check(
            lambda: SetAssociativeCache(32 * 8, associativity=2),
            lambda: SetAssociativeCache(32 * 8, associativity=2),
            chunks,
        )
        kernels.reset_kernel_state()
        _twin_check(StackDistanceRun, StackDistanceRun, chunks)

    def test_warmup_and_reads_only_survive_the_kernel(self):
        trace = _mixed_trace(3000, 40, seed=3)
        _vector()
        vec = StackDistanceRun(warmup=500, count_reads_only=True)
        vec.feed(trace)
        assert kernels.kernel_state("stackdist")["chunks"] == 1
        with kernels.tier_override("oracle"):
            ora = StackDistanceRun(warmup=500, count_reads_only=True)
            ora.feed(trace)
        assert json.dumps(vec.state_dict(), sort_keys=True) == json.dumps(
            ora.state_dict(), sort_keys=True
        )


# -- campaign integration: the engine drains fallback events ---------------


class TestEngineIntegration:
    def test_engine_logs_kernel_fallback_events(self, tmp_path, monkeypatch):
        from repro.experiments.runner import ExperimentResult
        from repro.runtime.engine import CampaignEngine, EngineConfig
        from repro.runtime.events import EventLog, read_events

        monkeypatch.setenv(kernels.FAULT_ENV, "fullassoc:wrong-count:1")
        _vector()

        class GuardedExperiment:
            def run(self, **kwargs):
                FullyAssociativeCache(32 * 8).run(_mixed_trace(3000, 48))
                return ExperimentResult("guarded", "guarded experiment")

        log = EventLog(tmp_path / "events.jsonl")
        engine = CampaignEngine(
            {"guarded": (GuardedExperiment(), {})},
            config=EngineConfig(jobs=0, max_attempts=1, sleep=lambda s: None),
            event_log=log,
        )
        report = engine.run()
        assert report.succeeded  # the campaign completed despite the fault
        records = read_events(tmp_path / "events.jsonl")
        fallbacks = [r for r in records if r.get("event") == "kernel-fallback"]
        assert len(fallbacks) == 1
        assert fallbacks[0]["kernel"] == "fullassoc"
        assert fallbacks[0]["category"] == "kernel-divergence"
        assert not kernels.drain_kernel_events()  # engine drained them
