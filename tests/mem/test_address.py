"""Tests for the address-space region allocator."""

import pytest

from repro.mem.address import AddressSpace, Region


class TestRegion:
    def test_addr_bounds_checked(self):
        region = Region("r", base=64, size=16)
        assert region.addr(0) == 64
        assert region.addr(15) == 79
        with pytest.raises(IndexError):
            region.addr(16)
        with pytest.raises(IndexError):
            region.addr(-1)

    def test_element_addressing(self):
        region = Region("r", base=0, size=80)
        assert region.element(3) == 24
        assert region.element(2, element_size=16) == 32

    def test_contains(self):
        region = Region("r", base=64, size=16)
        assert region.contains(64)
        assert region.contains(79)
        assert not region.contains(80)
        assert not region.contains(63)

    def test_end(self):
        assert Region("r", base=10, size=5).end == 15


class TestAddressSpace:
    def test_regions_disjoint(self):
        space = AddressSpace()
        a = space.allocate("a", 100)
        b = space.allocate("b", 100)
        assert a.end <= b.base

    def test_alignment(self):
        space = AddressSpace(alignment=64)
        a = space.allocate("a", 10)
        b = space.allocate("b", 10)
        assert a.base % 64 == 0
        assert b.base % 64 == 0

    def test_address_zero_unused(self):
        space = AddressSpace()
        a = space.allocate("a", 8)
        assert a.base > 0

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 8)
        with pytest.raises(ValueError):
            space.allocate("a", 8)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().allocate("a", 0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(alignment=48)

    def test_allocate_array(self):
        space = AddressSpace()
        region = space.allocate_array("arr", 10, element_size=8)
        assert region.size == 80

    def test_lookup_by_name(self):
        space = AddressSpace()
        region = space.allocate("matrix", 128)
        assert space.region("matrix") is region
        assert "matrix" in space
        assert "other" not in space

    def test_owner_of(self):
        space = AddressSpace()
        a = space.allocate("a", 64)
        b = space.allocate("b", 64)
        assert space.owner_of(a.base) is a
        assert space.owner_of(b.base + 10) is b
        with pytest.raises(KeyError):
            space.owner_of(10**9)

    def test_total_allocated_grows(self):
        space = AddressSpace()
        assert space.total_allocated == 0
        space.allocate("a", 100)
        assert space.total_allocated >= 100
