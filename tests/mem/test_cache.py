"""Tests for the fully associative LRU cache simulator."""

import numpy as np
import pytest

from repro.mem.cache import FullyAssociativeCache, sweep_cache_sizes
from repro.mem.trace import READ, WRITE, Trace, TraceBuilder


class TestConstruction:
    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(1024, block_size=12)

    def test_rejects_capacity_below_block(self):
        with pytest.raises(ValueError, match="at least one block"):
            FullyAssociativeCache(4, block_size=8)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="must be positive"):
            FullyAssociativeCache(0)
        with pytest.raises(ValueError, match="must be positive"):
            FullyAssociativeCache(-1024)

    def test_rejects_zero_block_size(self):
        with pytest.raises(ValueError, match="power of two"):
            FullyAssociativeCache(1024, block_size=0)

    def test_error_messages_carry_offending_values(self):
        with pytest.raises(ValueError, match="12"):
            FullyAssociativeCache(1024, block_size=12)
        with pytest.raises(ValueError, match="-8"):
            FullyAssociativeCache(-8)

    def test_num_blocks(self):
        cache = FullyAssociativeCache(1024, block_size=8)
        assert cache.num_blocks == 128


class TestAccess:
    def test_first_access_misses(self):
        cache = FullyAssociativeCache(64)
        assert cache.access(0) is False
        assert cache.stats.read_misses == 1
        assert cache.stats.cold_misses == 1

    def test_second_access_hits(self):
        cache = FullyAssociativeCache(64)
        cache.access(0)
        assert cache.access(0) is True
        assert cache.stats.reads == 2
        assert cache.stats.read_misses == 1

    def test_same_block_different_addr_hits(self):
        cache = FullyAssociativeCache(64, block_size=8)
        cache.access(0)
        assert cache.access(7) is True  # same 8-byte block

    def test_write_miss_counted_separately(self):
        cache = FullyAssociativeCache(64)
        cache.access(0, WRITE)
        assert cache.stats.write_misses == 1
        assert cache.stats.read_misses == 0

    def test_lru_eviction(self):
        cache = FullyAssociativeCache(16, block_size=8)  # two blocks
        cache.access(0)
        cache.access(8)
        cache.access(16)  # evicts block 0
        assert not cache.contains(0)
        assert cache.contains(8)
        assert cache.contains(16)

    def test_touch_refreshes_recency(self):
        cache = FullyAssociativeCache(16, block_size=8)
        cache.access(0)
        cache.access(8)
        cache.access(0)  # block 0 now MRU
        cache.access(16)  # evicts block 8
        assert cache.contains(0)
        assert not cache.contains(8)

    def test_capacity_miss_vs_cold(self):
        cache = FullyAssociativeCache(8, block_size=8)  # one block
        cache.access(0)
        cache.access(8)
        cache.access(0)  # re-miss: capacity, not cold
        assert cache.stats.cold_misses == 2
        assert cache.stats.capacity_misses == 1

    def test_resident_blocks_bounded(self):
        cache = FullyAssociativeCache(32, block_size=8)
        for addr in range(0, 800, 8):
            cache.access(addr)
        assert cache.resident_blocks() <= 4


class TestRun:
    def test_run_matches_access_loop(self, looping_trace):
        by_run = FullyAssociativeCache(256)
        by_loop = FullyAssociativeCache(256)
        by_run.run(looping_trace)
        for access in looping_trace:
            by_loop.access(access.addr, access.kind)
        assert by_run.stats == by_loop.stats

    def test_full_reuse_when_fits(self, looping_trace):
        cache = FullyAssociativeCache(64 * 8)
        stats = cache.run(looping_trace)
        assert stats.misses == 64  # cold only
        assert stats.cold_misses == 64

    def test_no_reuse_when_too_small(self, looping_trace):
        cache = FullyAssociativeCache(8 * 8)  # 8 of 64 blocks
        stats = cache.run(looping_trace)
        assert stats.misses == 4 * 64  # every sweep misses everything

    def test_miss_rate_metric(self, sequential_trace):
        cache = FullyAssociativeCache(64)
        stats = cache.run(sequential_trace)
        assert stats.miss_rate == 1.0

    def test_reset_stats_keeps_contents(self):
        cache = FullyAssociativeCache(256)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0) is True  # still resident

    def test_flush_empties(self):
        cache = FullyAssociativeCache(256)
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False
        assert cache.stats.cold_misses == 2  # cold history also reset


class TestSweep:
    def test_monotone_in_capacity(self):
        builder = TraceBuilder()
        for sweep in range(3):
            builder.read_range(0, 100)
        trace = builder.build()
        capacities = np.array([16, 64, 256, 1024])
        rates = sweep_cache_sizes(trace, capacities)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_warmup_excludes_cold(self, looping_trace):
        capacities = np.array([64 * 8])
        rates = sweep_cache_sizes(looping_trace, capacities, warmup=64)
        assert rates[0] == 0.0

    def test_read_miss_rate_property(self):
        cache = FullyAssociativeCache(8, block_size=8)
        cache.access(0, READ)
        cache.access(8, WRITE)
        assert cache.stats.read_miss_rate == 1.0
        assert cache.stats.miss_rate == 1.0
