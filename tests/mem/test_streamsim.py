"""Tests for chunk-wise simulation with mid-run checkpoint/resume.

The acceptance property is *crash equivalence*: interrupt a streamed
simulation at any shard boundary (or mid-shard — the checkpoint then
simply points at the previous boundary), restart it against the same
checkpoint path, and the final answer must be byte-identical to an
uninterrupted run.  The interruptions here are real injected I/O
faults at the ``simckpt`` write site, not hand-built state.
"""

import numpy as np
import pytest

from repro.mem.cache import FullyAssociativeCache
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.shards import (
    StreamingTraceBuilder,
    clear_streaming,
    configure_streaming,
    load_sim_checkpoint,
)
from repro.mem.stack_distance import StackDistanceProfiler
from repro.mem.streamsim import (
    checkpoint_key,
    default_checkpoint_path,
    profile_streamed,
    run_cache_streamed,
    run_setassoc_streamed,
)
from repro.runtime.iofault import IOFaultInjector, install
from repro.runtime.journal import read_journal
from tests.conftest import random_trace

NUM_SHARDS = 5


@pytest.fixture
def streamed(tmp_path):
    trace = random_trace(1500, 200, seed=21)
    builder = StreamingTraceBuilder(tmp_path / "t.trd", shard_refs=300)
    builder.extend_arrays(trace.addrs, trace.kinds)
    out = builder.build()
    assert out.num_shards == NUM_SHARDS
    return trace, out


def fullassoc_stats(sim_stats):
    return (
        sim_stats.reads,
        sim_stats.writes,
        sim_stats.read_misses,
        sim_stats.write_misses,
        sim_stats.cold_misses,
    )


class TestStreamedEqualsInMemory:
    def test_fullassoc(self, streamed):
        trace, out = streamed
        mem = FullyAssociativeCache(512, 8).run(trace)
        srm = FullyAssociativeCache(512, 8).run(out)
        assert fullassoc_stats(mem) == fullassoc_stats(srm)

    def test_setassoc(self, streamed):
        trace, out = streamed
        mem = SetAssociativeCache(1024, block_size=8, associativity=2).run(
            trace
        )
        srm = SetAssociativeCache(1024, block_size=8, associativity=2).run(
            out
        )
        assert fullassoc_stats(mem) == fullassoc_stats(srm)

    def test_profiler(self, streamed):
        trace, out = streamed
        mem = StackDistanceProfiler(block_size=8, warmup=100).profile(trace)
        srm = StackDistanceProfiler(block_size=8, warmup=100).profile(out)
        np.testing.assert_array_equal(
            mem.depth_histogram, srm.depth_histogram
        )
        assert mem.cold_misses == srm.cold_misses
        assert mem.total == srm.total


class TestCrashResume:
    """Interrupt via injected faults; resume must be byte-identical."""

    @pytest.mark.parametrize("fail_at", range(1, NUM_SHARDS + 1))
    def test_fullassoc_resume_at_every_boundary(
        self, streamed, tmp_path, fail_at
    ):
        trace, out = streamed
        reference = fullassoc_stats(FullyAssociativeCache(512, 8).run(trace))
        path = tmp_path / "fa.ckpt"
        # Interrupted attempt: the checkpoint write after chunk
        # ``fail_at - 1`` fails, so the last durable boundary is
        # ``fail_at - 1`` (zero boundaries when the first write dies —
        # the mid-shard/no-checkpoint case: restart from shard zero).
        plan = IOFaultInjector.parse(f"simckpt:write:enospc:{fail_at}")
        with install(plan):
            with pytest.raises(OSError):
                run_cache_streamed(
                    FullyAssociativeCache(512, 8), out, checkpoint_path=path
                )
        ckpt = load_sim_checkpoint(path)
        if fail_at == 1:
            assert ckpt is None
        else:
            assert ckpt["next_shard"] == fail_at - 1
        resumed = run_cache_streamed(
            FullyAssociativeCache(512, 8), out, checkpoint_path=path
        )
        assert fullassoc_stats(resumed) == reference
        assert load_sim_checkpoint(path)["next_shard"] == NUM_SHARDS

    @pytest.mark.parametrize("fail_at", [2, NUM_SHARDS])
    def test_setassoc_resume(self, streamed, tmp_path, fail_at):
        trace, out = streamed
        reference = fullassoc_stats(
            SetAssociativeCache(1024, block_size=8, associativity=2).run(
                trace
            )
        )
        path = tmp_path / "sa.ckpt"
        with install(
            IOFaultInjector.parse(f"simckpt:write:enospc:{fail_at}")
        ):
            with pytest.raises(OSError):
                run_setassoc_streamed(
                    SetAssociativeCache(1024, block_size=8, associativity=2),
                    out,
                    checkpoint_path=path,
                )
        resumed = run_setassoc_streamed(
            SetAssociativeCache(1024, block_size=8, associativity=2),
            out,
            checkpoint_path=path,
        )
        assert fullassoc_stats(resumed) == reference

    @pytest.mark.parametrize("fail_at", [1, 3, NUM_SHARDS])
    def test_profiler_resume(self, streamed, tmp_path, fail_at):
        trace, out = streamed
        reference = StackDistanceProfiler(block_size=8, warmup=50).profile(
            trace
        )
        path = tmp_path / "sd.ckpt"
        with install(
            IOFaultInjector.parse(f"simckpt:write:enospc:{fail_at}")
        ):
            with pytest.raises(OSError):
                profile_streamed(
                    StackDistanceProfiler(block_size=8, warmup=50),
                    out,
                    checkpoint_path=path,
                )
        resumed = profile_streamed(
            StackDistanceProfiler(block_size=8, warmup=50),
            out,
            checkpoint_path=path,
        )
        np.testing.assert_array_equal(
            reference.depth_histogram, resumed.depth_histogram
        )
        assert reference.cold_misses == resumed.cold_misses
        assert reference.total == resumed.total

    def test_resume_counts_in_metrics(self, streamed, tmp_path, monkeypatch):
        """A resumed run bumps the ``mem.stream.resumes`` counter."""
        from repro.obs import metrics as obs_metrics

        _, out = streamed
        path = tmp_path / "skip.ckpt"
        with install(IOFaultInjector.parse("simckpt:write:enospc:4")):
            with pytest.raises(OSError):
                run_cache_streamed(
                    FullyAssociativeCache(512, 8), out, checkpoint_path=path
                )
        monkeypatch.delenv(obs_metrics.OBS_ENV, raising=False)
        obs_metrics.set_obs_enabled(True)
        try:
            registry = obs_metrics.get_registry()
            before = registry.snapshot()["counters"].get(
                "mem.stream.resumes", 0
            )
            run_cache_streamed(
                FullyAssociativeCache(512, 8), out, checkpoint_path=path
            )
            after = registry.snapshot()["counters"].get(
                "mem.stream.resumes", 0
            )
        finally:
            obs_metrics.set_obs_enabled(False)
        assert after == before + 1


class TestCheckpointCompatibility:
    def test_damaged_checkpoint_restarts_clean(self, streamed, tmp_path):
        trace, out = streamed
        path = tmp_path / "dmg.ckpt"
        run_cache_streamed(
            FullyAssociativeCache(512, 8), out, checkpoint_path=path
        )
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        stats = run_cache_streamed(
            FullyAssociativeCache(512, 8), out, checkpoint_path=path
        )
        assert fullassoc_stats(stats) == fullassoc_stats(
            FullyAssociativeCache(512, 8).run(trace)
        )

    def test_checkpoint_for_other_geometry_rejected(
        self, streamed, tmp_path
    ):
        """A snapshot keyed to different cache parameters must not be
        resumed into — the run restarts from shard zero instead."""
        trace, out = streamed
        path = tmp_path / "geom.ckpt"
        run_cache_streamed(
            FullyAssociativeCache(512, 8), out, checkpoint_path=path
        )
        stats = run_cache_streamed(
            FullyAssociativeCache(1024, 8), out, checkpoint_path=path
        )
        assert fullassoc_stats(stats) == fullassoc_stats(
            FullyAssociativeCache(1024, 8).run(trace)
        )

    def test_checkpoint_key_separates_kinds_and_params(self, streamed):
        _, out = streamed
        keys = {
            checkpoint_key(out, "fullassoc", {"capacity_bytes": 512}),
            checkpoint_key(out, "fullassoc", {"capacity_bytes": 1024}),
            checkpoint_key(out, "setassoc", {"capacity_bytes": 512}),
        }
        assert len(keys) == 3

    def test_default_path_requires_ambient_config(self, streamed, tmp_path):
        _, out = streamed
        clear_streaming()
        try:
            assert default_checkpoint_path(out, "fullassoc", {}) is None
            configure_streaming(tmp_path / "stream")
            path = default_checkpoint_path(out, "fullassoc", {})
            assert path is not None
            assert path.parent == tmp_path / "stream" / "checkpoints"
        finally:
            clear_streaming()

    def test_checkpoint_wal_journals_boundaries(self, streamed, tmp_path):
        _, out = streamed
        path = tmp_path / "wal.ckpt"
        run_cache_streamed(
            FullyAssociativeCache(512, 8), out, checkpoint_path=path
        )
        replay = read_journal(tmp_path / "wal.ckpt.wal")
        records = [
            r for r in replay.records if r.get("type") == "sim-checkpoint"
        ]
        assert [r["shard"] for r in records] == list(range(1, NUM_SHARDS + 1))
        assert not replay.torn_tail and not replay.corrupt
