"""Tests for the stride prefetcher and coverage measurement."""

import numpy as np
import pytest

from repro.mem.prefetch import (
    PrefetchStats,
    StridePrefetcher,
    measure_prefetch_coverage,
)
from repro.mem.trace import Trace, TraceBuilder
from tests.conftest import random_trace


class TestStridePrefetcher:
    def test_unit_stride_detected(self):
        prefetcher = StridePrefetcher(degree=2)
        for block in range(3):
            prefetcher.observe(block)
        assert prefetcher.was_predicted(3)
        assert prefetcher.was_predicted(4)
        assert not prefetcher.was_predicted(5)

    def test_prediction_consumed(self):
        prefetcher = StridePrefetcher(degree=1)
        for block in range(3):
            prefetcher.observe(block)
        assert prefetcher.was_predicted(3)
        assert not prefetcher.was_predicted(3)

    def test_negative_stride(self):
        prefetcher = StridePrefetcher(degree=1, region_bits=20)
        for block in (30, 20, 10):
            prefetcher.observe(block)
        assert prefetcher.was_predicted(0)

    def test_zero_stride_does_not_untrain(self):
        prefetcher = StridePrefetcher(degree=1, region_bits=20)
        for block in (0, 1, 1, 1, 2):
            prefetcher.observe(block)
        assert prefetcher.was_predicted(3)

    def test_irregular_pattern_no_predictions(self):
        prefetcher = StridePrefetcher(degree=2, region_bits=20)
        for block in (0, 7, 3, 11, 2, 19):
            prefetcher.observe(block)
        assert not any(prefetcher.was_predicted(b) for b in range(32))

    def test_table_capacity_bounded(self):
        prefetcher = StridePrefetcher(degree=1, table_capacity=4)
        for block in range(100):
            prefetcher.observe(block)
        assert len(prefetcher._predicted) <= 4

    def test_regions_isolate_streams(self):
        """Two interleaved streams in different regions both train."""
        prefetcher = StridePrefetcher(degree=1, region_bits=9)
        stream_a = [0, 1, 2, 3]
        stream_b = [1000, 1001, 1002, 1003]
        for a, b in zip(stream_a, stream_b):
            prefetcher.observe(a)
            prefetcher.observe(b)
        assert prefetcher.was_predicted(4)
        assert prefetcher.was_predicted(1004)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestCoverage:
    def test_streaming_trace_fully_covered(self):
        trace = Trace.from_addresses(range(0, 4096 * 8, 8))
        stats = measure_prefetch_coverage(trace, 1024)
        assert stats.coverage > 0.95

    def test_random_trace_mostly_uncovered(self):
        trace = random_trace(5000, 50_000, seed=3)
        stats = measure_prefetch_coverage(trace, 1024)
        # Dense random traffic triggers occasional accidental strides;
        # coverage must stay far below the streaming case.
        assert stats.coverage < 0.15

    def test_no_misses_no_coverage_div_by_zero(self):
        builder = TraceBuilder()
        builder.read(0)
        stats = measure_prefetch_coverage(builder.build(), 8 * 1024, block_size=8)
        assert stats.coverage == 0.0 or stats.misses <= 1

    def test_reads_only_flag(self):
        builder = TraceBuilder()
        builder.write_range(0, 100)
        trace = builder.build()
        reads_only = measure_prefetch_coverage(trace, 64, reads_only=True)
        both = measure_prefetch_coverage(trace, 64, reads_only=False)
        assert reads_only.misses == 0
        assert both.misses > 0

    def test_stats_properties(self):
        stats = PrefetchStats(misses=10, covered=4)
        assert stats.coverage == pytest.approx(0.4)
