"""Bounded-memory proof for the out-of-core trace substrate.

The acceptance property: a streamed campaign over a trace at least 10x
the spill threshold completes under an address-space cap that the
in-memory path cannot satisfy.  The cap is self-calibrated — a probe
run measures the streamed path's peak, the cap is set a fixed margin
above it, and the in-memory variant (which must materialize the full
columns) dies with ``MemoryError`` under the same cap.
"""

import subprocess
import sys
from pathlib import Path

REFS = 6_000_000
CHUNK = 100_000  # spill threshold; trace is 60x this

WORKER = r"""
import sys

mode, cap_mb, out_dir = sys.argv[1], int(sys.argv[2]), sys.argv[3]
if cap_mb:
    import resource

    cap = cap_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

import numpy as np

REFS = {refs}
CHUNK = {chunk}
BLOCKS = 4096


def chunks():
    rng = np.random.default_rng(5)
    for _ in range(REFS // CHUNK):
        addrs = rng.integers(0, BLOCKS, size=CHUNK).astype(np.int64) * 8
        kinds = rng.integers(0, 2, size=CHUNK).astype(np.uint8)
        yield addrs, kinds


try:
    from repro.mem.stack_distance import StackDistanceProfiler

    if mode == "inmemory":
        from repro.mem.trace import Trace

        pieces_a, pieces_k = [], []
        for addrs, kinds in chunks():
            pieces_a.append(addrs)
            pieces_k.append(kinds)
        trace = Trace(np.concatenate(pieces_a), np.concatenate(pieces_k))
    else:
        from repro.mem.shards import StreamingTraceBuilder

        builder = StreamingTraceBuilder(
            out_dir + "/t.trd", shard_refs=CHUNK
        )
        for addrs, kinds in chunks():
            builder.extend_arrays(addrs, kinds)
        trace = builder.build()
    profile = StackDistanceProfiler(block_size=8).profile(trace)
    assert profile.total == REFS
except MemoryError:
    sys.exit(77)

with open("/proc/self/status") as fh:
    for line in fh:
        if line.startswith("VmPeak:"):
            print(line.split()[1])
""".format(refs=REFS, chunk=CHUNK)


def _run(mode, cap_mb, out_dir):
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", WORKER, mode, str(cap_mb), str(out_dir)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )


def test_streamed_fits_where_in_memory_cannot(tmp_path):
    assert REFS >= 10 * CHUNK
    # 1. Probe: streamed peak with no cap.
    probe_dir = tmp_path / "probe"
    probe_dir.mkdir()
    probe = _run("streamed", 0, probe_dir)
    assert probe.returncode == 0, probe.stderr
    peak_kb = int(probe.stdout.strip())
    cap_mb = peak_kb // 1024 + 32

    # 2. The streamed path completes under the cap...
    capped_dir = tmp_path / "capped"
    capped_dir.mkdir()
    streamed = _run("streamed", cap_mb, capped_dir)
    assert streamed.returncode == 0, (
        f"streamed run died under its own calibrated cap of {cap_mb} MB:"
        f"\n{streamed.stderr}"
    )

    # ...and leaves a trace directory that audits clean.
    from repro.validate.artifacts import validate_trace_dir

    report = validate_trace_dir(capped_dir / "t.trd")
    assert not report.errors and not report.warnings, report.render()

    # 3. The in-memory path cannot satisfy the same cap: the full
    # columns alone are ~54 MB against a ~32 MB margin.
    in_memory = _run("inmemory", cap_mb, tmp_path)
    assert in_memory.returncode == 77, (
        f"in-memory run survived a {cap_mb} MB cap "
        f"(exit {in_memory.returncode}): the streamed substrate is not "
        f"buying bounded memory\n{in_memory.stderr}"
    )
