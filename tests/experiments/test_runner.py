"""Tests for the experiment result structures and the run-everything
entry point."""

import numpy as np
import pytest

from repro.core.curves import MissRateCurve
from repro.experiments.runner import ExperimentResult, SeriesComparison


class TestSeriesComparison:
    def test_ratio(self):
        comp = SeriesComparison("x", paper_value=10.0, measured_value=12.0)
        assert comp.ratio == pytest.approx(1.2)

    def test_ratio_without_paper_value(self):
        comp = SeriesComparison("x", paper_value=None, measured_value=5.0)
        assert comp.ratio is None

    def test_ratio_with_zero_paper_value(self):
        comp = SeriesComparison("x", paper_value=0.0, measured_value=5.0)
        assert comp.ratio is None

    def test_row_formats(self):
        comp = SeriesComparison(
            "knee", paper_value=2200.0, measured_value=2304.0,
            unit="bytes", note="close",
        )
        row = comp.row()
        assert row[0] == "knee"
        assert "2200" in row[1]
        assert row[5] == "close"

    def test_row_without_paper(self):
        row = SeriesComparison("x", None, 1.0).row()
        assert row[1] == "-"
        assert row[4] == "-"


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(experiment_id="demo", title="Demo")
        result.curves.append(
            MissRateCurve(
                np.array([64, 128]), np.array([1.0, 0.5]), label="series"
            )
        )
        result.comparisons.append(SeriesComparison("q", 1.0, 1.1, "u"))
        result.tables["extra"] = "a | b"
        result.notes.append("a note")
        return result

    def test_render_includes_everything(self):
        text = self._result().render()
        assert "demo" in text
        assert "series" in text
        assert "paper vs measured" in text
        assert "extra" in text
        assert "note: a note" in text

    def test_comparison_lookup(self):
        result = self._result()
        assert result.comparison("q").measured_value == 1.1
        with pytest.raises(KeyError):
            result.comparison("missing")


class TestMainEntry:
    def test_unknown_experiment_rejected(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_runs_selected_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1 completed" in out

    def test_quick_flag_accepted(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--quick", "table2"]) == 0
        assert "table2 completed" in capsys.readouterr().out

    def test_list_enumerates_ids(self, capsys):
        from repro.experiments.__main__ import EXPERIMENTS, main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(EXPERIMENTS)

    def test_unknown_flag_rejected(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--no-such-flag"]) == 2

    def test_budget_flag_accepted(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--quick", "--budget-seconds", "300", "table1"]) == 0
        assert "table1 completed" in capsys.readouterr().out

    def test_nonpositive_budget_rejected(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--budget-seconds", "0", "table1"]) == 2
        assert "must be positive" in capsys.readouterr().out
        assert main(["--max-attempts", "0", "table1"]) == 2

    def test_failure_yields_nonzero_exit(self, capsys, monkeypatch):
        import repro.experiments.__main__ as entry

        class Doomed:
            def run(self, **kwargs):
                raise RuntimeError("always fails")

        monkeypatch.setitem(entry.EXPERIMENTS, "doomed", (Doomed(), {}))
        monkeypatch.setitem(entry.QUICK_OVERRIDES, "doomed", {})
        # A monkeypatched instance cannot ship to a worker subprocess;
        # exercise the failure path on the in-process backend.
        assert entry.main(
            ["--max-attempts", "1", "--jobs", "0", "doomed", "table1"]
        ) == 1
        out = capsys.readouterr().out
        # The healthy experiment still completed despite the failure.
        assert "doomed FAILED" in out
        assert "table1 completed" in out
        assert "campaign summary" in out

    def test_run_dir_and_resume(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        run_dir = str(tmp_path / "run")
        assert main(["--quick", "--run-dir", run_dir, "table1"]) == 0
        capsys.readouterr()
        assert main(["--quick", "--resume", run_dir, "table1"]) == 0
        assert "already completed" in capsys.readouterr().out

    def test_experiment_registry_complete(self):
        """Every experiment module in the package is registered."""
        import pkgutil

        import repro.experiments as package
        from repro.experiments.__main__ import EXPERIMENTS

        modules = {
            name
            for _, name, _ in pkgutil.iter_modules(package.__path__)
            if name not in ("runner", "__main__")
        }
        registered = {
            module.__name__.rsplit(".", 1)[-1]
            for module, _ in EXPERIMENTS.values()
        }
        assert modules == registered
