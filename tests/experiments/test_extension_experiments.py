"""Integration tests for the extension experiments: prefetchability,
hierarchy design, cost model, scaling study, and the CG blocking
ablation."""

import pytest

from repro.experiments import (
    cg_blocking,
    cost_model,
    hierarchy_design,
    prefetch_study,
    scaling_study,
)
from repro.units import KB


class TestPrefetchStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return prefetch_study.run()

    def test_regular_kernels_highly_coverable(self, result):
        for name in ("LU", "CG", "FFT"):
            coverage = result.comparison(f"{name}: stride coverage").measured_value
            assert coverage > 0.6, name

    def test_barnes_hut_poorly_coverable(self, result):
        coverage = result.comparison("Barnes-Hut: stride coverage").measured_value
        assert coverage < 0.35

    def test_dichotomy_gap_positive(self, result):
        gap = result.comparison("regular-vs-irregular separation").measured_value
        assert gap > 0


class TestHierarchyDesign:
    @pytest.fixture(scope="class")
    def result(self):
        return hierarchy_design.run()

    def test_every_important_ws_cached(self, result):
        for name in ("LU", "CG", "FFT", "Barnes-Hut", "Volume Rendering"):
            level = result.comparison(f"{name}: important WS level").measured_value
            assert level <= 2, name  # L1 or L2, never memory

    def test_profile_matches_simulation_exactly(self, result):
        for comp in result.comparisons:
            if "local miss rate" in comp.quantity:
                assert comp.ratio == pytest.approx(1.0, abs=1e-9), comp.quantity

    def test_global_rate_below_l1_rate(self, result):
        for label in ("LU (n=96, B=8)", "Barnes-Hut (n=256)"):
            l1 = result.comparison(
                f"{label}: L1 local miss rate (profile vs sim)"
            ).measured_value
            overall = result.comparison(f"{label}: global miss rate").measured_value
            assert overall < l1


class TestCostModel:
    @pytest.fixture(scope="class")
    def result(self):
        return cost_model.run()

    def test_equal_split_is_competitive(self, result):
        worst = result.comparison(
            "worst equal-split penalty across applications"
        ).measured_value
        assert worst < 2.0  # "within a small constant factor"

    def test_every_application_scored(self, result):
        table = result.tables["per-application optimal designs"]
        for name in ("LU", "CG", "FFT", "Barnes-Hut", "Volume Rendering"):
            assert name in table


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return scaling_study.run()

    def test_regular_kernel_ws_invariant(self, result):
        assert result.comparison(
            "LU lev2WS invariance (100x n, 1024x P)"
        ).measured_value == pytest.approx(1.0)
        assert result.comparison(
            "FFT lev1WS invariance (2^10 x n, 1024x P)"
        ).measured_value == pytest.approx(1.0)

    def test_bh_paper_trajectories(self, result):
        assert result.comparison("BH MC theta at 1M particles").ratio == pytest.approx(
            1.0, abs=0.05
        )
        assert result.comparison(
            "BH TC theta at 1K processors"
        ).ratio == pytest.approx(1.0, abs=0.08)

    def test_bh_billion_particle_ws_under_300kb(self, result):
        comp = result.comparison("BH lev2WS at ~1G particles (MC)")
        assert comp.measured_value < 300 * KB

    def test_lu_mc_time_inflates(self, result):
        assert result.comparison(
            "LU MC time inflation at 16x processors"
        ).measured_value == pytest.approx(4.0, rel=0.01)

    def test_vr_cube_root_growth(self, result):
        assert result.comparison(
            "VR lev2WS growth for 8x data"
        ).measured_value == pytest.approx(2.0, abs=0.1)


class TestCGBlocking:
    @pytest.fixture(scope="class")
    def result(self):
        return cg_blocking.run(grid_sizes=(64, 128), tile=8)

    def test_unblocked_knee_scales_with_n(self, result):
        growth = result.comparison("unblocked knee growth (2x n)").measured_value
        assert growth >= 1.5

    def test_blocked_knee_constant(self, result):
        growth = result.comparison("blocked knee growth (2x n)").measured_value
        assert growth == pytest.approx(1.0, abs=0.5)

    def test_blocking_shrinks_cache_requirement(self, result):
        shrink = result.comparison(
            "blocked knee / unblocked knee at largest n"
        ).measured_value
        assert shrink < 0.5


class TestCGUnstructured:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import cg_unstructured

        return cg_unstructured.run(side=32, num_parts=8)

    def test_runs_and_renders(self, result):
        text = result.render()
        assert "partition quality" in text


class TestAllCache:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import all_cache

        return all_cache.run()

    def test_speedup_at_256kb(self, result):
        comp = result.comparison("all-cache speedup at 256 KB partitions")
        assert comp.measured_value > 2.0

    def test_crossover_in_small_partition_regime(self, result):
        comp = result.comparison("largest cost-effective all-cache partition")
        # Cost-effective only for partitions up to a few MB — the
        # TC-scaling regime the paper points at.
        assert 64 * KB <= comp.measured_value <= 8 * 1024 * KB

    def test_conventional_wins_at_large_partitions(self, result):
        table = result.tables["design-point comparison"]
        last_row = table.strip().splitlines()[-1]
        assert "conventional" in last_row


class TestLineSizeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import line_size_study

        return line_size_study.run()

    def test_streaming_kernels_scale_with_line(self, result):
        for name in ("LU", "CG", "FFT"):
            reduction = result.comparison(
                f"{name}: miss reduction, 8B -> 64B lines"
            ).measured_value
            assert reduction > 5, name

    def test_irregular_apps_have_interior_optimum(self, result):
        for name in ("Barnes-Hut", "Volume Rendering"):
            best = result.comparison(f"{name}: best line size").measured_value
            assert best <= 32, name

    def test_streaming_prefers_long_lines(self, result):
        for name in ("LU", "CG", "FFT"):
            best = result.comparison(f"{name}: best line size").measured_value
            assert best >= 64, name

    def test_dichotomy(self, result):
        gap = result.comparison(
            "streaming vs Barnes-Hut line-size benefit"
        ).measured_value
        assert gap > 2


class TestTable1Concurrency:
    def test_concurrency_exponents_verified(self):
        from repro.experiments import table1

        result = table1.run()
        for name, expected in [
            ("LU", 2.0),
            ("CG", 2.0),
            ("FFT", 1.0),
            ("Barnes-Hut", 1.0),
            ("Volume Rendering", 2.0),
        ]:
            comp = result.comparison(f"{name}: concurrency exponent")
            assert comp.measured_value == pytest.approx(expected, abs=0.05), name


class TestTable2Growth:
    def test_ws_growth_columns_verified(self):
        from repro.experiments import table2

        result = table2.run()
        for name in ("LU", "CG", "FFT"):
            comp = result.comparison(f"{name}: WS growth for 8x data")
            assert comp.measured_value == pytest.approx(1.0, abs=0.02), name
        bh = result.comparison("Barnes-Hut: WS growth for 8x data")
        assert 1.05 < bh.measured_value < 1.3
        vr = result.comparison("Volume Rendering: WS growth for 8x data")
        assert vr.measured_value == pytest.approx(2.0, abs=0.15)
