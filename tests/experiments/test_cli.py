"""CLI integration: subcommands, --validate, --verify-store, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import EXPERIMENTS, SUBCOMMANDS, main
from repro.runtime.checkpoint import CheckpointStore


def test_subcommands_cannot_shadow_experiment_ids():
    """The pre-argparse dispatch is safe only while this holds."""
    assert not set(SUBCOMMANDS) & set(EXPERIMENTS)


class TestValidateSubcommand:
    def test_missing_run_dir_exits_1(self, tmp_path, capsys):
        code = main(["validate", str(tmp_path / "absent")])
        assert code == 1
        assert "run-dir-missing" in capsys.readouterr().out

    def test_clean_quick_campaign_validates(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "--quick",
                    "--jobs",
                    "0",
                    "--validate",
                    "--run-dir",
                    str(run_dir),
                    "table1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["validate", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_corruption_detected_with_exit_1(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
        checkpoint = run_dir / "results" / "table1.json"
        checkpoint.write_text(checkpoint.read_text().replace('"ok"', '"OK"', 1))
        capsys.readouterr()
        assert main(["validate", str(run_dir)]) == 1
        assert "checkpoint-corrupt" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        main(["validate", "--json", str(tmp_path / "absent")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "run-dir-missing"


class TestFuzzSubcommand:
    def test_smoke_fuzz_exits_0(self, capsys):
        assert main(["fuzz", "--cases", "30", "--seed", "5"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bad_cases_value_is_usage_error(self, capsys):
        assert main(["fuzz", "--cases", "0"]) == 2

    def test_json_output(self, capsys):
        assert main(["fuzz", "--cases", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True


class TestVerifyStore:
    def test_clean_store_exits_0(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
        capsys.readouterr()
        assert main(["--verify-store", str(run_dir)]) == 0
        assert "every envelope verified" in capsys.readouterr().out

    def test_corrupt_store_exits_1(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
        checkpoint = run_dir / "results" / "table1.json"
        checkpoint.write_text(checkpoint.read_text()[:-20])
        capsys.readouterr()
        assert main(["--verify-store", str(run_dir)]) == 1
        assert "corrupt envelope" in capsys.readouterr().out


class TestValidateFlag:
    def test_validate_flag_recorded_in_manifest(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "--quick",
                    "--jobs",
                    "0",
                    "--validate",
                    "--run-dir",
                    str(run_dir),
                    "table1",
                ]
            )
            == 0
        )
        manifest = CheckpointStore(run_dir).read_manifest()
        assert manifest["validate"] is True
        capsys.readouterr()

    def test_validated_event_emitted(self, tmp_path, capsys):
        from repro.runtime.events import read_events

        run_dir = tmp_path / "run"
        main(
            [
                "--quick",
                "--jobs",
                "0",
                "--validate",
                "--run-dir",
                str(run_dir),
                "table1",
            ]
        )
        capsys.readouterr()
        events = read_events(run_dir / "events.jsonl")
        validated = [e for e in events if e["event"] == "validated"]
        assert validated and validated[0]["experiment_id"] == "table1"
        assert validated[0]["errors"] == 0


class TestChaosSubcommand:
    def test_chaos_is_registered(self):
        assert "chaos" in SUBCOMMANDS

    def test_negative_cycles_is_usage_error(self, capsys):
        assert main(["chaos", "--cycles", "-1"]) == 2
        assert "must be >= 0" in capsys.readouterr().out

    def test_zero_total_cycles_is_usage_error(self, capsys):
        assert main(["chaos", "--cycles", "0", "--enospc-cycles", "0"]) == 2
        assert "nothing to do" in capsys.readouterr().out

    def test_unknown_experiment_is_usage_error(self, capsys):
        assert main(["chaos", "--cycles", "1", "--experiments", "nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().out


class TestDurabilityCLI:
    """The journal/lease wiring of the main campaign entry point."""

    def test_campaign_journals_and_releases_lease(self, tmp_path, capsys):
        from repro.runtime.journal import JOURNAL_FILENAME, read_journal
        from repro.runtime.lease import LEASE_FILENAME

        run_dir = tmp_path / "run"
        assert (
            main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
            == 0
        )
        replay = read_journal(run_dir / JOURNAL_FILENAME)
        types = [r["type"] for r in replay.records]
        assert types[0] == "campaign-start"
        assert "attempt-end" in types and "summary-flushed" in types
        assert all(r["token"] == 1 for r in replay.records)
        assert not (run_dir / LEASE_FILENAME).exists()

    def test_resume_journals_recovery_under_new_token(self, tmp_path, capsys):
        from repro.runtime.journal import JOURNAL_FILENAME, read_journal

        run_dir = tmp_path / "run"
        main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
        capsys.readouterr()
        assert main(["--quick", "--jobs", "0", "--resume", str(run_dir), "table1"]) == 0
        recovered = [
            r
            for r in read_journal(run_dir / JOURNAL_FILENAME).records
            if r["type"] == "recovered"
        ]
        assert recovered and recovered[0]["token"] == 2
        assert recovered[0]["committed"] == ["table1"]

    def test_live_lease_refuses_second_supervisor(self, tmp_path, capsys):
        from repro.runtime.lease import Lease

        run_dir = tmp_path / "run"
        run_dir.mkdir(parents=True)
        with Lease.acquire(run_dir):
            code = main(
                ["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"]
            )
        assert code == 1
        assert "lease refused" in capsys.readouterr().out

    def test_corrupt_journal_refuses_to_run(self, tmp_path, capsys):
        from repro.runtime.journal import JOURNAL_FILENAME

        run_dir = tmp_path / "run"
        main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
        capsys.readouterr()
        path = run_dir / JOURNAL_FILENAME
        blob = bytearray(path.read_bytes())
        blob[8] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["--quick", "--jobs", "0", "--resume", str(run_dir), "table1"]) == 1
        assert "journal unusable" in capsys.readouterr().out

    def test_nonpositive_lease_ttl_is_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "--quick",
                "--lease-ttl-seconds",
                "0",
                "--run-dir",
                str(tmp_path / "run"),
                "table1",
            ]
        )
        assert code == 2
        assert "must be positive" in capsys.readouterr().out

    def test_validate_audits_the_journal(self, tmp_path, capsys):
        from repro.runtime.journal import JOURNAL_FILENAME

        run_dir = tmp_path / "run"
        main(["--quick", "--jobs", "0", "--run-dir", str(run_dir), "table1"])
        path = run_dir / JOURNAL_FILENAME
        blob = bytearray(path.read_bytes())
        blob[8] ^= 0xFF
        path.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["validate", str(run_dir)]) == 1
        assert "journal-corrupt" in capsys.readouterr().out


class TestNodesFlag:
    """--nodes validation on the campaign and chaos CLIs."""

    def test_nodes_must_be_positive(self, tmp_path, capsys):
        code = main([
            "--quick", "--jobs", "1", "--nodes", "0",
            "--run-dir", str(tmp_path / "r"), "table1",
        ])
        assert code == 2
        assert "--nodes must be >= 1" in capsys.readouterr().out

    def test_nodes_requires_subprocess_jobs(self, tmp_path, capsys):
        code = main([
            "--quick", "--jobs", "0", "--nodes", "2",
            "--run-dir", str(tmp_path / "r"), "table1",
        ])
        assert code == 2
        assert "--nodes requires --jobs >= 1" in capsys.readouterr().out

    def test_chaos_nodes_validation(self, capsys):
        assert main(["chaos", "--nodes", "0"]) == 2
        assert "--nodes must be >= 1" in capsys.readouterr().out
        assert main(["chaos", "--nodes", "2", "--jobs", "0"]) == 2
        assert "--nodes requires --jobs >= 1" in capsys.readouterr().out

    def test_serve_nodes_validation(self, tmp_path, capsys):
        from repro.service.http import ServiceConfig

        with pytest.raises(ValueError, match="nodes"):
            ServiceConfig(nodes=0)
        with pytest.raises(ValueError, match="jobs"):
            ServiceConfig(nodes=2, jobs=0)
