"""Integration tests: every paper table/figure regenerates with the
right shape at reduced scale.

These are the repository's reproduction guarantees: each test asserts
the qualitative claims of the corresponding paper artifact (who wins,
by what factor, where the knees fall), not third-decimal agreement.
"""

import pytest

from repro.experiments import fig2_lu, fig4_cg, fig5_fft, fig6_barneshut
from repro.experiments import fig7_volrend, table1, table2, grain_sweep, assoc_study
from repro.units import KB, MB


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_lu.run(validate_n=64, validate_block=8)

    def test_three_analytical_series_plus_validation(self, result):
        assert len(result.curves) == 4

    def test_model_sizes_match_paper(self, result):
        assert result.comparison("lev1WS (two block columns, B=16)").ratio == pytest.approx(1.0, abs=0.2)
        assert result.comparison("lev2WS (one block, B=16)").ratio == pytest.approx(1.0, abs=0.2)
        assert result.comparison("lev3WS (pivot row/column, B=16)").ratio == pytest.approx(1.0, abs=0.2)

    def test_simulated_knee_close_to_model(self, result):
        assert result.comparison(
            "simulated lev2WS knee (reduced problem)"
        ).ratio == pytest.approx(1.0, abs=0.6)

    def test_larger_blocks_lower_plateau(self, result):
        b4, b16, b64 = result.curves[:3]
        cache = 64 * KB
        assert b4.value_at(cache) > b16.value_at(cache) > b64.value_at(cache)

    def test_renders(self, result):
        text = result.render()
        assert "fig2" in text and "B=16" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_cg.run(validate_n=64)

    def test_lev1_sizes(self, result):
        assert result.comparison("lev1WS, 2-D prototypical").ratio == pytest.approx(
            1.0, abs=0.5
        )

    def test_simulated_knee(self, result):
        assert result.comparison(
            "simulated lev2WS knee (reduced problem)"
        ).ratio == pytest.approx(1.0, abs=0.6)

    def test_3d_curve_higher_lev1(self, result):
        two_d, three_d = result.curves[:2]
        assert three_d.label == "3-D grid"


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_fft.run(validate_n=2**10)

    def test_model_plateaus_match_paper(self, result):
        for radix in (2, 8, 32):
            comp = result.comparison(f"plateau after lev1WS, radix-{radix}")
            assert comp.ratio == pytest.approx(1.0, abs=0.1)

    def test_simulated_plateaus_within_quantization(self, result):
        for radix in (2, 8):
            comp = result.comparison(
                f"simulated plateau, radix-{radix} (reduced problem)"
            )
            assert comp.ratio == pytest.approx(1.0, abs=0.45)

    def test_higher_radix_wins_with_cache(self, result):
        r2, r8, r32 = result.curves[:3]
        cache = 16 * KB
        assert r2.value_at(cache) > r8.value_at(cache) > r32.value_at(cache)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_barneshut.run(n=256, num_processors=4)

    def test_lev1_within_factor(self, result):
        assert result.comparison("lev1WS (interaction scratch)").ratio == pytest.approx(
            1.0, abs=0.6
        )

    def test_plateau_after_lev1_about_20pc(self, result):
        comp = result.comparison("miss rate after lev1WS")
        assert 0.1 < comp.measured_value < 0.35

    def test_floor_small(self, result):
        assert result.comparison("communication floor").measured_value < 0.02

    def test_bytes_per_particle(self, result):
        assert result.comparison("data per particle").ratio == pytest.approx(
            1.0, abs=0.4
        )


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_volrend.run(n=32, slope_sizes=(24, 40))

    def test_lev1(self, result):
        assert result.comparison("lev1WS (sample-to-sample reuse)").ratio == pytest.approx(
            1.0, abs=0.8
        )

    def test_lev2_within_small_factor_of_formula(self, result):
        assert result.comparison("lev2WS (ray-to-ray reuse)").ratio < 4.0

    def test_linear_growth(self, result):
        comp = result.comparison("lev2WS growth: linear in n (R^2)")
        # Two points always fit; the real check is the monotone growth
        # encoded in the knee list in the note.
        assert comp.measured_value == pytest.approx(1.0, abs=0.05)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_all_power_law_exponents_exact(self, result):
        for comp in result.comparisons:
            if "exponent" in comp.quantity and "log" not in comp.note:
                assert comp.ratio == pytest.approx(1.0, abs=0.02)

    def test_log_laws_slightly_above(self, result):
        for comp in result.comparisons:
            if "log factors" in comp.note:
                assert 1.0 < comp.ratio < 1.25

    def test_barnes_hut_ws_sublinear(self, result):
        comp = result.comparison("Barnes-Hut: WS growth for 2x n")
        assert 1.0 < comp.measured_value < 1.2

    def test_symbolic_table_rendered(self, result):
        assert "n^2 sqrt(P)" in result.tables["Table 1 (symbolic, as in the paper)"]


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run()

    def test_cache_sizes_within_factor_4(self, result):
        for name in ("LU", "CG", "FFT", "Barnes-Hut", "Volume Rendering"):
            comp = result.comparison(f"{name}: important WS size")
            assert comp.ratio is not None
            assert 0.2 < comp.ratio < 4.0, name

    def test_grains_at_most_1mb(self, result):
        for name in ("LU", "CG", "FFT", "Barnes-Hut", "Volume Rendering"):
            comp = result.comparison(f"{name}: desirable grain")
            assert comp.measured_value <= 1.05 * MB, name

    def test_table_rendered(self, result):
        assert "Desirable grain size" in result.tables["Table 2"]


class TestGrainSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return grain_sweep.run()

    PAPER_RATIOS = [
        ("LU ratio, 1 MB grain", 0.35),
        ("LU ratio, 64 KB grain", 0.35),
        ("CG 2-D ratio, 1 MB grain", 0.15),
        ("FFT exact ratio, prototypical", 0.15),
        ("Barnes-Hut particles/processor, prototypical", 0.15),
        ("Volume rendering instr/word", 0.05),
        ("Volume rendering rays/processor, fine grain", 0.25),
    ]

    @pytest.mark.parametrize("quantity,tolerance", PAPER_RATIOS)
    def test_paper_numbers(self, result, quantity, tolerance):
        comp = result.comparison(quantity)
        assert comp.ratio == pytest.approx(1.0, abs=tolerance), quantity

    def test_fft_terabyte_wall(self, result):
        comp = result.comparison("FFT grain for ratio 100")
        assert comp.measured_value > 10 * 1024**4  # tens of terabytes


class TestAssocStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return assoc_study.run(n=192, capacities=[1 << k for k in range(8, 17)])

    def test_direct_mapped_needs_2_to_6x(self, result):
        comp = result.comparison("direct-mapped / fully-associative size factor")
        assert 1.5 <= comp.measured_value <= 8.0

    def test_higher_associativity_helps(self, result):
        dm = result.comparison("direct-mapped / fully-associative size factor")
        four = result.comparison("4-way / fully-associative size factor")
        assert four.measured_value <= dm.measured_value


class TestFig4ThreeD:
    def test_3d_lev2_knee_at_partition(self):
        from repro.experiments import fig4_cg

        result = fig4_cg.run(validate_n=64)
        comp = result.comparison("simulated 3-D lev2WS knee (reduced problem)")
        assert comp.ratio == pytest.approx(1.0, abs=0.6)
