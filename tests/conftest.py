"""Shared fixtures for the test suite.

Fixtures are deliberately small: working-set structure shows up at tiny
problem sizes, and the paper's own Barnes-Hut / volume rendering
figures use reduced problems for exactly this reason.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.barnes_hut.bodies import plummer_model, uniform_cube
from repro.apps.volrend.volume import synthetic_head
from repro.mem.trace import Trace, TraceBuilder


@pytest.fixture(scope="session")
def small_bodies():
    """128 Plummer-distributed bodies (session-scoped: read-only)."""
    return plummer_model(128, seed=7)


@pytest.fixture(scope="session")
def cube_bodies():
    """64 bodies uniform in the unit cube."""
    return uniform_cube(64, seed=3)


@pytest.fixture(scope="session")
def head_volume():
    """A 24^3 synthetic head phantom."""
    return synthetic_head(24)


@pytest.fixture
def sequential_trace():
    """A simple streaming trace: 512 distinct double words, read once."""
    return Trace.from_addresses(range(0, 512 * 8, 8))


@pytest.fixture
def looping_trace():
    """A trace that sweeps 64 double words four times (high reuse)."""
    builder = TraceBuilder()
    for _ in range(4):
        builder.read_range(0, 64)
    return builder.build()


def random_trace(num_refs: int, num_blocks: int, seed: int = 0) -> Trace:
    """A uniformly random reference stream (helper, not a fixture)."""
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, num_blocks, size=num_refs) * 8
    kinds = rng.integers(0, 2, size=num_refs).astype(np.uint8)
    return Trace(addrs.astype(np.int64), kinds)
