"""Artifact validation: every corruption class gets its own typed code."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.curves import MissRateCurve
from repro.experiments.runner import ExperimentResult
from repro.mem.trace import TraceBuilder
from repro.mem.tracefile import save_trace, trace_header
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import ExperimentOutcome
from repro.runtime.events import EventLog
from repro.validate.artifacts import (
    validate_dispatch_file,
    validate_events_file,
    validate_run_dir,
    validate_trace_file,
)


def make_result(experiment_id: str = "figA") -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title="A figure",
        curves=[
            MissRateCurve(
                capacities=np.array([64, 128]),
                miss_rates=np.array([0.5, 0.25]),
            )
        ],
    )


def make_trace():
    tb = TraceBuilder()
    for block in range(32):
        tb.read(8 * block)
        tb.write(8 * block)
    return tb.build()


@pytest.fixture
def clean_run(tmp_path):
    """A minimal but complete healthy campaign directory."""
    run_dir = tmp_path / "run"
    store = CheckpointStore(run_dir)
    store.write_manifest({"experiments": ["figA"], "quick": True})
    store.save_outcome(
        ExperimentOutcome(
            experiment_id="figA",
            status="ok",
            result=make_result("figA"),
            attempts=1,
        )
    )
    store.write_summary(
        {
            "status": "complete",
            "requested": ["figA"],
            "completed": ["figA"],
            "statuses": {"figA": "ok"},
        }
    )
    with EventLog(store.events_path) as log:
        log.emit("campaign-start")
        log.emit("start", experiment_id="figA")
        log.emit("checkpointed", experiment_id="figA")
    trace = make_trace()
    save_trace(run_dir / "figA.npz", trace, metadata=trace_header(trace))
    return run_dir


class TestCleanRun:
    def test_clean_run_passes(self, clean_run):
        report = validate_run_dir(clean_run)
        assert report.ok, report.render()
        assert report.checks_run > 5

    def test_missing_run_dir(self, tmp_path):
        report = validate_run_dir(tmp_path / "nope")
        assert report.codes() == ["run-dir-missing"]

    def test_empty_dir_warns_but_passes(self, tmp_path):
        report = validate_run_dir(tmp_path)
        assert report.ok
        codes = report.codes()
        assert "manifest-missing" in codes
        assert "summary-missing" in codes


class TestCorruptionClasses:
    """Each ISSUE-mandated corruption class yields its distinct code."""

    def test_truncated_trace(self, clean_run):
        path = clean_run / "figA.npz"
        path.write_bytes(path.read_bytes()[:40])
        report = validate_run_dir(clean_run)
        assert "trace-unreadable" in report.codes()

    def test_bit_flipped_trace(self, clean_run):
        path = clean_run / "figA.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = validate_run_dir(clean_run)
        assert not report.ok
        codes = set(report.codes())
        # A mid-file flip can land in the zip directory (unreadable) or
        # in a member (decodes but fails checksum); both are detected.
        assert codes & {"trace-corrupt", "trace-unreadable"}

    def test_bit_flipped_checkpoint(self, clean_run):
        path = clean_run / "results" / "figA.json"
        text = path.read_text()
        path.write_text(text.replace('"ok"', '"OK"', 1))
        report = validate_run_dir(clean_run)
        assert "checkpoint-corrupt" in report.codes()

    def test_torn_event_line_mid_log(self, clean_run):
        events = clean_run / "events.jsonl"
        lines = events.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        events.write_text("\n".join(lines) + "\n")
        report = validate_run_dir(clean_run)
        assert "events-torn" in report.codes()
        assert not report.ok

    def test_torn_final_line_is_tolerated(self, clean_run):
        events = clean_run / "events.jsonl"
        text = events.read_text().rstrip("\n")
        events.write_text(text[:-4])
        report = validate_run_dir(clean_run)
        torn = report.by_code("events-torn")
        assert torn and torn[0].severity == "warning"
        assert report.ok

    def test_stale_checkpoint(self, clean_run):
        store = CheckpointStore(clean_run)
        store.save_outcome(
            ExperimentOutcome(
                experiment_id="ghost",
                status="ok",
                result=make_result("ghost"),
            )
        )
        report = validate_run_dir(clean_run)
        assert "checkpoint-stale" in report.codes()

    def test_header_mismatch(self, clean_run):
        save_trace(
            clean_run / "bad-header.npz", make_trace(), metadata={"refs": 1}
        )
        report = validate_run_dir(clean_run)
        assert "trace-header-mismatch" in report.codes()

    def test_dangling_summary_id(self, clean_run):
        store = CheckpointStore(clean_run)
        store.write_summary(
            {
                "status": "complete",
                "requested": ["figA", "figB"],
                "completed": ["figA", "figB"],
                "statuses": {"figA": "ok", "figB": "ok"},
            }
        )
        report = validate_run_dir(clean_run)
        assert "summary-dangling-id" in report.codes()


class TestFinerDiagnostics:
    def test_summary_status_mismatch(self, clean_run):
        store = CheckpointStore(clean_run)
        store.write_summary(
            {
                "status": "complete",
                "requested": ["figA"],
                "completed": ["figA"],
                "statuses": {"figA": "degraded"},
            }
        )
        report = validate_run_dir(clean_run)
        assert "summary-status-mismatch" in report.codes()

    def test_checkpoint_id_mismatch(self, clean_run):
        store = CheckpointStore(clean_run)
        payload = ExperimentOutcome(
            experiment_id="figA", status="ok", result=make_result("figA")
        ).to_dict()
        store._write_envelope(store.results_dir / "other.json", payload)
        report = validate_run_dir(clean_run)
        assert "checkpoint-id-mismatch" in report.codes()

    def test_status_misfiled(self, clean_run):
        store = CheckpointStore(clean_run)
        payload = ExperimentOutcome(
            experiment_id="figZ", status="failed"
        ).to_dict()
        store._write_envelope(store.results_dir / "figZ.json", payload)
        report = validate_run_dir(clean_run)
        assert "outcome-status-misfiled" in report.codes()

    def test_deep_oracles_run_over_stored_results(self, clean_run):
        store = CheckpointStore(clean_run)
        bad = make_result("figA")
        bad.curves[0].miss_rates = np.array([0.5, np.nan])
        store.save_outcome(
            ExperimentOutcome(experiment_id="figA", status="ok", result=bad)
        )
        report = validate_run_dir(clean_run, deep=True)
        findings = report.by_code("curve-not-finite")
        assert findings and "results/figA.json" in str(findings[0].path)
        assert validate_run_dir(clean_run, deep=False).ok

    def test_manifest_schema_violation(self, clean_run):
        store = CheckpointStore(clean_run)
        store.write_manifest({"experiments": "figA"})
        report = validate_run_dir(clean_run)
        assert "manifest-schema" in report.codes()


class TestEventsFile:
    def test_missing_file_is_empty_pass(self, tmp_path):
        assert validate_events_file(tmp_path / "none.jsonl").ok

    def test_seq_regression_detected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        records = [
            {"seq": 1, "t_mono": 0.0, "t_wall": 1.0, "event": "a"},
            {"seq": 1, "t_mono": 0.1, "t_wall": 1.1, "event": "b"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        report = validate_events_file(path)
        assert "events-seq" in report.codes()

    def test_schema_violation_detected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"seq": 1, "event": "a"}) + "\n")
        report = validate_events_file(path)
        assert "event-schema" in report.codes()


class TestTraceFile:
    def test_clean_trace_passes(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, make_trace(), metadata={"processor": 0, "seed": 0})
        report = validate_trace_file(path)
        assert report.ok, report.render()

    def test_not_a_zip_at_all(self, tmp_path):
        path = tmp_path / "t.npz"
        path.write_bytes(b"definitely not a zip archive")
        report = validate_trace_file(path)
        assert report.codes() == ["trace-unreadable"]


class TestJournalAndLease:
    """The durability artifacts: journal.wal and supervisor.lease."""

    def write_journal(self, run_dir, *appends, token=1):
        from repro.runtime.journal import JOURNAL_FILENAME, Journal

        with Journal(run_dir / JOURNAL_FILENAME, token=token) as journal:
            for record_type, fields in appends:
                journal.append(record_type, **fields)
        return run_dir / JOURNAL_FILENAME

    def test_healthy_journal_passes(self, clean_run):
        self.write_journal(
            clean_run,
            ("campaign-start", {"experiments": ["figA"]}),
            ("attempt-end", {"experiment_id": "figA", "status": "ok"}),
            ("summary-flushed", {"status": "complete"}),
        )
        report = validate_run_dir(clean_run)
        assert report.ok, report.render()
        assert "journal-missing" not in report.codes()

    def test_missing_journal_is_a_warning(self, clean_run):
        report = validate_run_dir(clean_run)
        missing = report.by_code("journal-missing")
        assert missing and missing[0].severity == "warning"
        assert report.ok

    def test_torn_tail_is_a_warning(self, clean_run):
        path = self.write_journal(
            clean_run, ("campaign-start", {"experiments": ["figA"]})
        )
        with open(path, "ab") as handle:
            handle.write(b"WAL1 dead")
        report = validate_run_dir(clean_run)
        torn = report.by_code("journal-torn")
        assert torn and torn[0].severity == "warning"
        assert report.ok

    def test_mid_file_corruption_is_an_error(self, clean_run):
        path = self.write_journal(
            clean_run,
            ("campaign-start", {"experiments": ["figA"]}),
            ("summary-flushed", {"status": "complete"}),
        )
        blob = bytearray(path.read_bytes())
        blob[8] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = validate_run_dir(clean_run)
        assert "journal-corrupt" in report.codes()
        assert not report.ok

    def test_seq_regression_is_an_error(self, clean_run):
        from repro.runtime.journal import JOURNAL_FILENAME, frame_record

        lines = b"".join(
            frame_record(
                {"seq": seq, "token": 1, "t_wall": 0.0, "type": "recovered"}
            )
            for seq in (2, 1)
        )
        (clean_run / JOURNAL_FILENAME).write_bytes(lines)
        report = validate_run_dir(clean_run)
        assert "journal-seq" in report.codes()

    def test_schema_violation_is_an_error(self, clean_run):
        from repro.runtime.journal import JOURNAL_FILENAME, frame_record

        record = {"seq": 1, "token": 1, "t_wall": 0.0, "type": "not-a-type"}
        (clean_run / JOURNAL_FILENAME).write_bytes(frame_record(record))
        report = validate_run_dir(clean_run)
        assert "journal-schema" in report.codes()

    def test_stale_lease_is_a_warning(self, clean_run):
        import subprocess

        from repro.runtime.lease import LEASE_FILENAME, LeaseState

        proc = subprocess.Popen(["true"])
        proc.wait()
        state = LeaseState(
            pid=proc.pid, token=1, acquired_wall=0.0, heartbeat_wall=0.0
        )
        (clean_run / LEASE_FILENAME).write_text(state.to_json())
        report = validate_run_dir(clean_run)
        stale = report.by_code("lease-stale")
        assert stale and stale[0].severity == "warning"
        assert report.ok

    def test_undecodable_lease_is_an_error(self, clean_run):
        from repro.runtime.lease import LEASE_FILENAME

        (clean_run / LEASE_FILENAME).write_text("{half a lease")
        report = validate_run_dir(clean_run)
        assert "lease-schema" in report.codes()
        assert not report.ok


class TestObservabilityArtifacts:
    """The spans/metrics validators added with the obs subsystem."""

    def _span_line(self, **overrides):
        record = {
            "name": "campaign.run",
            "trace_id": "t0",
            "span_id": "s0",
            "t_wall": 1.0,
            "dur_s": 0.5,
            "status": "ok",
            "pid": 1,
        }
        record.update(overrides)
        return json.dumps(record)

    def _metrics(self, clean_run, **overrides):
        payload = {
            "format": 1,
            "written_wall": 1.0,
            "trace_id": "t0",
            "campaign": {"counters": {}, "gauges": {}, "histograms": {}},
            "attempts": {},
        }
        payload.update(overrides)
        (clean_run / "metrics.json").write_text(json.dumps(payload))
        return payload

    def test_clean_spans_and_metrics_pass(self, clean_run):
        (clean_run / "spans.jsonl").write_text(self._span_line() + "\n")
        self._metrics(clean_run)
        report = validate_run_dir(clean_run)
        assert report.ok, report.render()

    def test_torn_span_line_before_eof_is_an_error(self, clean_run):
        (clean_run / "spans.jsonl").write_text(
            '{"torn\n' + self._span_line() + "\n"
        )
        report = validate_run_dir(clean_run)
        torn = report.by_code("spans-torn")
        assert torn and torn[0].severity == "error"

    def test_torn_trailing_span_line_only_warns(self, clean_run):
        (clean_run / "spans.jsonl").write_text(
            self._span_line() + "\n" + '{"torn'
        )
        report = validate_run_dir(clean_run)
        torn = report.by_code("spans-torn")
        assert torn and torn[0].severity == "warning"
        assert report.ok

    def test_span_schema_violation(self, clean_run):
        (clean_run / "spans.jsonl").write_text(
            self._span_line(status="exploded", dur_s=-1.0) + "\n"
        )
        report = validate_run_dir(clean_run)
        assert "spans-schema" in report.codes()

    def test_undecodable_metrics_is_an_error(self, clean_run):
        (clean_run / "metrics.json").write_text('{"format": ')
        report = validate_run_dir(clean_run)
        assert "metrics-schema" in report.codes()

    def test_metrics_schema_violation(self, clean_run):
        self._metrics(clean_run, campaign={"counters": {"c": "NaN-ish"}})
        report = validate_run_dir(clean_run)
        assert "metrics-schema" in report.codes()

    def test_histogram_count_arity_checked(self, clean_run):
        self._metrics(
            clean_run,
            campaign={
                "counters": {},
                "gauges": {},
                "histograms": {
                    "h": {
                        "buckets": [1.0, 2.0],
                        "counts": [1, 2],
                        "sum": 3.0,
                        "count": 3,
                    }
                },
            },
        )
        report = validate_run_dir(clean_run)
        assert "metrics-schema" in report.codes()

    def test_dangling_attempt_uid_detected(self, clean_run):
        self._metrics(
            clean_run,
            attempts={"never-started-1-1": {"rss_peak_kb": 1, "spans": 0}},
        )
        report = validate_run_dir(clean_run)
        assert "metrics-dangling-id" in report.codes()

    def test_known_attempt_uid_accepted(self, clean_run):
        with EventLog(clean_run / "events.jsonl") as log:
            log.emit("start", experiment_id="figA", attempt_uid="figA-1-1")
        self._metrics(
            clean_run,
            attempts={"figA-1-1": {"rss_peak_kb": 1, "spans": 0}},
        )
        report = validate_run_dir(clean_run)
        assert "metrics-dangling-id" not in report.codes()
        assert report.ok, report.render()


class TestStreamingArtifacts:
    """Run-dir auditing of the sharded-trace streaming substrate."""

    def _streamed_run(self, tmp_path, shard_refs=128):
        from repro.mem.shards import StreamingTraceBuilder
        from tests.conftest import random_trace

        run_dir = tmp_path / "run"
        stream = run_dir / "stream"
        stream.mkdir(parents=True)
        trace = random_trace(600, 90, seed=31)
        builder = StreamingTraceBuilder(stream / "t.trd", shard_refs=shard_refs)
        builder.extend_arrays(trace.addrs, trace.kinds)
        return run_dir, builder.build()

    def test_clean_streamed_run_dir_passes(self, tmp_path):
        run_dir, _ = self._streamed_run(tmp_path)
        report = validate_run_dir(run_dir)
        assert not report.errors, report.render()

    def test_shard_damage_surfaces_with_relative_path(self, tmp_path):
        from repro.mem.shards import shard_name

        run_dir, streamed = self._streamed_run(tmp_path)
        (streamed.directory / shard_name(2)).unlink()
        report = validate_run_dir(run_dir)
        findings = [f for f in report.errors if f.code == "trace-shard-missing"]
        assert findings and "stream/t.trd" in (findings[0].path or "")

    def test_staging_dir_is_a_warning_only(self, tmp_path):
        from repro.mem.shards import StreamingTraceBuilder
        from tests.conftest import random_trace

        run_dir, _ = self._streamed_run(tmp_path)
        orphan = StreamingTraceBuilder(
            run_dir / "stream" / "orphan.trd", shard_refs=64
        )
        trace = random_trace(200, 30, seed=32)
        orphan.extend_arrays(trace.addrs, trace.kinds)  # never build()
        report = validate_run_dir(run_dir)
        assert not report.errors, report.render()
        assert "trace-shard-incomplete" in report.codes()

    def test_damaged_sim_checkpoint_is_a_warning(self, tmp_path):
        from repro.mem.shards import save_sim_checkpoint

        run_dir, _ = self._streamed_run(tmp_path)
        ckpt_dir = run_dir / "stream" / "checkpoints"
        ckpt_dir.mkdir()
        path = ckpt_dir / "abc123.ckpt"
        save_sim_checkpoint(path, {"next_shard": 1, "state": {}})
        path.write_bytes(path.read_bytes()[:-5])
        report = validate_run_dir(run_dir)
        assert not report.errors, report.render()
        assert "sim-checkpoint-corrupt" in report.codes()

    def test_healthy_sim_checkpoint_passes(self, tmp_path):
        from repro.mem.shards import save_sim_checkpoint

        run_dir, _ = self._streamed_run(tmp_path)
        ckpt_dir = run_dir / "stream" / "checkpoints"
        ckpt_dir.mkdir()
        save_sim_checkpoint(
            ckpt_dir / "abc123.ckpt", {"next_shard": 1, "state": {}}
        )
        report = validate_run_dir(run_dir)
        assert not report.errors, report.render()
        assert "sim-checkpoint-corrupt" not in report.codes()


class TestDispatchWal:
    """The dispatch fabric's assignment WAL (``dispatch.wal``)."""

    def write_wal(self, tmp_path, *appends, token=1):
        from repro.runtime.journal import Journal

        path = tmp_path / "dispatch.wal"
        with Journal(path, token=token, fsync=False) as journal:
            for record_type, fields in appends:
                journal.append(record_type, **fields)
        return path

    @staticmethod
    def assignment(aid, uid, node="node-0", **extra):
        fields = {
            "experiment_id": uid.split("@")[0],
            "attempt": 1,
            "attempt_uid": uid,
            "assignment_id": aid,
            "node_id": node,
            "node_token": 1,
        }
        fields.update(extra)
        return fields

    def test_missing_wal_is_fine(self, tmp_path):
        report = validate_dispatch_file(tmp_path / "dispatch.wal")
        assert report.ok and not report.findings

    def test_clean_assign_complete_passes(self, tmp_path):
        uid = "figA@1.1"
        path = self.write_wal(
            tmp_path,
            ("dispatch-assign", self.assignment("a#1", uid)),
            ("dispatch-complete", self.assignment("a#1", uid, status="ok")),
        )
        report = validate_dispatch_file(path)
        assert report.ok, report.render()
        assert not report.findings

    def test_requeue_then_complete_elsewhere_passes(self, tmp_path):
        uid = "figA@1.1"
        path = self.write_wal(
            tmp_path,
            ("dispatch-assign", self.assignment("a#1", uid)),
            ("dispatch-requeue", self.assignment("a#1", uid, reason="dead")),
            ("dispatch-assign", self.assignment("a#2", uid, node="node-1")),
            (
                "dispatch-complete",
                self.assignment("a#2", uid, node="node-1", status="ok"),
            ),
        )
        report = validate_dispatch_file(path)
        assert report.ok and not report.findings, report.render()

    def test_hedge_with_fenced_loser_passes(self, tmp_path):
        uid = "figA@1.1"
        path = self.write_wal(
            tmp_path,
            ("dispatch-assign", self.assignment("a#1", uid)),
            ("dispatch-hedge", self.assignment("a#2", uid, node="node-1")),
            (
                "dispatch-complete",
                self.assignment("a#2", uid, node="node-1", status="ok"),
            ),
            (
                "dispatch-fenced",
                self.assignment("a#1", uid, reason="duplicate-result"),
            ),
        )
        report = validate_dispatch_file(path)
        assert report.ok and not report.findings, report.render()

    def test_double_complete_is_an_error(self, tmp_path):
        uid = "figA@1.1"
        path = self.write_wal(
            tmp_path,
            ("dispatch-assign", self.assignment("a#1", uid)),
            ("dispatch-hedge", self.assignment("a#2", uid, node="node-1")),
            ("dispatch-complete", self.assignment("a#1", uid, status="ok")),
            (
                "dispatch-complete",
                self.assignment("a#2", uid, node="node-1", status="ok"),
            ),
        )
        report = validate_dispatch_file(path)
        assert "dispatch-double-complete" in report.codes()
        assert not report.ok

    def test_orphan_assignment_is_a_warning(self, tmp_path):
        path = self.write_wal(
            tmp_path,
            ("dispatch-assign", self.assignment("a#1", "figA@1.1")),
        )
        report = validate_dispatch_file(path)
        orphans = report.by_code("dispatch-orphan-assignment")
        assert orphans and orphans[0].severity == "warning"
        assert report.ok  # a crash signature, not storage damage

    def test_closure_without_opener_is_corrupt(self, tmp_path):
        path = self.write_wal(
            tmp_path,
            (
                "dispatch-complete",
                self.assignment("ghost#1", "figA@1.1", status="ok"),
            ),
        )
        report = validate_dispatch_file(path)
        assert "dispatch-corrupt" in report.codes()
        assert not report.ok

    def test_torn_tail_is_a_warning(self, tmp_path):
        uid = "figA@1.1"
        path = self.write_wal(
            tmp_path,
            ("dispatch-assign", self.assignment("a#1", uid)),
            ("dispatch-complete", self.assignment("a#1", uid, status="ok")),
        )
        with open(path, "ab") as handle:
            handle.write(b"WAL1 dead")
        report = validate_dispatch_file(path)
        torn = report.by_code("dispatch-torn")
        assert torn and torn[0].severity == "warning"
        assert report.ok

    def test_run_dir_audit_includes_the_dispatch_wal(self, clean_run):
        uid = "figA@1.1"
        self.write_wal(
            clean_run,
            ("dispatch-assign", self.assignment("a#1", uid)),
            ("dispatch-complete", self.assignment("a#1", uid, status="ok")),
            ("dispatch-complete", self.assignment("a#1", uid, status="ok")),
        )
        report = validate_run_dir(clean_run)
        assert "dispatch-double-complete" in report.codes()


class TestKernelBundles:
    """Audit codes for the vectorized-kernel trust harness artifacts."""

    def bundle_payload(self, **over):
        payload = {
            "format": "kernel-divergence-bundle-v1",
            "kernel": "fullassoc",
            "chunk": 3,
            "reason": "shadow-verify",
            "detail": "stats mismatch",
            "pre_state": {},
            "kernel_state": {},
            "oracle_state": {},
            "blocks": [0, 1, 0],
            "kinds": [0, 1, 0],
        }
        payload.update(over)
        return payload

    def write_bundle(self, run_dir, name="fullassoc-chunk000003.json", text=None):
        bundle_dir = run_dir / "kernel-bundles"
        bundle_dir.mkdir(exist_ok=True)
        path = bundle_dir / name
        path.write_text(
            json.dumps(self.bundle_payload()) if text is None else text
        )
        return path

    def test_valid_bundle_is_a_warning(self, clean_run):
        from repro.validate.artifacts import validate_kernel_bundles

        self.write_bundle(clean_run)
        report = validate_kernel_bundles(clean_run)
        found = report.by_code("kernel-divergence-bundle")
        assert found and found[0].severity == "warning"
        assert report.ok  # oracle fallback kept the results correct

    def test_undecodable_bundle_is_an_error(self, clean_run):
        from repro.validate.artifacts import validate_kernel_bundles

        self.write_bundle(clean_run, text="{not json")
        self.write_bundle(
            clean_run,
            name="stackdist-chunk000001.json",
            text=json.dumps({"kernel": "stackdist"}),  # missing keys
        )
        report = validate_kernel_bundles(clean_run)
        assert len(report.by_code("kernel-bundle-undecodable")) == 2
        assert not report.ok

    def test_tmp_leftover_is_incomplete(self, clean_run):
        from repro.validate.artifacts import validate_kernel_bundles

        self.write_bundle(clean_run, name="fullassoc-chunk000001.json.tmp")
        report = validate_kernel_bundles(clean_run)
        found = report.by_code("kernel-bundle-incomplete")
        assert found and found[0].severity == "warning"

    def test_divergence_counters_flag_quarantine(self, clean_run):
        from repro.validate.artifacts import validate_kernel_bundles

        (clean_run / "metrics.json").write_text(
            json.dumps(
                {
                    "format": 1,
                    "campaign": {
                        "counters": {"mem.kernel.setassoc.divergences": 2},
                        "gauges": {},
                        "histograms": {},
                    },
                    "attempts": {},
                }
            )
        )
        report = validate_kernel_bundles(clean_run)
        found = report.by_code("kernel-quarantined")
        assert found and found[0].severity == "warning"
        assert "setassoc" in found[0].message

    def test_run_dir_audit_includes_kernel_bundles(self, clean_run):
        self.write_bundle(clean_run)
        report = validate_run_dir(clean_run)
        assert "kernel-divergence-bundle" in report.codes()

    def test_pre_kernel_run_dir_is_silent(self, clean_run):
        report = validate_run_dir(clean_run)
        assert not any(code.startswith("kernel-") for code in report.codes())
