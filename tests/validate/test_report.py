"""Tests for the typed finding/report machinery."""

from __future__ import annotations

import pytest

from repro.runtime.errors import ResultRejectedError, ValidationError
from repro.validate.report import (
    SEVERITY_WARNING,
    Finding,
    ValidationReport,
    merge_reports,
)


class TestFinding:
    def test_render_includes_code_and_path(self):
        finding = Finding(code="trace-corrupt", message="boom", path="a.npz")
        text = finding.render()
        assert "trace-corrupt" in text
        assert "a.npz" in text
        assert text.startswith("ERROR")

    def test_render_without_path(self):
        assert "[" not in Finding(code="x", message="m").render()

    def test_to_dict_round_trip_fields(self):
        finding = Finding(
            code="c", message="m", path="p", severity=SEVERITY_WARNING
        )
        assert finding.to_dict() == {
            "code": "c",
            "message": "m",
            "path": "p",
            "severity": "warning",
        }


class TestValidationReport:
    def test_empty_report_is_ok(self):
        report = ValidationReport(subject="s")
        assert report.ok
        assert report.errors == []
        assert "PASS" in report.render()

    def test_error_findings_fail(self):
        report = ValidationReport(subject="s")
        report.add("code-a", "first")
        assert not report.ok
        assert "FAIL" in report.render()

    def test_warnings_do_not_fail(self):
        report = ValidationReport(subject="s")
        report.add("code-w", "soft", severity=SEVERITY_WARNING)
        assert report.ok
        assert len(report.warnings) == 1

    def test_codes_first_seen_order_and_by_code(self):
        report = ValidationReport(subject="s")
        report.add("b", "1")
        report.add("a", "2")
        report.add("b", "3")
        assert report.codes() == ["b", "a"]
        assert len(report.by_code("b")) == 2

    def test_tick_and_extend_accumulate(self):
        first = ValidationReport(subject="a")
        first.tick(3)
        second = ValidationReport(subject="b")
        second.tick()
        second.add("x", "y")
        first.extend(second)
        assert first.checks_run == 4
        assert first.codes() == ["x"]

    def test_raise_if_failed_noop_when_ok(self):
        ValidationReport(subject="s").raise_if_failed()

    def test_raise_if_failed_default_exception(self):
        report = ValidationReport(subject="subj")
        report.add("bad-thing", "details here")
        with pytest.raises(ValidationError, match="bad-thing"):
            report.raise_if_failed()

    def test_raise_if_failed_custom_exception_and_truncation(self):
        report = ValidationReport(subject="subj")
        for i in range(8):
            report.add(f"code-{i}", f"message {i}")
        with pytest.raises(ResultRejectedError, match="and 3 more"):
            report.raise_if_failed(ResultRejectedError)

    def test_to_dict_shape(self):
        report = ValidationReport(subject="s")
        report.add("c", "m")
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "c"


def test_merge_reports_combines_sections():
    one = ValidationReport(subject="one")
    one.tick(2)
    two = ValidationReport(subject="two")
    two.add("z", "zz")
    merged = merge_reports("all", [one, two])
    assert merged.subject == "all"
    assert merged.checks_run == 2
    assert not merged.ok
