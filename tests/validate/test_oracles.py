"""Tests for the invariant oracles over results and profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.curves import MissRateCurve
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import TraceBuilder
from repro.runtime.errors import ResultRejectedError
from repro.validate.oracles import (
    RESULT_ORACLES,
    assert_valid_result,
    validate_profile,
    validate_result,
)


def make_result(**overrides) -> ExperimentResult:
    defaults = dict(
        experiment_id="figX",
        title="A test figure",
        curves=[
            MissRateCurve(
                capacities=np.array([64, 128, 256, 512]),
                miss_rates=np.array([0.5, 0.25, 0.1, 0.1]),
                metric="miss_rate",
                label="good",
            )
        ],
        comparisons=[
            SeriesComparison(
                quantity="knee", paper_value=1.0, measured_value=1.1
            )
        ],
    )
    defaults.update(overrides)
    return ExperimentResult(**defaults)


class TestResultOracles:
    def test_good_result_passes(self):
        report = validate_result(make_result())
        assert report.ok, report.render()
        assert report.checks_run >= len(RESULT_ORACLES)

    def test_nan_rates_flagged(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([0.5, np.nan]),
        )
        report = validate_result(make_result(curves=[curve]))
        assert "curve-not-finite" in report.codes()

    def test_negative_rates_flagged(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([0.5, -0.1]),
        )
        report = validate_result(make_result(curves=[curve]))
        assert "curve-negative" in report.codes()

    def test_rate_above_one_flagged_for_rate_metrics(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([1.5, 0.5]),
            metric="read_miss_rate",
        )
        report = validate_result(make_result(curves=[curve]))
        assert "rate-out-of-range" in report.codes()

    def test_misses_per_flop_may_exceed_one(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([3.5, 1.5]),
            metric="misses_per_flop",
        )
        report = validate_result(make_result(curves=[curve]))
        assert "rate-out-of-range" not in report.codes()

    def test_rising_curve_flagged_as_error(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128, 256]),
            miss_rates=np.array([0.5, 0.1, 0.4]),
        )
        report = validate_result(make_result(curves=[curve]))
        assert not report.ok
        assert [f.severity for f in report.by_code("curve-not-monotone")] == [
            "error"
        ]

    def test_marginal_rise_is_a_warning(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([0.5, 0.5 + 1e-8]),
        )
        report = validate_result(make_result(curves=[curve]))
        findings = report.by_code("curve-not-monotone")
        assert findings and findings[0].severity == "warning"
        assert report.ok

    def test_mutated_capacities_flagged(self):
        # __post_init__ guards construction; the oracle must also catch
        # in-place mutation after the fact.
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([0.5, 0.25]),
        )
        curve.capacities = np.array([128, 64])
        report = validate_result(make_result(curves=[curve]))
        assert "capacity-not-increasing" in report.codes()
        curve.capacities = np.array([0, 64])
        report = validate_result(make_result(curves=[curve]))
        assert "capacity-not-positive" in report.codes()

    def test_non_finite_comparison_flagged(self):
        comp = SeriesComparison(
            quantity="knee", paper_value=1.0, measured_value=float("inf")
        )
        report = validate_result(make_result(comparisons=[comp]))
        assert "comparison-not-finite" in report.codes()

    def test_assert_valid_result_raises_typed(self):
        curve = MissRateCurve(
            capacities=np.array([64, 128]),
            miss_rates=np.array([0.5, np.nan]),
        )
        with pytest.raises(ResultRejectedError, match="curve-not-finite"):
            assert_valid_result(make_result(curves=[curve]))

    def test_assert_valid_result_returns_report_when_ok(self):
        report = assert_valid_result(make_result())
        assert report.ok


class TestProfileOracles:
    def _trace(self):
        tb = TraceBuilder()
        for sweep in range(3):
            for block in range(20):
                tb.read(8 * block)
        return tb.build()

    def test_clean_profile_passes(self):
        trace = self._trace()
        profile = profile_trace(trace)
        report = validate_profile(profile, trace=trace)
        assert report.ok, report.render()
        # All the trace-tied identities actually ran.
        assert report.checks_run >= 5

    def test_cold_floor_mismatch_detected(self):
        trace = self._trace()
        profile = profile_trace(trace)
        profile.cold_misses += 1
        report = validate_profile(profile, trace=trace)
        assert "cold-floor-mismatch" in report.codes()
        assert "profile-total-mismatch" in report.codes()

    def test_corrupt_histogram_detected(self):
        trace = self._trace()
        profile = profile_trace(trace)
        profile.depth_histogram[0] = 7
        report = validate_profile(profile, trace=trace)
        assert "profile-depth-zero" in report.codes()

    def test_partial_profile_skips_trace_identities(self):
        trace = self._trace()
        profile = profile_trace(trace, warmup=10)
        report = validate_profile(profile, trace=trace)
        # Warmup profiles count fewer refs; the exact identities are
        # trace-total-gated, so the report must still pass.
        assert report.ok, report.render()
