"""Tests for the self-contained schema validator and artifact schemas."""

from __future__ import annotations

import pytest

from repro.validate.schemas import (
    ENVELOPE_SCHEMA,
    PAYLOAD_SCHEMAS,
    check_schema,
    schema_for,
)


class TestValidator:
    def test_type_match(self):
        assert check_schema("x", {"type": "string"}) == []
        assert check_schema(3, {"type": "integer"}) == []

    def test_type_mismatch_names_path(self):
        errors = check_schema({"a": "x"}, {
            "type": "object",
            "properties": {"a": {"type": "number"}},
        })
        assert errors and "$.a" in errors[0]

    def test_bool_is_not_an_integer(self):
        assert check_schema(True, {"type": "integer"})
        assert check_schema(True, {"type": "number"})
        assert check_schema(True, {"type": "boolean"}) == []

    def test_union_types(self):
        schema = {"type": ["number", "null"]}
        assert check_schema(None, schema) == []
        assert check_schema(1.5, schema) == []
        assert check_schema("no", schema)

    def test_enum(self):
        schema = {"type": "string", "enum": ["ok", "failed"]}
        assert check_schema("ok", schema) == []
        assert check_schema("meh", schema)

    def test_minimum(self):
        schema = {"type": "integer", "minimum": 1}
        assert check_schema(1, schema) == []
        assert check_schema(0, schema)

    def test_required(self):
        schema = {"type": "object", "required": ["a", "b"]}
        errors = check_schema({"a": 1}, schema)
        assert len(errors) == 1 and "'b'" in errors[0]

    def test_additional_properties_false(self):
        schema = {
            "type": "object",
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        assert check_schema({"a": 1}, schema) == []
        assert check_schema({"a": 1, "z": 2}, schema)

    def test_additional_properties_schema(self):
        schema = {
            "type": "object",
            "additionalProperties": {"type": "string"},
        }
        assert check_schema({"k": "v"}, schema) == []
        assert check_schema({"k": 7}, schema)

    def test_array_items_with_indexed_paths(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        errors = check_schema([1, "two", 3], schema)
        assert len(errors) == 1 and "[1]" in errors[0]

    def test_nested_recursion(self):
        schema = {
            "type": "object",
            "properties": {
                "rows": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["id"],
                    },
                }
            },
        }
        assert check_schema({"rows": [{"id": 1}, {}]}, schema)


class TestArtifactSchemas:
    def test_schema_for_known_kinds(self):
        for kind in PAYLOAD_SCHEMAS:
            assert schema_for(kind)["type"] == "object"

    def test_schema_for_unknown_kind(self):
        with pytest.raises(KeyError, match="choices"):
            schema_for("nope")

    def test_envelope_schema(self):
        good = {"format": 1, "sha256": "ab" * 32, "payload": {}}
        assert check_schema(good, ENVELOPE_SCHEMA) == []
        assert check_schema({"format": 1}, ENVELOPE_SCHEMA)

    def test_event_schema(self):
        good = {"seq": 1, "t_mono": 0.0, "t_wall": 1.0, "event": "start"}
        assert check_schema(good, schema_for("event")) == []
        bad = dict(good, seq=0)
        assert check_schema(bad, schema_for("event"))

    def test_outcome_schema_rejects_unknown_status(self):
        payload = {"experiment_id": "fig2", "status": "meh"}
        assert check_schema(payload, schema_for("outcome"))

    def test_curve_schema(self):
        good = {"capacities": [1, 2], "miss_rates": [0.5, 0.25]}
        assert check_schema(good, schema_for("result")["properties"]["curves"]["items"]) == []

    def test_real_engine_payloads_conform(self, tmp_path):
        """What the engine actually writes passes its own schemas."""
        from repro.experiments.runner import ExperimentResult
        from repro.runtime.engine import ExperimentOutcome

        result = ExperimentResult(experiment_id="x", title="t")
        outcome = ExperimentOutcome(
            experiment_id="x", status="ok", result=result, attempts=1
        )
        assert check_schema(outcome.to_dict(), schema_for("outcome")) == []
        assert check_schema(result.to_dict(), schema_for("result")) == []
