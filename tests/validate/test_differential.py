"""Differential cross-checks: Mattson profiler vs explicit simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.trace import Trace, TraceBuilder
from repro.validate.corpus import CORPUS, build_corpus, corpus_entry
from repro.validate.differential import (
    cross_check_corpus,
    cross_check_trace,
    default_check_capacities,
)


def sweep_trace(blocks: int = 20, sweeps: int = 3) -> Trace:
    tb = TraceBuilder()
    for _ in range(sweeps):
        for block in range(blocks):
            tb.read(8 * block)
    return tb.build()


class TestCrossCheckTrace:
    def test_clean_sweep_trace_passes(self):
        report = cross_check_trace(sweep_trace(), subject="sweep")
        assert report.ok, report.render()

    def test_random_trace_passes(self):
        rng = np.random.default_rng(42)
        tb = TraceBuilder()
        for addr in rng.integers(0, 512, size=2000):
            if rng.random() < 0.3:
                tb.write(int(addr) * 8)
            else:
                tb.read(int(addr) * 8)
        report = cross_check_trace(tb.build(), subject="random")
        assert report.ok, report.render()

    def test_capacities_default_spans_footprint(self):
        trace = sweep_trace(blocks=20)
        capacities = default_check_capacities(trace, block_size=8)
        assert min(capacities) == 8
        # At least one point past the 20-block footprint.
        assert max(capacities) >= 20 * 8

    def test_mismatch_is_reported(self, monkeypatch):
        """Sabotage the explicit simulator and verify the harness sees it."""
        from repro.mem import cache as cache_mod
        from repro.validate import differential

        class FakeStats:
            def __init__(self, misses):
                self.misses = misses

        class OffByOne(cache_mod.FullyAssociativeCache):
            def run(self, trace):
                return FakeStats(super().run(trace).misses + 1)

        monkeypatch.setattr(
            differential, "FullyAssociativeCache", OffByOne
        )
        report = cross_check_trace(sweep_trace(), subject="sabotaged")
        assert "differential-mismatch" in report.codes()

    @pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
    def test_every_corpus_app_agrees_exactly(self, entry):
        """The headline acceptance check: profiler and simulator agree
        exactly on real traces from all five applications."""
        report = cross_check_trace(entry.build(), subject=entry.name)
        assert report.ok, report.render()


class TestCorpus:
    def test_corpus_has_all_five_apps(self):
        assert sorted(e.app for e in CORPUS) == [
            "barnes-hut",
            "cg",
            "fft",
            "lu",
            "volrend",
        ]

    def test_corpus_entry_lookup(self):
        assert corpus_entry("lu-n32-b8-p4").app == "lu"
        with pytest.raises(KeyError, match="known"):
            corpus_entry("missing")

    def test_build_corpus_is_deterministic(self):
        first = build_corpus()
        second = build_corpus()
        for name, trace in first.items():
            assert np.array_equal(trace.addrs, second[name].addrs), name
            assert np.array_equal(trace.kinds, second[name].kinds), name

    def test_cross_check_corpus_subset(self):
        report = cross_check_corpus(names=["cg-n16-p4"])
        assert report.ok, report.render()
        assert report.checks_run > 0


class TestStreamedDifferential:
    """Streamed simulators must agree EXACTLY with in-memory ones."""

    def test_random_trace_exact_agreement(self, tmp_path):
        from repro.validate.differential import cross_check_streamed
        from tests.conftest import random_trace

        report = cross_check_streamed(
            random_trace(3000, 400, seed=13), tmp_path, subject="random"
        )
        assert report.ok, report.render()
        assert report.checks_run > 5

    def test_sabotaged_shard_order_detected(self, tmp_path, monkeypatch):
        """Swap two shards during chunk iteration: the oracle notices."""
        from repro.mem.shards import StreamingTrace
        from repro.validate.differential import cross_check_streamed
        from tests.conftest import random_trace

        original = StreamingTrace.iter_chunks

        def swapped(self, start_shard=0):
            chunks = list(original(self, start_shard))
            if len(chunks) >= 2:
                chunks[0], chunks[1] = chunks[1], chunks[0]
            return iter(chunks)

        monkeypatch.setattr(StreamingTrace, "iter_chunks", swapped)
        report = cross_check_streamed(
            random_trace(2000, 300, seed=14), tmp_path, subject="sabotaged"
        )
        assert "streaming-mismatch" in report.codes()

    def test_corpus_entry_streams_exactly(self, tmp_path):
        """One real application trace through the streamed oracle; the
        full five-app sweep runs in CI via ``cross_check_corpus``."""
        entry = corpus_entry("cg-n16-p4")
        from repro.validate.differential import cross_check_streamed

        report = cross_check_streamed(
            entry.build(), tmp_path, subject=entry.name
        )
        assert report.ok, report.render()

    def test_cross_check_corpus_streamed_subset(self, tmp_path):
        report = cross_check_corpus(
            names=["lu-n32-b8-p4"], streamed_work_dir=tmp_path
        )
        assert report.ok, report.render()


class TestKernelTier:
    """The kernel_tier= parameter pins the simulation kernel tier."""

    @pytest.fixture(autouse=True)
    def _clean_kernels(self):
        from repro.mem import kernels

        kernels.clear_kernels(clear_env=False)
        kernels.reset_kernel_state()
        yield
        kernels.clear_kernels(clear_env=False)
        kernels.reset_kernel_state()

    def test_vector_tier_engages_and_passes(self):
        from repro.mem import kernels

        kernels.configure_kernels(min_refs=0, export_env=False)
        from tests.conftest import random_trace

        trace = random_trace(2_000, 64, seed=9)
        report = cross_check_trace(trace, kernel_tier="vector")
        assert report.ok
        assert any(
            kernels.kernel_state(kind)["chunks"] > 0
            for kind in kernels.KERNEL_KINDS
        )

    def test_oracle_tier_never_engages(self):
        from repro.mem import kernels

        kernels.configure_kernels(min_refs=0, export_env=False)
        from tests.conftest import random_trace

        trace = random_trace(2_000, 64, seed=9)
        report = cross_check_trace(trace, kernel_tier="oracle")
        assert report.ok
        assert all(
            kernels.kernel_state(kind)["chunks"] == 0
            for kind in kernels.KERNEL_KINDS
        )

    def test_ambient_config_restored_after_check(self):
        from repro.mem import kernels

        from tests.conftest import random_trace

        before = kernels.active_kernel_config().tier
        cross_check_trace(
            random_trace(500, 32, seed=1), kernel_tier="oracle"
        )
        assert kernels.active_kernel_config().tier == before

    def test_streamed_check_accepts_kernel_tier(self, tmp_path):
        from repro.validate.differential import cross_check_streamed
        from tests.conftest import random_trace

        trace = random_trace(1_000, 32, seed=4)
        report = cross_check_streamed(
            trace, tmp_path, kernel_tier="vector", subject="tiered"
        )
        assert report.ok
