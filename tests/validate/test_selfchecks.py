"""Tests for the per-application mathematical self-checks."""

from __future__ import annotations

import pytest

from repro.runtime.errors import SelfCheckError
from repro.validate.selfchecks import (
    SELF_CHECKS,
    assert_self_check,
    check_barnes_hut,
    check_cg,
    check_fft,
    check_lu,
    check_volrend,
    run_self_check,
)


class TestIndividualChecks:
    """Every kernel passes its own ground-truth property at small sizes."""

    def test_lu_reconstructs(self):
        report = check_lu(seed=0, n=16, block_size=4)
        assert report.ok, report.render()
        assert report.checks_run == 2

    def test_cg_converges(self):
        report = check_cg(seed=0, n=8)
        assert report.ok, report.render()

    def test_fft_inverts_and_matches_numpy(self):
        report = check_fft(seed=0, n=64)
        assert report.ok, report.render()
        # Reference, round-trip, and four-step comparisons all ran.
        assert report.checks_run == 3

    def test_barnes_hut_conserves_momentum(self):
        report = check_barnes_hut(seed=0, n=24)
        assert report.ok, report.render()

    def test_volrend_octree_bounds_and_image_range(self):
        report = check_volrend(seed=0, n=8)
        assert report.ok, report.render()

    def test_seed_varies_but_still_passes(self):
        for seed in (1, 2):
            assert check_lu(seed=seed, n=16).ok
            assert check_fft(seed=seed, n=64).ok


class TestRegistry:
    def test_registry_covers_all_five_apps(self):
        assert sorted(SELF_CHECKS) == [
            "barnes-hut",
            "cg",
            "fft",
            "lu",
            "volrend",
        ]

    def test_run_self_check_dispatches(self):
        report = run_self_check("cg", seed=0, n=8)
        assert report.ok

    def test_run_self_check_unknown_app(self):
        with pytest.raises(KeyError, match="known"):
            run_self_check("sparse-mvm")

    def test_assert_self_check_returns_passing_report(self):
        report = assert_self_check("lu", seed=0, n=16)
        assert report.ok and report.checks_run == 2

    def test_assert_self_check_raises_typed(self, monkeypatch):
        from repro.validate import selfchecks
        from repro.validate.report import ValidationReport

        def broken(seed=0, **params):
            report = ValidationReport(subject="broken")
            report.add("lu-residual", "synthetic failure")
            return report

        monkeypatch.setitem(selfchecks.SELF_CHECKS, "lu", broken)
        with pytest.raises(SelfCheckError, match="lu-residual"):
            assert_self_check("lu")


class TestGeneratorHooks:
    """Every app trace generator exposes a working ``self_check()``."""

    def test_lu_generator(self):
        from repro.apps.lu.trace import LUTraceGenerator

        report = LUTraceGenerator(16, 4, 4, seed=0).self_check()
        assert report.ok

    def test_cg_generator(self):
        from repro.apps.cg.trace import CGTraceGenerator

        report = CGTraceGenerator(8, 4, seed=0).self_check()
        assert report.ok

    def test_fft_generator(self):
        from repro.apps.fft.trace import FFTTraceGenerator

        report = FFTTraceGenerator(64, 2, internal_radix=8, seed=0).self_check()
        assert report.ok

    def test_barnes_hut_generator(self):
        from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator

        generator = BarnesHutTraceGenerator.from_plummer(
            24, seed=0, num_processors=2
        )
        assert generator.self_check().ok

    def test_volrend_generator(self):
        from repro.apps.volrend.trace import VolrendTraceGenerator

        generator = VolrendTraceGenerator.from_synthetic_head(
            8, seed=0, num_processors=4
        )
        assert generator.self_check().ok
