"""Tests for the deterministic artifact-reader fuzzer."""

from __future__ import annotations

import pytest

from repro.validate.fuzz import (
    ACCEPTED_DIVERGENT,
    MUTATIONS,
    REJECTED,
    UNEXPECTED_ERROR,
    FuzzCase,
    FuzzReport,
    run_fuzz,
)


class TestCampaign:
    def test_smoke_campaign_holds_the_contract(self):
        report = run_fuzz(cases=120, seed=0)
        assert report.ok, report.render()
        assert len(report.cases) == 120
        # Corrupting readers must actually reject things, not just
        # accept everything.
        assert report.counts.get(REJECTED, 0) > 0

    def test_campaign_is_a_pure_function_of_seed(self):
        first = run_fuzz(cases=40, seed=7)
        second = run_fuzz(cases=40, seed=7)
        assert first.cases == second.cases

    def test_different_seeds_differ(self):
        a = run_fuzz(cases=40, seed=1)
        b = run_fuzz(cases=40, seed=2)
        assert a.cases != b.cases

    def test_all_targets_exercised(self):
        report = run_fuzz(cases=120, seed=0)
        assert {c.target for c in report.cases} == {
            "trace",
            "checkpoint",
            "events",
        }
        assert {c.mutation for c in report.cases} == set(MUTATIONS)

    def test_explicit_work_dir_is_not_deleted(self, tmp_path):
        work = tmp_path / "scratch"
        report = run_fuzz(cases=10, seed=0, work_dir=work)
        assert report.ok
        assert work.is_dir()


class TestReportSemantics:
    def _case(self, classification, target="trace", index=0):
        return FuzzCase(
            index=index,
            target=target,
            mutation="bitflip",
            classification=classification,
            detail="d",
        )

    def test_unexpected_error_is_a_problem(self):
        report = FuzzReport(seed=0, cases=[self._case(UNEXPECTED_ERROR)])
        assert not report.ok
        validation = report.to_validation_report()
        assert validation.codes() == ["fuzz-unexpected-error"]

    def test_divergence_on_checksummed_target_is_a_problem(self):
        report = FuzzReport(
            seed=0, cases=[self._case(ACCEPTED_DIVERGENT, target="trace")]
        )
        assert not report.ok
        assert report.to_validation_report().codes() == [
            "fuzz-silent-corruption"
        ]

    def test_divergence_on_events_is_tolerated(self):
        report = FuzzReport(
            seed=0, cases=[self._case(ACCEPTED_DIVERGENT, target="events")]
        )
        assert report.ok
        assert report.to_validation_report().ok

    def test_render_mentions_verdict(self):
        report = FuzzReport(seed=3, cases=[self._case(REJECTED)])
        text = report.render()
        assert "PASS" in text and "seed 3" in text
        report.cases.append(self._case(UNEXPECTED_ERROR, index=1))
        assert "FAIL" in report.render()
