"""Property-based tests backing the differential harness.

The existing equivalence tests compare the Mattson profiler against
:class:`~repro.mem.cache.FullyAssociativeCache` — but both of those
lean on :class:`~repro.mem.lru.LRUList`, so a bug there could cancel
out.  The reference model here is an intentionally naive plain-Python
list: O(n) per access, shares nothing with the instruments under test.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import FullyAssociativeCache
from repro.mem.lru import LRUList
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import Trace


def naive_lru_misses(blocks, capacity_blocks):
    """Fully associative LRU via a plain list; front = MRU."""
    stack = []
    misses = 0
    for block in blocks:
        if block in stack:
            stack.remove(block)
        else:
            misses += 1
            if capacity_blocks > 0 and len(stack) >= capacity_blocks:
                stack.pop()
        if capacity_blocks > 0:
            stack.insert(0, block)
    return misses


addresses = st.lists(st.integers(min_value=0, max_value=40 * 8), max_size=120)
capacities = st.integers(min_value=0, max_value=48)


class TestProfilerAgainstNaiveModel:
    @settings(max_examples=60, deadline=None)
    @given(addrs=addresses, capacity=capacities)
    def test_profiler_matches_naive_lru(self, addrs, capacity):
        trace = Trace.from_addresses(addrs)
        profile = profile_trace(trace, block_size=8)
        blocks = [a // 8 for a in addrs]
        assert profile.misses_at(capacity) == naive_lru_misses(
            blocks, capacity
        )

    @settings(max_examples=60, deadline=None)
    @given(addrs=addresses, capacity=st.integers(min_value=1, max_value=48))
    def test_explicit_cache_matches_naive_lru(self, addrs, capacity):
        trace = Trace.from_addresses(addrs)
        cache = FullyAssociativeCache(capacity * 8, block_size=8)
        blocks = [a // 8 for a in addrs]
        assert cache.run(trace).misses == naive_lru_misses(blocks, capacity)

    @settings(max_examples=40, deadline=None)
    @given(addrs=addresses)
    def test_misses_monotone_in_capacity(self, addrs):
        profile = profile_trace(Trace.from_addresses(addrs), block_size=8)
        footprint = len({a // 8 for a in addrs})
        previous = None
        for capacity in range(footprint + 2):
            misses = profile.misses_at(capacity)
            assert misses >= footprint or capacity == 0 or misses >= 0
            if previous is not None:
                assert misses <= previous
            previous = misses
        assert profile.misses_at(footprint) == footprint or not addrs


class TestLRUListInvariants:
    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["touch", "evict", "remove"]),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=200,
        )
    )
    def test_structural_invariants_under_churn(self, ops):
        lru = LRUList()
        model = []  # front = MRU; the same naive shadow model
        for op, key in ops:
            if op == "touch":
                hit = lru.touch(key)
                assert hit == (key in model)
                if key in model:
                    model.remove(key)
                model.insert(0, key)
            elif op == "evict":
                if model:
                    assert lru.evict_lru() == model.pop()
                else:
                    try:
                        lru.evict_lru()
                        raise AssertionError("evict on empty must raise")
                    except KeyError:
                        pass
            elif op == "remove":
                if key in model:
                    lru.remove(key)
                    model.remove(key)
            lru.check_invariants()
            assert list(lru.keys_mru_to_lru()) == model
            assert len(lru) == len(model)
        if model:
            assert lru.mru_key() == model[0]
            assert lru.lru_key() == model[-1]
