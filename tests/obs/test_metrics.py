"""Tests for the process-local metrics registry."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Histogram,
    LoopSampler,
    MetricsRegistry,
    render_prometheus,
)
from repro.runtime.budget import CHECK_INTERVAL


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3.0)
        g.set(7.0)
        g.add(1.0)
        assert reg.snapshot()["gauges"]["g"] == 8.0

    def test_histogram_bucket_placement(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            h.observe(value)
        # <=1.0 twice (0.5 and the boundary value), <=10.0 once, +Inf once.
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(106.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_histogram_merge_rejects_different_boundaries(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            h.merge({"buckets": [1.0, 3.0], "counts": [0, 0, 0], "sum": 0, "count": 0})


class TestRegistry:
    def test_snapshot_merge_roundtrip(self):
        a = MetricsRegistry()
        a.counter("c").inc(5)
        a.gauge("g").set(2.5)
        a.histogram("h", (1.0,)).observe(0.5)

        b = MetricsRegistry()
        b.counter("c").inc(1)
        b.merge_snapshot(a.snapshot())
        snap = b.snapshot()
        assert snap["counters"]["c"] == 6
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("mem.fullassoc.refs").inc(100)
        reg.gauge("engine.jobs").set(4)
        h = reg.histogram("runtime.fsync_seconds", (0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert "# TYPE repro_mem_fullassoc_refs counter" in text
        assert "repro_mem_fullassoc_refs 100" in text
        assert "# TYPE repro_engine_jobs gauge" in text
        # Buckets are cumulative, with an explicit +Inf slot.
        assert 'repro_runtime_fsync_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_runtime_fsync_seconds_bucket{le="1"} 2' in text
        assert 'repro_runtime_fsync_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_runtime_fsync_seconds_count 3" in text

    def test_prometheus_empty_snapshot_is_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""


class TestEnableGate:
    def test_disabled_helpers_are_noops(self):
        metrics.inc("c")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 0.5)
        snap = metrics.get_registry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_helpers_record(self):
        metrics.set_obs_enabled(True)
        metrics.inc("c", 3)
        metrics.set_gauge("g", 1.5)
        with metrics.timed("t"):
            pass
        snap = metrics.get_registry().snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["t"]["count"] == 1

    def test_env_overrides_programmatic_switch_both_ways(self, monkeypatch):
        metrics.set_obs_enabled(False)
        monkeypatch.setenv(metrics.OBS_ENV, "1")
        assert metrics.obs_enabled()
        metrics.set_obs_enabled(True)
        monkeypatch.setenv(metrics.OBS_ENV, "0")
        assert not metrics.obs_enabled()

    def test_sample_interval_env_override(self, monkeypatch):
        monkeypatch.setenv(metrics.SAMPLE_ENV, "4096")
        assert metrics.sample_interval() == 4096
        monkeypatch.setenv(metrics.SAMPLE_ENV, "not-a-number")
        assert metrics.sample_interval() == metrics.DEFAULT_SAMPLE_INTERVAL


class TestLoopSampler:
    def test_hot_loop_sampler_none_when_disabled(self):
        assert metrics.hot_loop_sampler("mem.x") is None

    def test_stride_rounds_up_to_check_interval_multiple(self):
        metrics.set_obs_enabled(True)
        sampler = LoopSampler("mem.x", every=CHECK_INTERVAL + 1)
        assert sampler.every % CHECK_INTERVAL == 0
        assert sampler.every >= CHECK_INTERVAL + 1

    def test_finish_records_totals_and_throughput(self):
        metrics.set_obs_enabled(True)
        ticks = iter([0.0, 2.0])
        sampler = LoopSampler("mem.x", every=CHECK_INTERVAL, clock=lambda: next(ticks))
        for i in range(0, 4 * CHECK_INTERVAL, CHECK_INTERVAL):
            sampler.tick(i)
        sampler.finish(refs=1000, misses=10)
        snap = metrics.get_registry().snapshot()
        assert snap["counters"]["mem.x.refs"] == 1000
        assert snap["counters"]["mem.x.misses"] == 10
        assert snap["counters"]["mem.x.loops"] == 1
        assert snap["counters"]["mem.x.samples"] == 4
        assert snap["gauges"]["mem.x.last_refs_per_second"] == pytest.approx(500.0)

    def test_cache_hot_loop_feeds_registry(self):
        import numpy as np

        from repro.mem.cache import FullyAssociativeCache
        from repro.mem.trace import Trace

        metrics.set_obs_enabled(True)
        addrs = np.arange(2048, dtype=np.int64) * 8
        trace = Trace(addrs, np.zeros(2048, dtype=np.uint8))
        FullyAssociativeCache(1024 * 8).run(trace)
        snap = metrics.get_registry().snapshot()
        assert snap["counters"]["mem.fullassoc.refs"] == 2048
        assert snap["counters"]["mem.fullassoc.loops"] == 1
