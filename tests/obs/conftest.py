"""Shared isolation for the observability tests.

Metrics, tracing, and console all keep deliberate process-global state
(one registry, one ambient tracer, one console).  Every test in this
package starts and ends with that state reset and the controlling
environment variables unset, so tests cannot leak samples, spans, or
log levels into each other — or into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.obs import console
from repro.obs import metrics as obs_metrics
from repro.obs import timeline as obs_timeline
from repro.obs import tracing as obs_tracing


@pytest.fixture(autouse=True)
def _obs_isolation(monkeypatch):
    monkeypatch.delenv(obs_metrics.OBS_ENV, raising=False)
    monkeypatch.delenv(obs_metrics.SAMPLE_ENV, raising=False)
    monkeypatch.delenv(console.LOG_LEVEL_ENV, raising=False)
    monkeypatch.delenv(obs_timeline.TIMELINE_ENV, raising=False)
    monkeypatch.delenv(obs_timeline.TIMELINE_CHUNK_ENV, raising=False)
    obs_metrics.set_obs_enabled(False)
    obs_metrics.get_registry().reset()
    obs_tracing.shutdown()
    obs_timeline.configure_timeline(None)
    console.set_level(console.DEFAULT_LEVEL)
    yield
    obs_tracing.shutdown()
    obs_timeline.configure_timeline(None)
    obs_metrics.set_obs_enabled(False)
    obs_metrics.get_registry().reset()
    console.set_level(console.DEFAULT_LEVEL)
