"""Tests for the leveled console logger."""

from __future__ import annotations

from repro.obs import console
from repro.obs.console import Console


class TestLevels:
    def test_info_goes_to_stdout(self, capsys):
        console.info("progress line")
        captured = capsys.readouterr()
        assert captured.out == "progress line\n"
        assert captured.err == ""

    def test_warning_and_error_go_to_stderr(self, capsys):
        console.warning("careful")
        console.error("broken")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "careful\nbroken\n"

    def test_debug_hidden_at_default_level(self, capsys):
        console.debug("noise")
        assert capsys.readouterr().out == ""

    def test_debug_visible_at_debug_level(self, capsys):
        console.set_level("debug")
        console.debug("noise")
        assert capsys.readouterr().out == "noise\n"


class TestQuiet:
    def test_quiet_suppresses_progress_not_warnings(self, capsys):
        console.set_quiet(True)
        console.info("progress")
        console.warning("still visible")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "still visible\n"

    def test_unquiet_restores_env_level(self, capsys, monkeypatch):
        monkeypatch.setenv(console.LOG_LEVEL_ENV, "debug")
        console.set_quiet(True)
        console.set_quiet(False)
        console.debug("back on")
        assert capsys.readouterr().out == "back on\n"


class TestEnvironment:
    def test_env_level_honored_at_construction(self, monkeypatch):
        monkeypatch.setenv(console.LOG_LEVEL_ENV, "warning")
        fresh = Console()
        assert not fresh.is_enabled("info")
        assert fresh.is_enabled("warning")

    def test_unknown_level_falls_back_to_info(self):
        fresh = Console(level="noise-level")
        assert fresh.is_enabled("info")
        assert not fresh.is_enabled("debug")
