"""Tests for read-only campaign status reconstruction.

Run directories are produced by the real engine (in-process backend,
fake clocks) so the artifacts carry exactly what production campaigns
write; corruption cases reuse the byte mutators from the validate
fuzzer rather than inventing a second damage model.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.obs.metrics import METRICS_FORMAT
from repro.obs.status import (
    STATE_FAILED,
    STATE_IN_DOUBT,
    STATE_OK,
    load_status,
    render_status,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import CampaignEngine, EngineConfig
from repro.runtime.events import EventLog
from repro.runtime.journal import Journal
from repro.runtime.lease import LEASE_FILENAME, LeaseState
from repro.validate.fuzz import MUTATIONS

from tests.runtime.conftest import FakeClock, FakeExperiment, SleepRecorder


def run_campaign(run_dir, experiments, journal=True, **config_kwargs):
    """Run a real (in-process) campaign into ``run_dir``; returns store."""
    registry = {exp.experiment_id: (exp, {"n": 100}) for exp in experiments}
    overrides = {exp.experiment_id: {"n": 10} for exp in experiments}
    config_kwargs.setdefault("jobs", 0)
    config = EngineConfig(
        sleep=SleepRecorder(), clock=FakeClock(), **config_kwargs
    )
    engine = CampaignEngine(registry, quick_overrides=overrides, config=config)
    store = CheckpointStore(run_dir)
    engine.store = store
    engine.event_log = EventLog(store.events_path)
    if journal:
        engine.journal = Journal(run_dir / "journal.wal", fsync=False)
    try:
        engine.run()
    finally:
        engine.event_log.close()
        if engine.journal is not None:
            engine.journal.close()
    return store


class TestCompletedCampaign:
    def test_all_ok(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a"), FakeExperiment("b")])
        status = load_status(run_dir)
        assert status.state == "complete"
        assert status.requested == ["a", "b"]
        assert {e.state for e in status.experiments.values()} == {STATE_OK}
        assert all(e.attempts == 1 for e in status.experiments.values())
        assert status.events_seen > 0
        assert status.journal_records > 0
        assert status.eta_seconds is None  # nothing remaining, not running

    def test_render_mentions_verdict_and_experiments(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        text = render_status(load_status(run_dir))
        assert "state: complete" in text
        assert "1 requested | 1 ok" in text
        assert " a " in text


class TestFailuresAndRetries:
    def test_retry_counts_and_failure_category(self, tmp_path):
        from repro.runtime.errors import SimulationError

        run_dir = tmp_path / "run"
        run_campaign(
            run_dir,
            [
                FakeExperiment("flaky", fail_times=1, error=SimulationError("x")),
                FakeExperiment(
                    "doomed", fail_times=99, error=SimulationError("dead")
                ),
            ],
            max_attempts=2,
        )
        status = load_status(run_dir)
        flaky = status.experiments["flaky"]
        assert flaky.state == "degraded"  # healed by the degraded retry
        assert flaky.retries == 1
        assert flaky.failed_attempts == 1
        doomed = status.experiments["doomed"]
        assert doomed.state == STATE_FAILED
        assert doomed.failed_attempts == 2
        assert doomed.last_failure == "simulation"

    def test_interrupted_campaign(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                run_dir,
                [
                    FakeExperiment("done"),
                    FakeExperiment("cut", fail_times=99, error=KeyboardInterrupt()),
                ],
            )
        status = load_status(run_dir)
        assert status.state == "interrupted"
        assert status.experiments["done"].state == STATE_OK
        # The interrupted experiment never finished and nobody is alive.
        assert status.experiments["cut"].state == STATE_IN_DOUBT

    def test_resumed_campaign_flags_resumed(self, tmp_path):
        from repro.runtime.errors import SimulationError

        run_dir = tmp_path / "run"
        run_campaign(
            run_dir,
            [
                FakeExperiment("a"),
                FakeExperiment("b", fail_times=99, error=SimulationError("x")),
            ],
            max_attempts=1,
        )
        run_campaign(run_dir, [FakeExperiment("a"), FakeExperiment("b")])
        status = load_status(run_dir)
        assert status.state == "complete"
        assert status.experiments["a"].resumed
        assert status.experiments["a"].state == STATE_OK
        assert status.experiments["b"].state == STATE_OK
        assert "(resumed)" in render_status(status)


class TestLiveness:
    def _lease(self, run_dir, heartbeat_wall):
        state = LeaseState(
            pid=os.getpid(),
            token=3,
            acquired_wall=heartbeat_wall,
            heartbeat_wall=heartbeat_wall,
            hostname="testhost",
        )
        (run_dir / LEASE_FILENAME).write_text(state.to_json())

    def test_live_lease_means_running(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        now = 1_700_000_000.0
        self._lease(run_dir, heartbeat_wall=now - 1.0)
        status = load_status(run_dir, now=now)
        assert status.state == "running"
        assert status.supervisor["live"] is True
        assert status.supervisor["pid"] == os.getpid()

    def test_stale_lease_does_not_claim_running(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        now = 1_700_000_000.0
        self._lease(run_dir, heartbeat_wall=now - 3600.0)
        status = load_status(run_dir, now=now)
        assert status.state == "complete"
        assert status.supervisor["live"] is False


class TestThroughput:
    def test_metrics_snapshot_feeds_refs_and_rate(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "metrics.json").write_text(
            json.dumps(
                {
                    "format": METRICS_FORMAT,
                    "written_wall": 1.0,
                    "trace_id": "cafe0123",
                    "campaign": {
                        "counters": {
                            "mem.fullassoc.refs": 4000,
                            "mem.setassoc.refs": 1000,
                        },
                        "gauges": {"mem.fullassoc.last_refs_per_second": 2e6},
                        "histograms": {},
                    },
                    "attempts": {},
                }
            )
        )
        status = load_status(run_dir)
        assert status.refs_simulated == 5000
        assert status.refs_per_second == 2e6
        assert status.trace_id == "cafe0123"
        text = render_status(status)
        assert "5,000 refs simulated" in text
        assert "trace: cafe0123" in text

    def test_damaged_metrics_degrades_to_none(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "metrics.json").write_text('{"format": ')
        status = load_status(run_dir)
        assert status.refs_simulated is None
        assert status.refs_per_second is None

    def test_stream_gauges_render_shard_progress(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "metrics.json").write_text(
            json.dumps(
                {
                    "format": METRICS_FORMAT,
                    "written_wall": 1.0,
                    "campaign": {
                        "counters": {},
                        "gauges": {
                            "mem.stream.shards_done": 3,
                            "mem.stream.shards_total": 7,
                        },
                        "histograms": {},
                    },
                    "attempts": {},
                }
            )
        )
        status = load_status(run_dir)
        assert status.stream_shards_done == 3
        assert status.stream_shards_total == 7
        assert "streaming: shard 3/7" in render_status(status)
        assert status.to_dict()["stream_shards_done"] == 3

    def test_unstreamed_campaign_has_no_shard_line(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        status = load_status(run_dir)
        assert status.stream_shards_done is None
        assert "streaming:" not in render_status(status)


class TestDamageTolerance:
    """Status must never raise on a damaged run directory."""

    def test_empty_directory(self, tmp_path):
        status = load_status(tmp_path)
        assert status.state == "empty"
        render_status(status)

    def test_missing_directory(self, tmp_path):
        status = load_status(tmp_path / "never-made")
        assert status.state == "empty"

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    @pytest.mark.parametrize("victim", ["events.jsonl", "spans.jsonl", "journal.wal"])
    def test_mutated_artifacts_never_raise(self, tmp_path, mutation, victim):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a"), FakeExperiment("b")])
        (run_dir / "spans.jsonl").write_text(
            json.dumps(
                {
                    "name": "campaign.run",
                    "trace_id": "t",
                    "span_id": "s",
                    "t_wall": 1.0,
                    "dur_s": 2.0,
                    "status": "ok",
                    "pid": 1,
                }
            )
            + "\n"
        )
        target = run_dir / victim
        rng = np.random.default_rng(7)
        target.write_bytes(MUTATIONS[mutation](target.read_bytes(), rng))
        status = load_status(run_dir)
        render_status(status)
        # The untouched artifacts still carry the story.
        if victim != "events.jsonl" or mutation not in ("empty", "truncate"):
            assert status.requested == ["a", "b"]

    def test_torn_event_tail_is_skipped(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        with open(run_dir / "events.jsonl", "a") as fh:
            fh.write('{"seq": 999, "event": "torn')
        status = load_status(run_dir)
        assert status.state == "complete"
        assert status.experiments["a"].state == STATE_OK


class TestDispatchFabricStatus:
    """Per-node health (nodes.json) and breaker transition history."""

    def nodes_payload(self):
        return {
            "nodes": {
                "node-0": {
                    "pid": 100,
                    "token": 1,
                    "alive": True,
                    "inflight": 2,
                    "deaths": 0,
                    "last_heartbeat_wall": 1000.0,
                    "breaker": "closed",
                },
                "node-1": {
                    "pid": 200,
                    "token": 3,
                    "alive": False,
                    "inflight": 0,
                    "deaths": 2,
                    "last_heartbeat_wall": 990.0,
                    "breaker": "open",
                },
            },
            "live": 1,
            "total": 2,
            "written_wall": 1001.0,
        }

    def test_nodes_snapshot_surfaces_in_status(self, tmp_path):
        run_campaign(tmp_path, [FakeExperiment("a")])
        (tmp_path / "nodes.json").write_text(json.dumps(self.nodes_payload()))
        status = load_status(tmp_path)
        assert status.nodes is not None
        assert status.nodes["live"] == 1
        text = render_status(status)
        assert "nodes: 1/2 live" in text
        assert "node-0" in text and "closed" in text
        assert "dead" in text and "open" in text

    def test_no_fabric_means_no_node_section(self, tmp_path):
        run_campaign(tmp_path, [FakeExperiment("a")])
        status = load_status(tmp_path)
        assert status.nodes is None
        assert "nodes:" not in render_status(status)

    def test_damaged_nodes_snapshot_degrades_to_none(self, tmp_path):
        run_campaign(tmp_path, [FakeExperiment("a")])
        (tmp_path / "nodes.json").write_text("{half a snapsho")
        status = load_status(tmp_path)  # must not raise
        assert status.nodes is None

    def test_breaker_transitions_come_from_events(self, tmp_path):
        run_campaign(tmp_path, [FakeExperiment("a")])
        with EventLog(tmp_path / "events.jsonl", fsync=False) as log:
            log.emit(
                "breaker-transition",
                breaker="node:node-0",
                node_id="node-0",
                from_state="closed",
                to_state="open",
                t_wall=1000.0,
            )
            log.emit(
                "breaker-transition",
                breaker="node:node-0",
                node_id="node-0",
                from_state="open",
                to_state="half-open",
                t_wall=1010.0,
            )
        status = load_status(tmp_path)
        assert [
            (t["from_state"], t["to_state"])
            for t in status.breaker_transitions
        ] == [("closed", "open"), ("open", "half-open")]
        text = render_status(status)
        assert "breaker transitions:" in text
        assert "node:node-0: closed -> open" in text
        assert "open -> half-open" in text

    def test_transition_history_is_bounded(self, tmp_path):
        from repro.obs.status import BREAKER_HISTORY_LIMIT

        run_campaign(tmp_path, [FakeExperiment("a")])
        with EventLog(tmp_path / "events.jsonl", fsync=False) as log:
            for index in range(BREAKER_HISTORY_LIMIT + 7):
                log.emit(
                    "breaker-transition",
                    breaker="node:node-0",
                    from_state="closed",
                    to_state="open",
                    t_wall=float(index),
                )
        status = load_status(tmp_path)
        assert len(status.breaker_transitions) == BREAKER_HISTORY_LIMIT
        # The *most recent* entries survive.
        assert status.breaker_transitions[-1]["at_wall"] == float(
            BREAKER_HISTORY_LIMIT + 6
        )

    def test_service_rollup_replays_wal_transitions_and_nodes(self, tmp_path):
        from repro.obs.status import load_service_status, render_service_status

        root = tmp_path / "root"
        root.mkdir()
        with Journal(root / "service.wal", fsync=False) as journal:
            journal.append(
                "breaker-transition",
                breaker="service",
                from_state="closed",
                to_state="open",
                at_wall=500.0,
            )
        (root / "nodes.json").write_text(json.dumps(self.nodes_payload()))
        rollup = load_service_status(root)
        assert rollup["breaker_transitions"] == [
            {
                "breaker": "service",
                "from_state": "closed",
                "to_state": "open",
                "at_wall": 500.0,
            }
        ]
        assert rollup["nodes"]["live"] == 1
        text = render_service_status(rollup)
        assert "nodes: 1/2 live" in text
        assert "service: closed -> open" in text


class TestKernelTallies:
    def metrics_payload(self, counters, gauges):
        return json.dumps(
            {
                "format": METRICS_FORMAT,
                "written_wall": 1.0,
                "campaign": {
                    "counters": counters,
                    "gauges": gauges,
                    "histograms": {},
                },
                "attempts": {},
            }
        )

    def test_kernel_counters_render_one_line_per_kernel(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "metrics.json").write_text(
            self.metrics_payload(
                {
                    "mem.kernel.stackdist.chunks": 12,
                    "mem.kernel.stackdist.verified": 3,
                    "mem.kernel.stackdist.divergences": 1,
                    "mem.kernel.stackdist.fallback_chunks": 1,
                    "mem.kernel.fullassoc.chunks": 4,
                },
                {
                    "mem.kernel.stackdist.tier": 0.0,
                    "mem.kernel.fullassoc.tier": 1.0,
                },
            )
        )
        status = load_status(run_dir)
        assert status.kernels["stackdist"]["tier"] == "quarantined"
        assert status.kernels["stackdist"]["divergences"] == 1
        assert status.kernels["fullassoc"]["tier"] == "vector"
        text = render_status(status)
        assert (
            "kernel stackdist: quarantined (12 chunk(s), 3 verified, "
            "1 divergence(s), 1 fallback(s))" in text
        )
        assert "kernel fullassoc: vector" in text
        assert status.to_dict()["kernels"]["fullassoc"]["chunks"] == 4

    def test_divergence_counter_implies_quarantine_without_gauge(
        self, tmp_path
    ):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "metrics.json").write_text(
            self.metrics_payload(
                {"mem.kernel.setassoc.divergences": 2}, {}
            )
        )
        status = load_status(run_dir)
        assert status.kernels["setassoc"]["tier"] == "quarantined"

    def test_pre_kernel_run_dir_has_no_kernel_lines(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        status = load_status(run_dir)
        assert status.kernels is None
        assert "kernel " not in render_status(status)

    def test_report_renders_kernel_tiers(self, tmp_path):
        from repro.obs.report import render_report

        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "metrics.json").write_text(
            self.metrics_payload(
                {
                    "mem.kernel.stackdist.chunks": 2,
                    "mem.kernel.stackdist.divergences": 1,
                },
                {"mem.kernel.stackdist.tier": 0.0},
            )
        )
        text = render_report(run_dir)
        assert "Kernel `stackdist`: **quarantined** tier" in text
        assert "kernel fallbacks" in text
