"""Tests for tracing spans, the span writer, and format conversions."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    Span,
    SpanWriter,
    Tracer,
    from_chrome_trace,
    read_spans,
    to_chrome_trace,
)


def make_tracer(**kwargs):
    ticks = iter(float(i) for i in range(1000))
    kwargs.setdefault("clock", lambda: next(ticks))
    kwargs.setdefault("wall_clock", lambda: 1700000000.0)
    kwargs.setdefault("buffered", True)
    return Tracer(**kwargs)


class TestTracer:
    def test_nested_spans_link_parent_ids(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert {s.name for s in tracer.finished} == {"outer", "inner"}

    def test_exception_marks_span_error_and_propagates(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.status == "error"

    def test_root_parent_adopted_by_top_level_spans(self):
        tracer = make_tracer(root_parent="abc123")
        with tracer.span("top"):
            pass
        assert tracer.finished[0].parent_id == "abc123"

    def test_record_external_measurement(self):
        tracer = make_tracer()
        span = tracer.record("queue.wait", t_wall=5.0, dur_s=0.25, exp="a")
        assert span.dur_s == 0.25
        assert span.attrs == {"exp": "a"}
        assert tracer.finished == [span]

    def test_ingest_reparents_orphans_and_rewrites_trace_id(self):
        worker = make_tracer(trace_id="worker-trace")
        with worker.span("child"):
            pass
        shipped = [s.to_dict() for s in worker.drain()]
        supervisor = make_tracer(trace_id="campaign-trace")
        accepted = supervisor.ingest(shipped, parent_id="attempt-span")
        assert accepted == 1
        (span,) = supervisor.finished
        assert span.trace_id == "campaign-trace"
        assert span.parent_id == "attempt-span"

    def test_ingest_skips_garbage_records(self):
        tracer = make_tracer()
        assert tracer.ingest([{"nope": 1}, "not a dict"]) == 0  # type: ignore[list-item]

    def test_buffer_bounded(self):
        tracer = make_tracer()
        tracer.MAX_BUFFER = 2
        for i in range(4):
            tracer.record(f"s{i}", t_wall=0.0, dur_s=0.0)
        assert len(tracer.finished) == 2
        assert tracer.dropped == 2

    def test_drain_clears(self):
        tracer = make_tracer()
        tracer.record("s", t_wall=0.0, dur_s=0.0)
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []


class TestModuleApi:
    def test_span_is_noop_without_tracer(self):
        assert tracing.get_tracer() is None
        with tracing.span("anything") as span:
            assert span is None

    def test_traced_decorator_records_via_ambient_tracer(self):
        @tracing.traced("obs.test.fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # no tracer: plain call
        tracer = tracing.configure(buffered=True)
        assert fn(2) == 3
        assert [s.name for s in tracer.finished] == ["obs.test.fn"]

    def test_shutdown_closes_writer_and_clears_tracer(self, tmp_path):
        writer = SpanWriter(tmp_path / "spans.jsonl")
        tracing.configure(writer=writer)
        tracing.shutdown()
        assert tracing.get_tracer() is None
        assert writer._fd is None


class TestSpanWriter:
    def test_writes_one_json_line_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanWriter(path) as writer:
            writer.write(Span(name="a", trace_id="t", span_id="s1"))
            writer.write(Span(name="b", trace_id="t", span_id="s2", parent_id="s1"))
        spans = read_spans(path)
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[1].parent_id == "s1"

    def test_truncates_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        intact = json.dumps(Span(name="old", trace_id="t", span_id="s0").to_dict())
        path.write_text(intact + "\n" + '{"torn": ')  # no trailing newline
        with SpanWriter(path) as writer:
            writer.write(Span(name="new", trace_id="t", span_id="s1"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["old", "new"]

    def test_write_failure_is_counted_not_raised(self, tmp_path):
        writer = SpanWriter(tmp_path / "spans.jsonl")
        import os

        os.close(writer._fd)  # sabotage the descriptor under the writer
        writer._fd = os.open(tmp_path / "spans.jsonl", os.O_RDONLY)
        writer.write(Span(name="a", trace_id="t", span_id="s"))
        assert writer.write_errors == 1
        writer.close()


class TestFiles:
    def test_read_spans_skips_torn_and_alien_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = json.dumps(Span(name="keep", trace_id="t", span_id="s").to_dict())
        path.write_text('{"torn\n[1, 2]\n' + good + "\n")
        spans = read_spans(path)
        assert [s.name for s in spans] == ["keep"]

    def test_read_spans_missing_file(self, tmp_path):
        assert read_spans(tmp_path / "nope.jsonl") == []


class TestChromeTrace:
    def test_round_trip_preserves_identity_and_timing(self):
        spans = [
            Span(
                name="campaign.run",
                trace_id="t1",
                span_id="a",
                t_wall=100.0,
                dur_s=2.5,
                pid=42,
            ),
            Span(
                name="engine.attempt",
                trace_id="t1",
                span_id="b",
                parent_id="a",
                t_wall=100.5,
                dur_s=1.25,
                status="error",
                attrs={"experiment_id": "fig6"},
                pid=42,
            ),
        ]
        payload = to_chrome_trace(spans)
        assert payload["displayTimeUnit"] == "ms"
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        back = from_chrome_trace(payload)
        assert [s.to_dict() for s in back] == [s.to_dict() for s in spans]

    def test_round_trip_survives_json_serialization(self):
        spans = [Span(name="x", trace_id="t", span_id="s", t_wall=1.0, dur_s=0.5)]
        payload = json.loads(json.dumps(to_chrome_trace(spans)))
        assert [s.to_dict() for s in from_chrome_trace(payload)] == [
            s.to_dict() for s in spans
        ]

    def test_from_chrome_trace_ignores_foreign_events(self):
        payload = {
            "traceEvents": [
                {"ph": "M", "name": "metadata"},
                {"ph": "X", "name": "no-ids", "args": {}},
            ]
        }
        assert from_chrome_trace(payload) == []
