"""Tests for the temporal working-set timeline (repro.obs.timeline)."""

from __future__ import annotations

import json
import math
import re

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import timeline as tl
from repro.validate.fuzz import MUTATIONS


def _row(seq=0, ws_blocks=100, **extra):
    row = {
        "v": 1,
        "kind": "stackdist",
        "seq": seq,
        "pid": 7,
        "t_wall": 1000.0 + seq,
        "refs": 4096,
        "counted": 4096,
        "cold": 0,
        "block_size": 8,
        "ws_blocks": ws_blocks,
    }
    row.update(extra)
    return row


def _write_rows(path, rows):
    with open(path, "wb") as handle:
        for row in rows:
            handle.write(tl.frame_row(row))


class TestFraming:
    def test_roundtrip(self):
        row = _row()
        assert tl.decode_frame(tl.frame_row(row).rstrip(b"\n")) == row

    def test_crc_damage_returns_none(self):
        line = bytearray(tl.frame_row(_row()).rstrip(b"\n"))
        line[-3] ^= 0x40
        assert tl.decode_frame(bytes(line)) is None

    def test_wrong_magic_returns_none(self):
        line = tl.frame_row(_row(), magic="XXXX").rstrip(b"\n")
        assert tl.decode_frame(line) is None

    def test_non_dict_payload_returns_none(self):
        data = json.dumps([1, 2]).encode()
        import zlib

        line = f"TLN1 {zlib.crc32(data):08x} ".encode() + data
        assert tl.decode_frame(line) is None

    def test_scan_separates_torn_tail_from_damage(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        good = tl.frame_row(_row(0)) + tl.frame_row(_row(1))
        path.write_bytes(good + b"TLN1 deadbeef {torn")  # unterminated
        scan = tl.scan_timeline(path)
        assert len(scan.rows) == 2
        assert scan.torn_tail
        assert scan.damaged == []

    def test_scan_flags_midfile_damage(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        path.write_bytes(
            tl.frame_row(_row(0)) + b"garbage line\n" + tl.frame_row(_row(1))
        )
        scan = tl.scan_timeline(path)
        assert len(scan.rows) == 2
        assert scan.damaged == [2]
        assert not scan.torn_tail

    def test_prepare_for_append_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        good = tl.frame_row(_row(0))
        path.write_bytes(good + b"TLN1 0000 {half")
        tl.prepare_for_append(path)
        assert path.read_bytes() == good
        assert tl.read_timeline(path) == [_row(0)]

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_scan_never_raises_on_mutation(self, tmp_path, mutation):
        path = tmp_path / "timeline.jsonl"
        _write_rows(path, [_row(i) for i in range(20)])
        rng = np.random.default_rng(7)
        path.write_bytes(MUTATIONS[mutation](path.read_bytes(), rng))
        scan = tl.scan_timeline(path)  # must not raise
        for row in scan.rows:
            assert isinstance(row, dict)
        tl.prepare_for_append(path)  # must not raise either
        tl.read_timeline(path)


class TestPhaseDetector:
    def test_two_phase_synthetic_signal(self):
        rows = [_row(i, ws_blocks=120 + (i % 3)) for i in range(10)]
        rows += [_row(10 + i, ws_blocks=4000 + (i % 5)) for i in range(10)]
        phases = tl.detect_phases(rows)
        assert len(phases) == 2
        assert phases[0].rows == 10
        assert phases[1].rows == 10
        assert phases[0].ws_bytes() < phases[1].ws_bytes()

    def test_single_blip_absorbed(self):
        rows = [_row(i, ws_blocks=100) for i in range(6)]
        rows.append(_row(6, ws_blocks=9000))  # lone outlier
        rows += [_row(7 + i, ws_blocks=100) for i in range(6)]
        phases = tl.detect_phases(rows)
        assert len(phases) == 1
        assert phases[0].rows == 13

    def test_rows_without_ws_are_ignored(self):
        detector = tl.PhaseDetector()
        assert detector.update({"kind": "stackdist"}) is False
        assert detector.phases == []

    def test_per_phase_knees_from_miss_vectors(self):
        sizes = [1024, 2048, 4096, 8192, 16384]
        # Sharp knee at 4096: misses collapse there and stay flat after.
        misses = [4000, 3900, 100, 90, 80]
        rows = [
            _row(i, ws_blocks=512, cache_sizes=sizes, misses=misses)
            for i in range(5)
        ]
        phases = tl.detect_phases(rows)
        assert len(phases) == 1
        knees = phases[0].knees()
        assert [int(k.capacity_bytes) for k in knees] == [4096]
        info = phases[0].to_dict()
        assert info["knee_bytes"] == [4096]
        assert info["miss_rate"] == pytest.approx(80 * 5 / (4096 * 5))

    def test_summary_tracks_current_phase(self):
        detector = tl.PhaseDetector()
        for i in range(5):
            detector.update(_row(i, ws_blocks=100))
        summary = detector.summary()
        assert summary["phases"] == 1
        assert summary["phase"] == 1
        assert summary["ws_bytes"] == 100 * 8


class TestLatestAttemptRows:
    def test_newest_attempt_wins(self):
        old = [_row(i, attempt_uid="a@1.1", t_wall=10.0 + i) for i in range(3)]
        new = [_row(i, attempt_uid="a@1.2", t_wall=50.0 + i) for i in range(2)]
        assert tl.latest_attempt_rows(old + new) == new

    def test_experiment_filter(self):
        a = [_row(0, experiment_id="a", attempt_uid="a@1.1")]
        b = [_row(1, experiment_id="b", attempt_uid="b@1.1", t_wall=2000.0)]
        assert tl.latest_attempt_rows(a + b, experiment_id="a") == a

    def test_pid_grouping_fallback(self):
        rows = [_row(0, pid=1), _row(1, pid=2, t_wall=5000.0)]
        assert tl.latest_attempt_rows(rows) == [rows[1]]


class TestRecorder:
    def test_records_framed_rows_with_labels(self, tmp_path):
        obs_metrics.set_obs_enabled(True)
        recorder = tl.configure_timeline(tmp_path / "timeline.jsonl")
        tl.set_labels(experiment_id="fig2", attempt_uid="fig2@1.1")
        assert recorder.record("stackdist", refs=100, ws_blocks=10, none_field=None)
        recorder.record("stackdist", refs=100, ws_blocks=10)
        rows = tl.read_timeline(tmp_path / "timeline.jsonl")
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[0]["experiment_id"] == "fig2"
        assert rows[0]["attempt_uid"] == "fig2@1.1"
        assert "none_field" not in rows[0]

    def test_gauges_and_counters_published(self, tmp_path):
        obs_metrics.set_obs_enabled(True)
        recorder = tl.configure_timeline(tmp_path / "timeline.jsonl")
        for i in range(4):
            recorder.record("stackdist", refs=100, ws_blocks=64, block_size=8)
        snapshot = obs_metrics.get_registry().snapshot()
        assert snapshot["counters"]["obs.timeline.rows"] == 4
        assert snapshot["counters"]["obs.timeline.phase_starts"] == 1
        assert snapshot["gauges"]["mem.ws.phase"] == 1.0
        assert snapshot["gauges"]["mem.ws.phases"] == 1.0
        assert snapshot["gauges"]["mem.ws.estimate_bytes"] == 64 * 8

    def test_metric_names_are_prometheus_valid(self, tmp_path):
        obs_metrics.set_obs_enabled(True)
        recorder = tl.configure_timeline(tmp_path / "timeline.jsonl")
        recorder.record("stackdist", refs=100, ws_blocks=64, block_size=8)
        text = obs_metrics.render_prometheus(
            obs_metrics.get_registry().snapshot()
        )
        assert "repro_mem_ws_phase" in text
        assert "repro_obs_timeline_rows" in text
        name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split(None, 1)[0].split("{", 1)[0]
            assert name_re.match(name), name

    def test_inactive_when_obs_disabled(self, tmp_path):
        tl.configure_timeline(tmp_path / "timeline.jsonl")
        assert not obs_metrics.obs_enabled()
        assert tl.active_recorder() is None

    def test_inactive_under_suppressed_sampling(self, tmp_path):
        obs_metrics.set_obs_enabled(True)
        tl.configure_timeline(tmp_path / "timeline.jsonl")
        assert tl.active_recorder() is not None
        with obs_metrics.suppress_hot_loop_sampling():
            assert tl.active_recorder() is None
        assert tl.active_recorder() is not None

    def test_env_handoff_roundtrip(self, tmp_path, monkeypatch):
        import os

        tl.configure_timeline(tmp_path / "timeline.jsonl", chunk_refs=5000)
        assert os.environ[tl.TIMELINE_ENV] == str(tmp_path / "timeline.jsonl")
        assert os.environ[tl.TIMELINE_CHUNK_ENV] == "5000"
        recorder = tl.install_from_env()
        assert recorder.path == tmp_path / "timeline.jsonl"
        assert recorder.chunk_refs == 5000
        tl.configure_timeline(None)
        assert tl.TIMELINE_ENV not in os.environ
        assert tl.TIMELINE_CHUNK_ENV not in os.environ

    def test_chunk_refs_policy(self, tmp_path):
        recorder = tl.TimelineRecorder(tmp_path / "t.jsonl")
        assert recorder.chunk_refs_for(100) == tl.CHUNK_MIN_REFS
        assert recorder.chunk_refs_for(64 * 10_000) == 10_000
        assert (
            recorder.chunk_refs_for(10**9) == tl.CHUNK_MAX_REFS
        )
        fixed = tl.TimelineRecorder(tmp_path / "t.jsonl", chunk_refs=777)
        assert fixed.chunk_refs_for(10**9) == 777

    def test_write_failure_swallowed(self, tmp_path):
        obs_metrics.set_obs_enabled(True)
        recorder = tl.TimelineRecorder(tmp_path / "no-such-dir" / "t.jsonl")
        assert recorder.record("stackdist", refs=1, ws_blocks=1) is None
        snapshot = obs_metrics.get_registry().snapshot()
        assert snapshot["counters"]["obs.timeline.write_errors"] == 1


class TestSimulatorHooks:
    def _trace(self, refs=30_000, blocks=512, seed=0):
        from repro.mem.trace import Trace

        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, blocks, size=refs).astype(np.int64) * 8
        kinds = np.zeros(refs, dtype=np.uint8)
        return Trace(addrs, kinds)

    def test_chunked_profile_is_bit_identical(self, tmp_path):
        from repro.mem.stack_distance import profile_trace

        trace = self._trace()
        baseline = profile_trace(trace)

        obs_metrics.set_obs_enabled(True)
        tl.configure_timeline(tmp_path / "timeline.jsonl", chunk_refs=4096)
        chunked = profile_trace(trace)
        tl.configure_timeline(None)

        assert chunked.total == baseline.total
        rows = tl.read_timeline(tmp_path / "timeline.jsonl")
        assert len(rows) == math.ceil(30_000 / 4096)
        # Per-chunk miss vectors sum exactly to the full-run misses.
        for i, capacity in enumerate(rows[0]["cache_sizes"]):
            summed = sum(r["misses"][i] for r in rows)
            assert summed == baseline.misses_at(capacity // baseline.block_size)
        assert sum(r["counted"] for r in rows) == baseline.total

    def test_profile_rows_under_oracle_tier(self, tmp_path, monkeypatch):
        from repro.mem import kernels
        from repro.mem.stack_distance import profile_trace

        obs_metrics.set_obs_enabled(True)
        tl.configure_timeline(tmp_path / "timeline.jsonl", chunk_refs=8192)
        with kernels.tier_override("oracle"):
            profile_trace(self._trace())
        rows = tl.read_timeline(tmp_path / "timeline.jsonl")
        assert rows
        assert all(r["tier"] == "oracle" for r in rows)

    def test_fullassoc_run_records_one_row(self, tmp_path):
        from repro.mem.cache import FullyAssociativeCache

        obs_metrics.set_obs_enabled(True)
        tl.configure_timeline(tmp_path / "timeline.jsonl")
        trace = self._trace(refs=10_000)
        cache = FullyAssociativeCache(128 * 8)
        stats = cache.run(trace)
        rows = tl.read_timeline(tmp_path / "timeline.jsonl")
        assert len(rows) == 1
        row = rows[0]
        assert row["kind"] == "fullassoc"
        assert row["refs"] == 10_000
        assert row["misses_total"] == stats.misses
        assert row["capacity_bytes"] == 128 * 8
        assert row["ws_blocks"] == len(np.unique(trace.block_ids(8)))

    def test_setassoc_run_records_one_row(self, tmp_path):
        from repro.mem.setassoc import SetAssociativeCache

        obs_metrics.set_obs_enabled(True)
        tl.configure_timeline(tmp_path / "timeline.jsonl")
        cache = SetAssociativeCache(128 * 8, associativity=1)
        stats = cache.run(self._trace(refs=10_000))
        rows = tl.read_timeline(tmp_path / "timeline.jsonl")
        assert len(rows) == 1
        assert rows[0]["kind"] == "setassoc"
        assert rows[0]["misses_total"] == stats.misses

    def test_no_rows_without_recorder(self, tmp_path):
        from repro.mem.cache import FullyAssociativeCache
        from repro.mem.stack_distance import profile_trace

        obs_metrics.set_obs_enabled(True)
        trace = self._trace(refs=5_000)
        profile_trace(trace)
        FullyAssociativeCache(1024).run(trace)
        assert not (tmp_path / "timeline.jsonl").exists()

    def test_kernel_trust_replay_writes_no_duplicate_rows(self, tmp_path):
        """verify_every=1 shadow-replays every chunk through the oracle;
        the replay must not double-count timeline rows."""
        from repro.mem import kernels
        from repro.mem.cache import FullyAssociativeCache

        obs_metrics.set_obs_enabled(True)
        tl.configure_timeline(tmp_path / "timeline.jsonl")
        kernels.configure_kernels(tier="vector", verify_every=1)
        try:
            FullyAssociativeCache(128 * 8).run(self._trace(refs=10_000))
        finally:
            kernels.clear_kernels()
        rows = tl.read_timeline(tmp_path / "timeline.jsonl")
        assert len(rows) == 1


class TestLoadWorkingSet:
    def test_summary_from_run_dir(self, tmp_path):
        path = tmp_path / tl.TIMELINE_FILENAME
        rows = [
            _row(i, ws_blocks=100, experiment_id="fig6", attempt_uid="fig6@1.1")
            for i in range(6)
        ]
        rows += [
            _row(6 + i, ws_blocks=5000, experiment_id="fig6", attempt_uid="fig6@1.1")
            for i in range(6)
        ]
        _write_rows(path, rows)
        summary = tl.load_working_set(tmp_path)
        assert summary["phases"] == 2
        assert summary["phase"] == 2
        assert summary["experiment_id"] == "fig6"
        assert summary["rows"] == 12

    def test_none_without_timeline(self, tmp_path):
        assert tl.load_working_set(tmp_path) is None

    def test_status_renders_working_set_line(self, tmp_path):
        from repro.obs.status import load_status, render_status

        path = tmp_path / tl.TIMELINE_FILENAME
        _write_rows(
            path,
            [_row(i, ws_blocks=200, experiment_id="fig2") for i in range(4)],
        )
        status = load_status(tmp_path)
        assert status.working_set is not None
        text = render_status(status)
        assert "working set: phase 1/1" in text
        assert "fig2" in text

    def test_status_tolerates_damaged_timeline(self, tmp_path):
        from repro.obs.status import load_status, render_status

        (tmp_path / tl.TIMELINE_FILENAME).write_bytes(b"\x00\xff garbage")
        status = load_status(tmp_path)
        render_status(status)  # must not raise


class TestValidateCodes:
    def test_clean_file_passes(self, tmp_path):
        from repro.validate.artifacts import validate_timeline_file

        path = tmp_path / "timeline.jsonl"
        _write_rows(path, [_row(i) for i in range(5)])
        report = validate_timeline_file(path)
        assert report.ok
        assert report.findings == []

    def test_timeline_torn_midfile_is_error(self, tmp_path):
        from repro.validate.artifacts import validate_timeline_file

        path = tmp_path / "timeline.jsonl"
        path.write_bytes(
            tl.frame_row(_row(0)) + b"junk\n" + tl.frame_row(_row(1))
        )
        report = validate_timeline_file(path)
        assert not report.ok
        assert [f.code for f in report.findings] == ["timeline-torn"]

    def test_timeline_torn_tail_is_warning(self, tmp_path):
        from repro.validate.artifacts import validate_timeline_file

        path = tmp_path / "timeline.jsonl"
        path.write_bytes(tl.frame_row(_row(0)) + b"TLN1 0bad {")
        report = validate_timeline_file(path)
        assert report.ok  # warning only
        assert [f.code for f in report.findings] == ["timeline-torn"]
        assert report.findings[0].severity == "warning"

    def test_timeline_schema_flags_bad_row(self, tmp_path):
        from repro.validate.artifacts import validate_timeline_file

        bad = _row(0)
        bad["kind"] = "bogus"
        del bad["refs"]
        path = tmp_path / "timeline.jsonl"
        _write_rows(path, [bad])
        report = validate_timeline_file(path)
        assert not report.ok
        assert {f.code for f in report.findings} == {"timeline-schema"}

    def test_timeline_schema_flags_ladder_mismatch(self, tmp_path):
        from repro.validate.artifacts import validate_timeline_file

        path = tmp_path / "timeline.jsonl"
        _write_rows(
            path, [_row(0, cache_sizes=[64, 128], misses=[5])]
        )
        report = validate_timeline_file(path)
        assert not report.ok
        assert any(
            "miss slot" in f.message
            for f in report.findings
            if f.code == "timeline-schema"
        )

    def test_run_dir_validation_includes_timeline(self, tmp_path):
        from repro.validate.artifacts import validate_run_dir

        run_dir = tmp_path / "run"
        run_dir.mkdir()
        path = run_dir / "timeline.jsonl"
        path.write_bytes(
            tl.frame_row(_row(0)) + b"junk\n" + tl.frame_row(_row(1))
        )
        report = validate_run_dir(run_dir)
        assert "timeline-torn" in {f.code for f in report.findings}

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_validator_never_raises_on_mutation(self, tmp_path, mutation):
        from repro.validate.artifacts import validate_timeline_file

        path = tmp_path / "timeline.jsonl"
        _write_rows(path, [_row(i) for i in range(12)])
        rng = np.random.default_rng(3)
        path.write_bytes(MUTATIONS[mutation](path.read_bytes(), rng))
        validate_timeline_file(path)  # must not raise
