"""Tests for the campaign report and the status/report CLI commands."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.report import render_report, render_report_html, report_to_json
from repro.validate.fuzz import MUTATIONS

from tests.obs.test_status import run_campaign
from tests.runtime.conftest import FakeExperiment


class TestRenderReport:
    def test_completed_campaign_sections(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a"), FakeExperiment("b")])
        text = render_report(run_dir)
        assert text.startswith("# Campaign report:")
        assert "campaign state **complete**" in text
        assert "## Overview" in text
        assert "## Experiment timings" in text
        assert "## Retries, faults, and validation" in text
        assert "## Results" in text
        assert "## Metrics rollup" in text
        assert "## Spans" in text
        assert "### a: fake a" in text
        assert "### b: fake b" in text

    def test_retry_story_counted(self, tmp_path):
        from repro.runtime.errors import SimulationError

        run_dir = tmp_path / "run"
        run_campaign(
            run_dir,
            [FakeExperiment("flaky", fail_times=1, error=SimulationError("x"))],
            max_attempts=2,
        )
        text = render_report(run_dir)
        assert "| retries | 1 |" in text
        assert "| failed attempts | 1 |" in text
        assert "| simulation | 1 |" in text

    def test_curve_and_comparison_tables(self, tmp_path):
        from repro.core.curves import MissRateCurve
        from repro.experiments.runner import SeriesComparison

        run_dir = tmp_path / "run"
        exp = FakeExperiment("figX")

        original_run = exp.run

        def run_with_artifacts(**kwargs):
            result = original_run(**kwargs)
            result.comparisons.append(
                SeriesComparison(
                    quantity="knee",
                    paper_value=64.0,
                    measured_value=64.0,
                    unit="KB",
                )
            )
            result.curves.append(
                MissRateCurve(
                    capacities=np.array([1024.0, 2048.0]),
                    miss_rates=np.array([0.2, 0.1]),
                    label="lu p=16",
                )
            )
            return result

        exp.run = run_with_artifacts
        run_campaign(run_dir, [exp])
        text = render_report(run_dir)
        assert "| knee | 64" in text
        assert "| lu p=16 | 2 | 0.1 | 0.2 |" in text

    def test_spans_and_metrics_sections_render(self, tmp_path):
        from repro.obs.metrics import METRICS_FORMAT

        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        (run_dir / "spans.jsonl").write_text(
            json.dumps(
                {
                    "name": "campaign.run",
                    "trace_id": "t",
                    "span_id": "s",
                    "t_wall": 1.0,
                    "dur_s": 2.0,
                    "status": "ok",
                    "pid": 1,
                }
            )
            + "\n"
        )
        (run_dir / "metrics.json").write_text(
            json.dumps(
                {
                    "format": METRICS_FORMAT,
                    "written_wall": 1.0,
                    "trace_id": "t",
                    "campaign": {
                        "counters": {"engine.attempts": 1},
                        "gauges": {},
                        "histograms": {},
                    },
                    "attempts": {
                        "a-1-2": {"rss_peak_kb": 2048, "spans": 3},
                    },
                }
            )
        )
        text = render_report(run_dir)
        assert "| engine.attempts | 1 |" in text
        assert "| a-1-2 | 2,048 | 3 |" in text
        assert "campaign.run" in text

    def test_html_wraps_and_escapes(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        html = render_report_html(run_dir)
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>Campaign report:" in html
        assert "&lt;" not in render_report(run_dir)  # sanity: markdown is plain

    def test_json_form_carries_status_and_tallies(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        payload = json.loads(report_to_json(run_dir))
        assert payload["state"] == "complete"
        assert payload["experiments"]["a"]["state"] == "ok"
        assert payload["event_tallies"]["finish"] == 1

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutated_events_never_break_the_report(self, tmp_path, mutation):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        target = run_dir / "events.jsonl"
        rng = np.random.default_rng(11)
        target.write_bytes(MUTATIONS[mutation](target.read_bytes(), rng))
        text = render_report(run_dir)
        assert text.startswith("# Campaign report:")


class TestCli:
    def _campaign(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        return run_dir

    def test_status_command(self, tmp_path, capsys):
        from repro.experiments.__main__ import status_command

        run_dir = self._campaign(tmp_path)
        assert status_command([str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "== campaign status:" in out
        assert "state: complete" in out

    def test_status_command_json(self, tmp_path, capsys):
        from repro.experiments.__main__ import status_command

        run_dir = self._campaign(tmp_path)
        assert status_command([str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "complete"

    def test_status_command_rejects_bad_inputs(self, tmp_path, capsys):
        from repro.experiments.__main__ import status_command

        assert status_command([str(tmp_path / "nope")]) == 2
        run_dir = self._campaign(tmp_path)
        assert status_command([str(run_dir), "--follow", "--interval", "0"]) == 2

    def test_report_command_stdout_and_file(self, tmp_path, capsys):
        from repro.experiments.__main__ import report_command

        run_dir = self._campaign(tmp_path)
        assert report_command([str(run_dir)]) == 0
        assert "# Campaign report:" in capsys.readouterr().out

        out_file = tmp_path / "report.html"
        assert report_command([str(run_dir), "--html", "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith("<!DOCTYPE html>")

    def test_report_command_rejects_conflicting_formats(self, tmp_path):
        from repro.experiments.__main__ import report_command

        run_dir = self._campaign(tmp_path)
        assert report_command([str(run_dir), "--html", "--json"]) == 2

    def test_subcommands_registered(self):
        from repro.experiments.__main__ import SUBCOMMANDS

        assert "status" in SUBCOMMANDS
        assert "report" in SUBCOMMANDS


class TestTemporalWorkingSets:
    """The per-phase knee table and the HTML sparkline section."""

    def _timeline(self, run_dir, experiment_id="fig6"):
        from repro.obs import timeline as tl

        sizes = [1024, 2048, 4096, 8192]
        rows = []
        for i in range(12):
            small = i < 6
            rows.append(
                {
                    "v": 1,
                    "kind": "stackdist",
                    "seq": i,
                    "pid": 1,
                    "t_wall": float(i),
                    "refs": 4096,
                    "counted": 4096,
                    "block_size": 8,
                    "ws_blocks": 120 if small else 5000,
                    "cache_sizes": sizes,
                    "misses": [400, 50, 40, 30] if small else [4000, 3900, 3800, 500],
                }
            )
            rows[-1]["experiment_id"] = experiment_id
            rows[-1]["attempt_uid"] = f"{experiment_id}@1.1"
        run_dir.mkdir(exist_ok=True)
        with open(run_dir / tl.TIMELINE_FILENAME, "wb") as handle:
            for row in rows:
                handle.write(tl.frame_row(row))

    def test_markdown_has_per_phase_knee_table(self, tmp_path):
        run_dir = tmp_path / "run"
        self._timeline(run_dir)
        text = render_report(run_dir)
        assert "## Temporal working sets" in text
        assert "### fig6: 2 phase(s) over 12 chunk(s)" in text
        assert "| phase | chunks | refs | ws estimate | knee(s) | miss rate |" in text
        assert "End-of-run" in text

    def test_per_phase_knees_differ_from_end_of_run(self, tmp_path):
        """The whole point: phase knees the aggregate curve cannot show."""
        from repro.obs import timeline as tl

        run_dir = tmp_path / "run"
        self._timeline(run_dir)
        rows = tl.read_timeline(run_dir / tl.TIMELINE_FILENAME)
        phases = tl.detect_phases(tl.latest_attempt_rows(rows))
        per_phase = [
            [int(k.capacity_bytes) for k in phase.knees()] for phase in phases
        ]
        assert per_phase[0] != per_phase[1]

    def test_report_without_timeline_degrades(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        text = render_report(run_dir)
        assert "No readable `timeline.jsonl`" in text

    def test_html_contains_raw_svg_sparklines(self, tmp_path):
        run_dir = tmp_path / "run"
        self._timeline(run_dir)
        html = render_report_html(run_dir)
        assert "<svg" in html
        assert "Timeline sparklines" in html
        assert "working set per chunk" in html
        assert "miss rate per chunk" in html
        # The markdown body itself stays escaped.
        assert "&lt;" not in html.split("<section", 1)[1]

    def test_html_without_timeline_has_no_svg(self, tmp_path):
        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        html = render_report_html(run_dir)
        assert "<svg" not in html

    def test_sparkline_svg_helper(self):
        from repro.obs.report import _sparkline_svg

        assert _sparkline_svg([]) == ""
        assert _sparkline_svg([1.0]) == ""
        svg = _sparkline_svg([1.0, 5.0, 2.0])
        assert svg.startswith("<svg")
        assert "polyline" in svg
        # Flat series must not divide by zero.
        assert _sparkline_svg([3.0, 3.0, 3.0]).startswith("<svg")
