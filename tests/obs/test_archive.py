"""Tests for the cross-campaign perf archive (repro.obs.archive)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs import archive as ar
from repro.obs import timeline as tl
from repro.validate.fuzz import MUTATIONS

ATTR = {
    "git_sha": "a" * 40,
    "timestamp": "2026-08-08T12:00:00+0000",
    "hostname": "testhost",
}


def _row(rate=100.0, series="bench:x", **extra):
    row = {
        "v": ar.ARCHIVE_VERSION,
        "kind": "bench",
        "series": series,
        "refs_per_second": rate,
    }
    row.update(ATTR)
    row.update(extra)
    return row


def _compare_baseline():
    path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "compare_baseline.py"
    )
    spec = importlib.util.spec_from_file_location("compare_baseline", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestAttribution:
    def test_attribution_has_timestamp_and_hostname(self):
        attr = ar.attribution()
        assert attr["hostname"]
        assert "T" in attr["timestamp"]

    def test_git_sha_resolves_in_this_repo(self):
        sha = ar.git_sha(Path(__file__).resolve().parents[2])
        assert sha is None or len(sha) == 40

    def test_is_attributed(self):
        assert ar.is_attributed(_row())
        short = _row()
        del short["git_sha"]
        assert not ar.is_attributed(short)


class TestAppendScan:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / ar.ARCHIVE_FILENAME
        rows = [_row(100.0), _row(90.0)]
        assert ar.append_rows(path, rows) == 2
        assert ar.read_archive(path) == rows

    def test_refuses_unattributed_rows(self, tmp_path):
        path = tmp_path / ar.ARCHIVE_FILENAME
        bad = _row()
        del bad["git_sha"]
        with pytest.raises(ValueError, match="git_sha"):
            ar.append_rows(path, [bad])
        assert not path.exists()

    def test_scan_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / ar.ARCHIVE_FILENAME
        ar.append_rows(path, [_row()])
        with open(path, "ab") as handle:
            handle.write(b"PFA1 0000 {torn")
        scan = ar.scan_archive(path)
        assert len(scan.rows) == 1
        assert scan.torn_tail

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_scan_never_raises_on_mutation(self, tmp_path, mutation):
        path = tmp_path / ar.ARCHIVE_FILENAME
        ar.append_rows(path, [_row(100.0 + i) for i in range(10)])
        rng = np.random.default_rng(11)
        path.write_bytes(MUTATIONS[mutation](path.read_bytes(), rng))
        ar.scan_archive(path)  # must not raise
        from repro.validate.artifacts import validate_archive_file

        validate_archive_file(path)  # must not raise


class TestDetectRegressions:
    def test_single_row_is_baseline(self):
        findings = ar.detect_regressions([_row(100.0)])
        assert len(findings) == 1
        assert findings[0]["note"] == "insufficient history"
        assert not findings[0]["regression"]

    def test_twenty_pct_drop_flagged_against_three_rows(self):
        rows = [_row(100.0), _row(101.0), _row(99.0), _row(80.0)]
        findings = ar.detect_regressions(rows)
        assert len(findings) == 1
        assert findings[0]["regression"]
        assert findings[0]["drop_pct"] == pytest.approx(20.0, abs=1.0)

    def test_improvement_not_flagged(self):
        rows = [_row(100.0), _row(101.0), _row(130.0)]
        findings = ar.detect_regressions(rows)
        assert not findings[0]["regression"]

    def test_noisy_series_needs_larger_drop(self):
        # History swings +-40%: a 15% dip is inside the noise band.
        rows = [_row(r) for r in (60.0, 140.0, 70.0, 130.0, 100.0, 85.0)]
        findings = ar.detect_regressions(rows)
        assert not findings[0]["regression"]

    def test_series_are_independent(self):
        rows = [_row(100.0), _row(100.0), _row(50.0)]
        rows += [_row(200.0, series="bench:y"), _row(201.0, series="bench:y")]
        findings = {f["series"]: f for f in ar.detect_regressions(rows)}
        assert findings["bench:x"]["regression"]
        assert not findings["bench:y"]["regression"]

    def test_render_trends_mentions_regression(self):
        rows = [_row(100.0), _row(100.0), _row(50.0)]
        text = ar.render_trends(ar.detect_regressions(rows))
        assert "REGRESSION" in text
        assert "1 regression(s) across 1 series" in text


class TestBenchRows:
    def _payload(self, with_attr=True):
        entry = {
            "name": "bench_x",
            "fullname": "benchmarks/bench_x.py::bench_x",
            "group": None,
            "stats": {"mean": 0.5},
            "extra_info": {"refs_per_second": 1000.0},
        }
        if with_attr:
            entry["attribution"] = dict(ATTR)
        return {"benchmarks": [entry]}

    def test_bench_rows_copy_attribution_and_metrics(self):
        rows = ar.bench_rows(self._payload())
        assert len(rows) == 1
        row = rows[0]
        assert row["series"] == "bench:bench_x"
        assert row["git_sha"] == ATTR["git_sha"]
        assert row["refs_per_second"] == 1000.0
        assert row["mean_seconds"] == 0.5
        assert ar.is_attributed(row)

    def test_bench_rows_without_attribution_are_unattributed(self):
        rows = ar.bench_rows(self._payload(with_attr=False))
        assert rows and not ar.is_attributed(rows[0])

    def test_compare_baseline_archives_attributed_rows(self, tmp_path, capsys):
        mod = _compare_baseline()
        current = tmp_path / "BENCH_results.json"
        current.write_text(json.dumps(self._payload()))
        archive = tmp_path / "perf-archive.jsonl"
        assert mod.archive_current(current, archive) == 0
        assert len(ar.read_archive(archive)) == 1
        assert "baseline (first row)" in capsys.readouterr().out

    def test_compare_baseline_refuses_unattributed(self, tmp_path, capsys):
        mod = _compare_baseline()
        current = tmp_path / "BENCH_results.json"
        current.write_text(json.dumps(self._payload(with_attr=False)))
        archive = tmp_path / "perf-archive.jsonl"
        assert mod.archive_current(current, archive) == 2
        assert not archive.exists()
        assert "refusing" in capsys.readouterr().err


class TestCampaignRows:
    def test_empty_run_dir_yields_no_rows(self, tmp_path):
        assert ar.campaign_rows(tmp_path) == []

    def test_campaign_row_from_run_dir(self, tmp_path):
        from tests.obs.test_status import run_campaign
        from tests.runtime.conftest import FakeExperiment

        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        rows = ar.campaign_rows(run_dir)
        assert len(rows) == 1
        row = rows[0]
        assert row["kind"] == "campaign"
        assert row["series"] == "campaign:a"
        assert row["experiments"] == ["a"]
        assert ar.is_attributed(row) or "git_sha" not in row

    def test_campaign_row_carries_phases_from_timeline(self, tmp_path):
        from tests.obs.test_status import run_campaign
        from tests.runtime.conftest import FakeExperiment

        run_dir = tmp_path / "run"
        run_campaign(run_dir, [FakeExperiment("a")])
        rows = []
        for i in range(6):
            rows.append(
                {
                    "v": 1,
                    "kind": "stackdist",
                    "seq": i,
                    "pid": 1,
                    "t_wall": float(i),
                    "refs": 4096,
                    "counted": 4096,
                    "block_size": 8,
                    "ws_blocks": 100 if i < 3 else 5000,
                    "experiment_id": "a",
                    "attempt_uid": "a@1.1",
                }
            )
        with open(run_dir / tl.TIMELINE_FILENAME, "wb") as handle:
            for row in rows:
                handle.write(tl.frame_row(row))
        row = ar.campaign_rows(run_dir)[0]
        assert row["phases"] == {"a": 2}


class TestTrendsCommand:
    def test_missing_archive_is_usage_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["trends", str(tmp_path / "none.jsonl")]) == 2

    def test_first_row_exits_zero(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "perf-archive.jsonl"
        ar.append_rows(path, [_row(100.0)])
        assert main(["trends", str(path)]) == 0
        assert "baseline (first row)" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "perf-archive.jsonl"
        ar.append_rows(path, [_row(100.0), _row(101.0), _row(99.0), _row(75.0)])
        assert main(["trends", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "perf-archive.jsonl"
        ar.append_rows(path, [_row(100.0), _row(90.0)])
        assert main(["trends", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == 2
        assert payload["findings"][0]["series"] == "bench:x"

    def test_archive_flag_requires_run_dir(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--archive", "x.jsonl", "--experiments", "fig2"]) == 2


class TestValidateArchiveCodes:
    def test_clean_archive_passes(self, tmp_path):
        from repro.validate.artifacts import validate_archive_file

        path = tmp_path / ar.ARCHIVE_FILENAME
        ar.append_rows(path, [_row(100.0)])
        report = validate_archive_file(path)
        assert report.ok
        assert report.findings == []

    def test_archive_corrupt_midfile_is_error(self, tmp_path):
        from repro.validate.artifacts import validate_archive_file

        path = tmp_path / ar.ARCHIVE_FILENAME
        good = tl.frame_row(_row(), magic=ar.ARCHIVE_MAGIC)
        path.write_bytes(good + b"junk\n" + good)
        report = validate_archive_file(path)
        assert not report.ok
        assert [f.code for f in report.findings] == ["archive-corrupt"]

    def test_archive_torn_tail_is_warning(self, tmp_path):
        from repro.validate.artifacts import validate_archive_file

        path = tmp_path / ar.ARCHIVE_FILENAME
        ar.append_rows(path, [_row()])
        with open(path, "ab") as handle:
            handle.write(b"PFA1 bad {")
        report = validate_archive_file(path)
        assert report.ok
        assert report.findings[0].severity == "warning"

    def test_unattributed_row_flagged(self, tmp_path):
        from repro.validate.artifacts import validate_archive_file

        bad = _row()
        del bad["git_sha"]
        path = tmp_path / ar.ARCHIVE_FILENAME
        path.write_bytes(tl.frame_row(bad, magic=ar.ARCHIVE_MAGIC))
        report = validate_archive_file(path)
        assert not report.ok
        assert any("unattributed" in f.message for f in report.findings)

    def test_schema_violation_flagged(self, tmp_path):
        from repro.validate.artifacts import validate_archive_file

        bad = _row()
        bad["kind"] = "mystery"
        path = tmp_path / ar.ARCHIVE_FILENAME
        path.write_bytes(tl.frame_row(bad, magic=ar.ARCHIVE_MAGIC))
        report = validate_archive_file(path)
        assert not report.ok
        assert {f.code for f in report.findings} == {"archive-corrupt"}
