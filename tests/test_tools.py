"""Tests for the trace CLI utilities."""

import pytest

from repro.mem.tracefile import save_trace
from repro.mem.trace import TraceBuilder
from repro.tools import main
from tests.conftest import random_trace


@pytest.fixture
def saved_trace(tmp_path):
    builder = TraceBuilder()
    for _ in range(4):
        builder.read_range(0, 64)
    path = tmp_path / "loop.npz"
    save_trace(path, builder.build(), metadata={"app": "demo", "n": 64})
    return str(path)


class TestInfo:
    def test_prints_summary(self, saved_trace, capsys):
        assert main(["info", saved_trace]) == 0
        out = capsys.readouterr().out
        assert "256" in out  # reference count
        assert "app: demo" in out

    def test_no_metadata(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        save_trace(path, random_trace(10, 10))
        assert main(["info", str(path)]) == 0
        assert "\n  metadata:" not in capsys.readouterr().out


class TestProfile:
    def test_prints_curve_and_knee(self, saved_trace, capsys):
        assert main(["profile", saved_trace, "--max-cache", "4KB",
                     "--warmup-fraction", "0"]) == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "compulsory floor" in out

    def test_reads_only_flag(self, saved_trace, capsys):
        assert main(["profile", saved_trace, "--reads-only"]) == 0
        assert "miss rate" in capsys.readouterr().out

    def test_no_knees_message(self, tmp_path, capsys):
        path = tmp_path / "stream.npz"
        save_trace(path, random_trace(200, 10_000, seed=1))
        assert main(["profile", str(path), "--warmup-fraction", "0",
                     "--max-cache", "2KB"]) == 0
        out = capsys.readouterr().out
        assert "knees" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
