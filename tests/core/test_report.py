"""Tests for report formatting helpers."""

import numpy as np

from repro.core.curves import MissRateCurve
from repro.core.report import banner, format_curve_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "|" in lines[0]
        assert set(lines[1]) <= set("-+")
        assert len(lines) == 4

    def test_column_width_from_rows(self):
        text = format_table(["h"], [["wide-cell"]])
        assert "wide-cell" in text

    def test_empty_rows(self):
        text = format_table(["only", "header"], [])
        assert "only" in text


class TestCurveSeries:
    def test_union_of_capacities(self):
        a = MissRateCurve(np.array([64, 256]), np.array([1.0, 0.5]), label="a")
        b = MissRateCurve(np.array([128, 256]), np.array([0.8, 0.4]), label="b")
        text = format_curve_series([a, b])
        assert "64 B" in text
        assert "128 B" in text
        assert "a" in text and "b" in text

    def test_unlabeled_series_get_names(self):
        a = MissRateCurve(np.array([64]), np.array([1.0]))
        text = format_curve_series([a])
        assert "series0" in text


class TestBanner:
    def test_centered(self):
        text = banner("Title", width=40)
        assert "Title" in text
        assert len(text) == 40

    def test_long_title_not_truncated(self):
        assert "very long experiment title" in banner(
            "very long experiment title", width=10
        )
