"""Tests for the cost-performance design model."""

import math

import pytest

from repro.apps.lu.model import LUModel
from repro.core.cost import (
    ComponentPrices,
    NodeDesign,
    best_design,
    enumerate_designs,
    evaluate_design,
)
from repro.units import GB, KB, MB


PRICES = ComponentPrices()


class TestPrices:
    def test_node_cost(self):
        cost = PRICES.node_cost(cache_bytes=64 * KB, memory_bytes=16 * MB)
        assert cost == pytest.approx(1000 + 64 + 640)

    def test_memory_cost_fraction(self):
        design = NodeDesign(64, cache_bytes=0.0001, memory_bytes=25 * MB)
        assert design.memory_cost_fraction(PRICES) == pytest.approx(0.5, abs=0.01)

    def test_total_cost_scales_with_p(self):
        a = NodeDesign(64, 64 * KB, 16 * MB)
        b = NodeDesign(128, 64 * KB, 16 * MB)
        assert b.total_cost(PRICES) == pytest.approx(2 * a.total_cost(PRICES))


class TestEnumerate:
    def test_budget_respected(self):
        designs = enumerate_designs(1_000_000, GB)
        for design in designs:
            assert design.total_cost(PRICES) <= 1_000_000 * 1.001

    def test_unaffordable_processor_counts_skipped(self):
        designs = enumerate_designs(100_000, GB)
        assert all(d.num_processors * 1000 < 100_000 for d in designs)

    def test_more_budget_more_designs(self):
        few = enumerate_designs(200_000, GB)
        many = enumerate_designs(5_000_000, GB)
        assert len(many) > len(few)


class TestEvaluate:
    MODEL = LUModel.for_dataset(GB, block_size=16, num_processors=1024)

    def _evaluate(self, design):
        return evaluate_design(
            self.MODEL,
            design,
            GB,
            self.MODEL.flops(),
            self.MODEL.miss_rate_model,
        )

    def test_infeasible_when_memory_short(self):
        tiny = NodeDesign(64, 4 * KB, 1 * MB)  # 64 MB total for 1 GB problem
        evaluation = self._evaluate(tiny)
        assert not evaluation.feasible
        assert evaluation.time_units == math.inf

    def test_bigger_cache_not_slower(self):
        small = self._evaluate(NodeDesign(1024, 4 * KB, 4 * MB))
        large = self._evaluate(NodeDesign(1024, 256 * KB, 4 * MB))
        assert large.time_units <= small.time_units

    def test_more_processors_faster_when_balanced(self):
        few = self._evaluate(NodeDesign(256, 64 * KB, 8 * MB))
        many = self._evaluate(NodeDesign(1024, 64 * KB, 2 * MB))
        assert many.time_units < few.time_units

    def test_best_design_requires_feasible(self):
        infeasible = self._evaluate(NodeDesign(64, 4 * KB, 1 * MB))
        with pytest.raises(ValueError):
            best_design([infeasible])

    def test_best_design_picks_minimum(self):
        evals = [
            self._evaluate(NodeDesign(256, 64 * KB, 8 * MB)),
            self._evaluate(NodeDesign(1024, 64 * KB, 2 * MB)),
        ]
        assert best_design(evals) is min(evals, key=lambda e: e.time_units)
