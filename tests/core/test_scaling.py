"""Tests for the MC/TC scaling models and the monotone solver."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scaling import (
    MemoryConstrainedScaling,
    ProblemScaler,
    TimeConstrainedScaling,
    growth_exponent,
    solve_monotone,
)


LU_SCALER = ProblemScaler(
    name="LU",
    data_bytes=lambda n: 8.0 * n * n,
    work_ops=lambda n: 2.0 * n**3 / 3.0,
    n0=1000.0,
    p0=64,
)


class TestSolveMonotone:
    def test_linear(self):
        assert solve_monotone(lambda x: 2 * x, 10.0, lo=0.0, hi=1.0) == pytest.approx(5.0)

    def test_expands_bracket(self):
        assert solve_monotone(lambda x: x, 1e6, lo=0.0, hi=1.0) == pytest.approx(1e6, rel=1e-6)

    def test_target_below_lo_raises(self):
        with pytest.raises(ValueError):
            solve_monotone(lambda x: x, 0.5, lo=1.0, hi=2.0)

    @given(st.floats(min_value=1.1, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_inverts_cubic(self, target):
        x = solve_monotone(lambda v: v**3, target, lo=1.0, hi=2.0)
        assert x**3 == pytest.approx(target, rel=1e-6)


class TestMemoryConstrained:
    def test_keeps_grain_fixed(self):
        scaled = MemoryConstrainedScaling().scale(LU_SCALER, 256)
        base_grain = LU_SCALER.data_bytes(LU_SCALER.n0) / LU_SCALER.p0
        assert scaled.memory_per_processor == pytest.approx(base_grain, rel=1e-6)

    def test_lu_n_grows_as_sqrt_p(self):
        scaled = MemoryConstrainedScaling().scale(LU_SCALER, 256)
        assert scaled.n == pytest.approx(1000 * 2, rel=1e-6)  # 4x procs -> 2x n

    def test_lu_time_grows_under_mc(self):
        """The paper: LU work (n^3) outgrows memory (n^2), so MC scaling
        inflates execution time."""
        base_time = LU_SCALER.work_ops(LU_SCALER.n0) / LU_SCALER.p0
        scaled = MemoryConstrainedScaling().scale(LU_SCALER, 1024)
        assert scaled.time_units > 2 * base_time

    def test_identity_at_base(self):
        scaled = MemoryConstrainedScaling().scale(LU_SCALER, 64)
        assert scaled.n == pytest.approx(1000, rel=1e-6)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            MemoryConstrainedScaling().scale(LU_SCALER, 0)


class TestTimeConstrained:
    def test_keeps_time_fixed(self):
        scaled = TimeConstrainedScaling().scale(LU_SCALER, 512)
        base_time = LU_SCALER.work_ops(LU_SCALER.n0) / LU_SCALER.p0
        assert scaled.time_units == pytest.approx(base_time, rel=1e-6)

    def test_lu_grain_shrinks_under_tc(self):
        """The paper: under TC scaling the per-processor data set for LU
        shrinks — an argument for finer-grained nodes."""
        base_grain = LU_SCALER.data_bytes(LU_SCALER.n0) / LU_SCALER.p0
        scaled = TimeConstrainedScaling().scale(LU_SCALER, 4096)
        assert scaled.memory_per_processor < base_grain

    def test_tc_n_growth_is_cuberoot_for_lu(self):
        scaled = TimeConstrainedScaling().scale(LU_SCALER, 64 * 8)
        assert scaled.n == pytest.approx(1000 * 2, rel=1e-6)  # 8x procs -> 2x n

    def test_tc_slower_than_mc(self):
        mc = MemoryConstrainedScaling().scale(LU_SCALER, 4096)
        tc = TimeConstrainedScaling().scale(LU_SCALER, 4096)
        assert tc.n < mc.n


class TestGrowthExponent:
    def test_power_laws(self):
        assert growth_exponent(lambda n: n**2, 100.0) == pytest.approx(2.0)
        assert growth_exponent(lambda n: 5 * n**3, 50.0) == pytest.approx(3.0)

    def test_log_law_is_sublinear(self):
        exponent = growth_exponent(lambda n: math.log2(n), 4096.0)
        assert 0 < exponent < 0.2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            growth_exponent(lambda n: 0.0, 10.0)
