"""Tests for the application-characterization orchestration."""

import pytest

from repro.core.analysis import ApplicationModel, characterize
from repro.core.grain import GrainConfig, GrainVerdict, LoadBalanceModel
from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import GB, KB


class ToyModel(ApplicationModel):
    """A minimal model: easy communication, balance degrades with P."""

    name = "Toy"
    metric = "miss_rate"
    load_model = LoadBalanceModel("widgets", good_threshold=100, poor_threshold=10)

    def working_sets(self):
        hierarchy = WorkingSetHierarchy(
            application=self.name, problem="toy", dataset_bytes=GB,
            per_processor_bytes=GB / 1024,
        )
        hierarchy.add(WorkingSet(1, "core", 4 * KB, 0.05, important=True))
        return hierarchy

    def flops_per_word(self, config: GrainConfig) -> float:
        return 100.0

    def units_per_processor(self, config: GrainConfig) -> float:
        return 1_000_000 / config.num_processors

    def grain_notes(self, config: GrainConfig) -> str:
        return "note!" if config.num_processors > 10_000 else ""


class TestCharacterize:
    def test_produces_all_assessments(self):
        result = characterize(ToyModel())
        assert len(result.assessments) == 3
        assert result.model_name == "Toy"

    def test_verdicts_degrade_with_p(self):
        result = characterize(ToyModel())
        verdicts = [a.verdict for a in result.assessments]
        assert verdicts[0] is GrainVerdict.GOOD
        assert verdicts[2] is GrainVerdict.MARGINAL  # 61 widgets/processor

    def test_desirable_grain(self):
        result = characterize(ToyModel())
        assert result.desirable_grain.num_processors == 1024

    def test_custom_configs(self):
        configs = [GrainConfig(GB, 2, "two")]
        result = characterize(ToyModel(), configs)
        assert len(result.assessments) == 1
        assert result.assessments[0].config.label == "two"

    def test_notes_propagate(self):
        result = characterize(ToyModel())
        assert result.assessments[2].notes == "note!"

    def test_describe(self):
        text = characterize(ToyModel()).describe()
        assert "Toy" in text
        assert "desirable grain" in text


class TestAbstractness:
    def test_cannot_instantiate_base(self):
        with pytest.raises(TypeError):
            ApplicationModel()  # type: ignore[abstract]
