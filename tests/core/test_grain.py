"""Tests for grain-size configuration and verdict logic."""

import pytest

from repro.core.grain import (
    GrainConfig,
    GrainVerdict,
    LoadBalanceModel,
    assess_grain,
    combine_verdicts,
    desirable_grain_size,
    prototypical_configs,
)
from repro.core.machine import SustainabilityBand
from repro.units import GB, KB, MB


class TestGrainConfig:
    def test_memory_per_processor(self):
        config = GrainConfig(GB, 1024)
        assert config.memory_per_processor == pytest.approx(MB)

    def test_str_mentions_grain(self):
        assert "1.0 MB" in str(GrainConfig(GB, 1024, "proto"))

    def test_prototypical_trio(self):
        configs = prototypical_configs()
        assert [c.num_processors for c in configs] == [64, 1024, 16384]
        assert configs[0].memory_per_processor == pytest.approx(16 * MB)
        assert configs[2].memory_per_processor == pytest.approx(64 * KB)


class TestLoadBalance:
    MODEL = LoadBalanceModel("units", good_threshold=100, poor_threshold=10)

    def test_good(self):
        assert self.MODEL.assess(500) is GrainVerdict.GOOD

    def test_marginal(self):
        assert self.MODEL.assess(50) is GrainVerdict.MARGINAL

    def test_poor(self):
        assert self.MODEL.assess(5) is GrainVerdict.POOR

    def test_boundaries_inclusive(self):
        assert self.MODEL.assess(100) is GrainVerdict.GOOD
        assert self.MODEL.assess(10) is GrainVerdict.MARGINAL


class TestCombineVerdicts:
    def test_worst_wins(self):
        assert (
            combine_verdicts(SustainabilityBand.EASY, GrainVerdict.POOR)
            is GrainVerdict.POOR
        )
        assert (
            combine_verdicts(
                SustainabilityBand.EXTREMELY_DIFFICULT, GrainVerdict.GOOD
            )
            is GrainVerdict.POOR
        )

    def test_both_good(self):
        assert (
            combine_verdicts(SustainabilityBand.EASY, GrainVerdict.GOOD)
            is GrainVerdict.GOOD
        )

    def test_marginal_band(self):
        assert (
            combine_verdicts(SustainabilityBand.SUSTAINABLE, GrainVerdict.GOOD)
            is GrainVerdict.MARGINAL
        )


class TestAssess:
    MODEL = LoadBalanceModel("units", 100, 10)

    def test_assessment_fields(self):
        config = GrainConfig(GB, 1024)
        assessment = assess_grain(config, 200.0, 500.0, self.MODEL, notes="hi")
        assert assessment.band is SustainabilityBand.EASY
        assert assessment.verdict is GrainVerdict.GOOD
        assert "hi" in str(assessment)

    def test_communication_bound(self):
        assessment = assess_grain(GrainConfig(GB, 1024), 5.0, 500.0, self.MODEL)
        assert assessment.verdict is GrainVerdict.POOR


class TestDesirableGrain:
    MODEL = LoadBalanceModel("units", 100, 10)

    def _assess(self, config, ratio, units):
        return assess_grain(config, ratio, units, self.MODEL)

    def test_prefers_finest_good(self):
        configs = prototypical_configs()
        assessments = [
            self._assess(configs[0], 1000, 10_000),
            self._assess(configs[1], 500, 1_000),
            self._assess(configs[2], 100, 500),
        ]
        assert desirable_grain_size(assessments) is configs[2].__class__(
            configs[2].total_data_bytes, configs[2].num_processors, configs[2].label
        ) or desirable_grain_size(assessments) == configs[2]

    def test_falls_back_to_marginal(self):
        configs = prototypical_configs()
        assessments = [
            self._assess(configs[0], 50, 50),  # marginal
            self._assess(configs[1], 5, 5),  # poor
            self._assess(configs[2], 5, 5),  # poor
        ]
        assert desirable_grain_size(assessments) == configs[0]

    def test_good_preferred_over_finer_marginal(self):
        """LU's judgement: 1 MB easy, 64 KB survivable — desirable is 1 MB."""
        configs = prototypical_configs()
        assessments = [
            self._assess(configs[0], 1000, 10_000),  # good
            self._assess(configs[1], 200, 500),  # good
            self._assess(configs[2], 60, 30),  # marginal
        ]
        assert desirable_grain_size(assessments) == configs[1]

    def test_all_poor_raises(self):
        configs = prototypical_configs()
        assessments = [self._assess(c, 1.0, 1.0) for c in configs]
        with pytest.raises(ValueError):
            desirable_grain_size(assessments)
