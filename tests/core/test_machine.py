"""Tests for machine models and sustainability bands — checked against
the paper's own Paragon/CM-5 arithmetic (Section 2.3)."""

import pytest

from repro.core.machine import (
    CM5,
    CommunicationPattern,
    PARAGON,
    SustainabilityBand,
    classify_ratio,
    MachineSpec,
)


class TestParagon:
    def test_nearest_neighbor_ratio_is_8(self):
        ratio = PARAGON.sustainable_ratio(CommunicationPattern.NEAREST_NEIGHBOR)
        assert ratio == pytest.approx(8.0)

    def test_general_ratio_is_64_at_1024_nodes(self):
        ratio = PARAGON.sustainable_ratio(CommunicationPattern.GENERAL, 1024)
        assert ratio == pytest.approx(64.0)

    def test_bisection_links_64(self):
        bandwidth = PARAGON.bisection_limited_bandwidth(1024)
        # 64 links / 512 processors = 1/8 of the 200 MB/s channel.
        assert bandwidth == pytest.approx(25.0)

    def test_bisection_needs_square_mesh(self):
        with pytest.raises(ValueError):
            PARAGON.bisection_limited_bandwidth(1000)


class TestCM5:
    def test_nearest_neighbor_about_50(self):
        ratio = CM5.sustainable_ratio(CommunicationPattern.NEAREST_NEIGHBOR)
        assert ratio == pytest.approx(51.2)

    def test_general_uses_explicit_bandwidth(self):
        ratio = CM5.sustainable_ratio(CommunicationPattern.GENERAL)
        # 128 MFLOPS at 5 MB/s: ~205 FLOPs per double word (the paper's
        # "about 100 FLOPs per word" counts 4-byte words).
        assert ratio == pytest.approx(204.8)


class TestBands:
    def test_boundaries(self):
        assert classify_ratio(5) is SustainabilityBand.EXTREMELY_DIFFICULT
        assert classify_ratio(15) is SustainabilityBand.SUSTAINABLE
        assert classify_ratio(75) is SustainabilityBand.SUSTAINABLE
        assert classify_ratio(76) is SustainabilityBand.EASY

    def test_paper_examples(self):
        assert classify_ratio(200) is SustainabilityBand.EASY  # LU prototypical
        assert classify_ratio(33) is SustainabilityBand.SUSTAINABLE  # FFT
        assert classify_ratio(8) is SustainabilityBand.EXTREMELY_DIFFICULT

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            classify_ratio(-1)


class TestCustomMachine:
    def test_faster_network_raises_sustainability(self):
        fast = MachineSpec("fast", mflops_per_node=200.0, nn_bandwidth_mbps=800.0)
        assert fast.sustainable_ratio(
            CommunicationPattern.NEAREST_NEIGHBOR
        ) == pytest.approx(2.0)

    def test_ratio_scales_with_flops(self):
        a = MachineSpec("a", 100.0, 100.0)
        b = MachineSpec("b", 400.0, 100.0)
        pattern = CommunicationPattern.NEAREST_NEIGHBOR
        assert b.sustainable_ratio(pattern) == pytest.approx(
            4 * a.sustainable_ratio(pattern)
        )
