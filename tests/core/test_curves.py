"""Tests for the MissRateCurve representation."""

import numpy as np
import pytest

from repro.core.curves import MissRateCurve
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import TraceBuilder


@pytest.fixture
def loop_profile():
    builder = TraceBuilder()
    for _ in range(4):
        builder.read_range(0, 64)
    return profile_trace(builder.build())


class TestConstruction:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            MissRateCurve(np.array([1, 2]), np.array([0.5]))

    def test_monotone_capacities_enforced(self):
        with pytest.raises(ValueError):
            MissRateCurve(np.array([64, 32]), np.array([0.5, 0.4]))

    def test_from_profile(self, loop_profile):
        curve = MissRateCurve.from_profile(loop_profile, [256, 512, 1024])
        assert curve.metric == "miss_rate"
        assert curve.ceiling == 1.0
        assert curve.floor == pytest.approx(0.25)

    def test_from_profile_misses_per_flop_needs_flops(self, loop_profile):
        with pytest.raises(ValueError):
            MissRateCurve.from_profile(
                loop_profile, [256], metric="misses_per_flop"
            )

    def test_from_profile_flop_normalization(self, loop_profile):
        curve = MissRateCurve.from_profile(
            loop_profile, [1024], metric="misses_per_flop", flops=512.0
        )
        assert curve.miss_rates[0] == pytest.approx(64 / 512)

    def test_from_model(self):
        curve = MissRateCurve.from_model(
            lambda c: 1.0 if c < 100 else 0.1, [64, 128]
        )
        assert list(curve.miss_rates) == [1.0, 0.1]

    def test_duplicate_capacities_deduped(self):
        curve = MissRateCurve.from_model(lambda c: 0.5, [64, 64, 128])
        assert len(curve.capacities) == 2


class TestQueries:
    def test_value_at_step_interpolation(self):
        curve = MissRateCurve(np.array([64, 256]), np.array([1.0, 0.1]))
        assert curve.value_at(64) == 1.0
        assert curve.value_at(255) == 1.0
        assert curve.value_at(256) == 0.1
        assert curve.value_at(10**9) == 0.1

    def test_value_below_first_sample(self):
        curve = MissRateCurve(np.array([64, 256]), np.array([1.0, 0.1]))
        assert curve.value_at(8) == 1.0

    def test_drop_factor(self):
        curve = MissRateCurve(np.array([64, 256]), np.array([1.0, 0.1]))
        assert curve.drop_factor() == pytest.approx(10.0)

    def test_drop_factor_infinite(self):
        curve = MissRateCurve(np.array([64, 256]), np.array([1.0, 0.0]))
        assert curve.drop_factor() == float("inf")

    def test_knees_delegates(self):
        curve = MissRateCurve(
            np.array([64, 128, 256, 512]), np.array([1.0, 1.0, 0.1, 0.1])
        )
        knees = curve.knees()
        assert len(knees) == 1
        assert knees[0].capacity_bytes == 256

    def test_render_ascii(self):
        curve = MissRateCurve(
            np.array([64, 128, 256, 512]),
            np.array([1.0, 0.7, 0.2, 0.1]),
            label="demo",
        )
        art = curve.render_ascii(width=20, height=6)
        assert "demo" in art
        assert "*" in art

    def test_render_ascii_short(self):
        curve = MissRateCurve(np.array([64]), np.array([1.0]))
        assert "short" in curve.render_ascii()
