"""Tests for the speedup projection."""

import math

import pytest

from repro.apps.fft.model import FFTModel
from repro.apps.lu.model import LUModel
from repro.apps.volrend.model import VolrendModel
from repro.core.machine import CM5, CommunicationPattern
from repro.core.speedup import project_speedup, utilization_summary
from repro.units import GB


class TestProjection:
    def test_single_processor_baseline(self):
        model = LUModel.for_dataset(GB)
        points = project_speedup(model, GB, [1])
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].comm_fraction == pytest.approx(0.0)

    def test_speedup_grows_with_p_when_easy(self):
        model = LUModel.for_dataset(GB)
        points = project_speedup(model, GB, [64, 256, 1024])
        speedups = [p.speedup for p in points]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_lu_prototypical_efficiency_good(self):
        """'A 1024-processor machine with 1 Mbyte of data per processor
        would produce good processor utilization' (Section 3.3)."""
        model = LUModel.for_dataset(GB)
        (point,) = project_speedup(model, GB, [1024])
        assert point.efficiency > 0.8

    def test_fft_communication_bound(self):
        """The FFT's ratio (~33) is below the Paragon's general-traffic
        sustainability at large P: projected efficiency collapses
        relative to LU's."""
        fft = FFTModel.for_dataset(GB)
        lu = LUModel.for_dataset(GB)
        (fft_point,) = project_speedup(
            fft, GB, [1024], pattern=CommunicationPattern.GENERAL
        )
        (lu_point,) = project_speedup(
            lu, GB, [1024], pattern=CommunicationPattern.GENERAL
        )
        assert fft_point.efficiency < lu_point.efficiency
        assert fft_point.comm_fraction > lu_point.comm_fraction

    def test_load_imbalance_caps_speedup(self):
        """Volume rendering at 16K processors: too few rays."""
        model = VolrendModel.for_dataset(GB)
        (coarse,) = project_speedup(model, GB, [1024])
        (fine,) = project_speedup(model, GB, [16384])
        assert fine.efficiency < coarse.efficiency

    def test_serial_fraction_bounds_speedup(self):
        model = LUModel.for_dataset(GB)
        (point,) = project_speedup(
            model, GB, [4096], serial_fraction=lambda p: 0.01
        )
        assert point.speedup < 100.5  # Amdahl bound 1/0.01

    def test_non_square_p_falls_back(self):
        model = LUModel.for_dataset(GB)
        points = project_speedup(
            model, GB, [1000], pattern=CommunicationPattern.GENERAL
        )
        assert points[0].speedup > 1

    def test_cm5_harsher_than_paragon(self):
        model = FFTModel.for_dataset(GB)
        (paragon,) = project_speedup(
            model, GB, [1024], pattern=CommunicationPattern.GENERAL
        )
        (cm5,) = project_speedup(
            model, GB, [1024], machine=CM5,
            pattern=CommunicationPattern.GENERAL,
        )
        assert cm5.efficiency < paragon.efficiency

    def test_summary_renders(self):
        model = LUModel.for_dataset(GB)
        text = utilization_summary(project_speedup(model, GB, [64, 1024]))
        assert "P=" in text and "efficiency" in text
