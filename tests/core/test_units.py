"""Tests for size/unit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    DOUBLE_WORD,
    GB,
    KB,
    MB,
    bytes_from_doublewords,
    doublewords,
    format_size,
    parse_size,
)


class TestConversions:
    def test_doublewords(self):
        assert doublewords(80) == 10
        assert bytes_from_doublewords(10) == 80

    def test_roundtrip(self):
        assert bytes_from_doublewords(doublewords(1234.0)) == 1234.0

    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert DOUBLE_WORD == 8


class TestFormat:
    def test_bytes(self):
        assert format_size(260) == "260 B"

    def test_kb(self):
        assert format_size(80 * KB) == "80.0 KB"

    def test_mb(self):
        assert format_size(1.5 * MB) == "1.5 MB"

    def test_gb(self):
        assert format_size(GB) == "1.0 GB"

    def test_tb(self):
        assert format_size(18 * 1024 * GB) == "18.0 TB"


class TestParse:
    def test_plain_bytes(self):
        assert parse_size("512") == 512

    def test_kb(self):
        assert parse_size("64KB") == 64 * KB

    def test_spaces_and_case(self):
        assert parse_size("1 mb") == MB

    def test_b_suffix(self):
        assert parse_size("100B") == 100

    @given(st.integers(min_value=1, max_value=10**6))
    def test_parse_format_consistency(self, kbytes):
        text = f"{kbytes}KB"
        assert parse_size(text) == kbytes * KB
