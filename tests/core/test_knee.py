"""Tests for knee detection on miss-rate curves."""

import numpy as np
import pytest

from repro.core.curves import MissRateCurve
from repro.core.knee import Knee, find_knees, match_knee


def step_curve(capacities, plateaus):
    """Build a curve from (threshold, rate) plateau pairs."""
    def model(cache_bytes):
        rate = plateaus[0][1]
        for threshold, value in plateaus:
            if cache_bytes >= threshold:
                rate = value
        return rate
    return MissRateCurve.from_model(model, capacities)


CAPS = [2**k for k in range(4, 16)]


class TestFindKnees:
    def test_single_step(self):
        curve = step_curve(CAPS, [(0, 1.0), (1024, 0.1)])
        knees = find_knees(curve)
        assert len(knees) == 1
        assert knees[0].capacity_bytes == 1024
        assert knees[0].miss_rate_before == pytest.approx(1.0)
        assert knees[0].miss_rate_after == pytest.approx(0.1)

    def test_two_steps(self):
        curve = step_curve(CAPS, [(0, 1.0), (256, 0.5), (8192, 0.05)])
        knees = find_knees(curve)
        assert [k.capacity_bytes for k in knees] == [256, 8192]

    def test_flat_curve_has_no_knees(self):
        curve = step_curve(CAPS, [(0, 0.3)])
        assert find_knees(curve) == []

    def test_small_drops_ignored(self):
        # 10% relative drops stay below the default 25% threshold.
        rates = np.linspace(1.0, 0.9, len(CAPS))
        curve = MissRateCurve(np.array(CAPS), rates)
        assert find_knees(curve) == []

    def test_adjacent_steep_steps_merged(self):
        rates = np.array([1.0] * 4 + [0.5, 0.2, 0.1] + [0.1] * 5)
        curve = MissRateCurve(np.array(CAPS), rates)
        knees = find_knees(curve)
        assert len(knees) == 1
        assert knees[0].miss_rate_before == pytest.approx(1.0)
        assert knees[0].miss_rate_after == pytest.approx(0.1)

    def test_merge_disabled(self):
        rates = np.array([1.0] * 4 + [0.5, 0.2, 0.1] + [0.1] * 5)
        curve = MissRateCurve(np.array(CAPS), rates)
        knees = find_knees(curve, merge_adjacent=False)
        assert len(knees) == 3

    def test_abs_threshold_suppresses_noise_floor(self):
        rates = np.array([1.0] * 6 + [0.002, 0.001] + [0.001] * 4)
        curve = MissRateCurve(np.array(CAPS), rates)
        knees = find_knees(curve, abs_threshold=0.01)
        # The big 1.0 -> 0.002 drop survives; the 0.002 -> 0.001 does not.
        assert len(knees) == 1

    def test_short_curve(self):
        curve = MissRateCurve(np.array([64]), np.array([1.0]))
        assert find_knees(curve) == []

    def test_knee_properties(self):
        knee = Knee(capacity_bytes=1024, miss_rate_before=0.4, miss_rate_after=0.1)
        assert knee.drop == pytest.approx(0.3)
        assert knee.drop_ratio == pytest.approx(4.0)
        assert "1.0 KB" in str(knee)

    def test_drop_ratio_infinite_at_zero_floor(self):
        knee = Knee(1024, 0.4, 0.0)
        assert knee.drop_ratio == float("inf")


class TestMatchKnee:
    def test_picks_nearest_in_log_space(self):
        knees = [Knee(256, 1.0, 0.5), Knee(8192, 0.5, 0.05)]
        assert match_knee(knees, 300).capacity_bytes == 256
        assert match_knee(knees, 6000).capacity_bytes == 8192

    def test_tolerance_enforced(self):
        knees = [Knee(256, 1.0, 0.5)]
        with pytest.raises(LookupError):
            match_knee(knees, 100_000, tolerance_factor=4.0)

    def test_empty_raises(self):
        with pytest.raises(LookupError):
            match_knee([], 1024)
