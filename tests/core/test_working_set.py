"""Tests for working-set hierarchy records."""

import pytest

from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import KB, MB


def make_hierarchy():
    hierarchy = WorkingSetHierarchy(
        application="demo",
        problem="toy",
        dataset_bytes=64 * MB,
        per_processor_bytes=MB,
    )
    hierarchy.add(WorkingSet(2, "block", 2 * KB, 0.06, important=True))
    hierarchy.add(WorkingSet(1, "columns", 256, 0.5))
    hierarchy.add(WorkingSet(3, "partition", MB, 0.001))
    return hierarchy


class TestHierarchy:
    def test_levels_sorted(self):
        hierarchy = make_hierarchy()
        assert [ws.level for ws in hierarchy.levels] == [1, 2, 3]

    def test_level_lookup(self):
        assert make_hierarchy().level(2).name == "block"

    def test_level_missing(self):
        with pytest.raises(KeyError):
            make_hierarchy().level(9)

    def test_important_working_set(self):
        assert make_hierarchy().important_working_set.level == 2

    def test_no_important_raises(self):
        hierarchy = WorkingSetHierarchy("x", "y")
        hierarchy.add(WorkingSet(1, "a", 100, 0.5))
        with pytest.raises(ValueError):
            hierarchy.important_working_set

    def test_cache_recommendation_applies_slack(self):
        hierarchy = make_hierarchy()
        assert hierarchy.cache_size_recommendation(slack=2.0) == pytest.approx(4 * KB)

    def test_cache_recommendation_rejects_sub_unity_slack(self):
        with pytest.raises(ValueError):
            make_hierarchy().cache_size_recommendation(slack=0.5)

    def test_bimodality(self):
        """The paper's observation: one huge working set dwarfs the
        small ones."""
        assert make_hierarchy().is_bimodal()

    def test_not_bimodal_when_sizes_close(self):
        hierarchy = WorkingSetHierarchy("x", "y")
        hierarchy.add(WorkingSet(1, "a", 1000, 0.5))
        hierarchy.add(WorkingSet(2, "b", 2000, 0.1))
        assert not hierarchy.is_bimodal()

    def test_single_level_not_bimodal(self):
        hierarchy = WorkingSetHierarchy("x", "y")
        hierarchy.add(WorkingSet(1, "a", 1000, 0.5))
        assert not hierarchy.is_bimodal()

    def test_describe_mentions_everything(self):
        text = make_hierarchy().describe()
        assert "demo" in text
        assert "lev2WS" in text
        assert "1.0 MB" in text


class TestWorkingSet:
    def test_str_marks_important(self):
        ws = WorkingSet(2, "block", 2048, 0.06, important=True)
        assert "*" in str(ws)

    def test_str_plain(self):
        ws = WorkingSet(1, "cols", 256, 0.5)
        assert "*" not in str(ws).split(":")[0]
