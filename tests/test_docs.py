"""Documentation consistency checks: the README, DESIGN.md and
EXPERIMENTS.md must reference modules and experiments that actually
exist."""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestReadme:
    def test_experiment_modules_importable(self):
        text = _read("README.md")
        for match in set(re.findall(r"repro\.experiments\.(\w+)", text)):
            importlib.import_module(f"repro.experiments.{match}")

    def test_example_scripts_exist(self):
        text = _read("README.md")
        for match in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (REPO / "examples" / match).exists(), match

    def test_linked_docs_exist(self):
        text = _read("README.md")
        for match in set(re.findall(r"\]\(([\w/]+\.md)\)", text)):
            assert (REPO / match).exists(), match


class TestDesign:
    def test_bench_files_exist(self):
        text = _read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/(\w+\.py)", text)):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_experiment_files_exist(self):
        text = _read("DESIGN.md")
        for match in set(re.findall(r"experiments/(\w+\.py)", text)):
            assert (REPO / "src/repro/experiments" / match).exists(), match

    def test_paper_identity_confirmed(self):
        assert "No title collision" in _read("DESIGN.md")


class TestExperimentsDoc:
    def test_every_cited_experiment_exists(self):
        text = _read("EXPERIMENTS.md")
        for match in set(re.findall(r"— `(\w+)`", text)):
            importlib.import_module(f"repro.experiments.{match}")

    def test_all_registered_experiments_documented(self):
        from repro.experiments.__main__ import EXPERIMENTS

        design = _read("DESIGN.md")
        for module, _ in EXPERIMENTS.values():
            stem = module.__name__.rsplit(".", 1)[-1]
            assert stem in design, f"{stem} missing from DESIGN.md"


class TestPaperMap:
    def test_cited_test_files_exist(self):
        text = _read("docs/PAPER_MAP.md")
        for match in set(re.findall(r"tests/[\w/]+\.py", text)):
            assert (REPO / match).exists(), match

    def test_cited_source_files_exist(self):
        text = _read("docs/PAPER_MAP.md")
        for match in set(re.findall(r"`(mem|core|apps)/([\w/{},.]+)\.py`", text)):
            prefix, rest = match
            if "{" in rest:  # brace shorthand like {octree,force}
                continue
            assert (
                REPO / "src/repro" / prefix / f"{rest}.py"
            ).exists(), f"{prefix}/{rest}.py"
