"""Property-based tests for the renderer and its acceleration
structures: the octree must never change an image, on any volume."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.volrend.octree import MinMaxOctree
from repro.apps.volrend.render import Camera, RayCaster
from repro.apps.volrend.volume import Volume


@st.composite
def random_volumes(draw):
    """Small random volumes with a mix of transparent and opaque runs."""
    n = draw(st.integers(min_value=4, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    sparsity = draw(st.floats(min_value=0.3, max_value=0.95))
    rng = np.random.default_rng(seed)
    opacities = rng.uniform(0.0, 1.0, size=(n, n, n))
    mask = rng.uniform(0.0, 1.0, size=(n, n, n)) < sparsity
    opacities[mask] = 0.0
    return Volume(opacities=opacities)


class TestOctreeNeverChangesImages:
    @given(random_volumes(), st.floats(min_value=0.0, max_value=3.1))
    @settings(max_examples=25, deadline=None)
    def test_identical_rendering(self, volume, angle):
        n = volume.shape[0]
        camera = Camera(angle=angle, image_size=n)
        accelerated = RayCaster(volume, MinMaxOctree(volume)).render(camera)
        reference = RayCaster(volume, None).render(camera)
        np.testing.assert_array_equal(accelerated, reference)

    @given(random_volumes())
    @settings(max_examples=25, deadline=None)
    def test_skip_distance_sound(self, volume):
        """Every position the octree lets a ray skip is exactly
        transparent under trilinear interpolation."""
        tree = MinMaxOctree(volume)
        n = volume.shape[0]
        rng = np.random.default_rng(0)
        direction = rng.standard_normal(3)
        direction /= np.linalg.norm(direction)
        for _ in range(20):
            position = rng.uniform(0, n - 1, size=3)
            skip = tree.skip_distance(*position, direction)
            if skip <= 0.0:
                continue  # region interesting: nothing is claimed
            steps = int(skip)
            for m in range(min(steps, 8) + 1):
                x, y, z = position + m * direction
                if 0 <= x <= n - 1 and 0 <= y <= n - 1 and 0 <= z <= n - 1:
                    assert volume.trilinear(x, y, z) == 0.0

    @given(random_volumes())
    @settings(max_examples=20, deadline=None)
    def test_minmax_invariants(self, volume):
        tree = MinMaxOctree(volume)
        for node in tree.nodes:
            assert node.min_opacity <= node.max_opacity
            for child in node.children:
                assert child.min_opacity >= node.min_opacity - 1e-12
                assert child.max_opacity <= node.max_opacity + 1e-12

    @given(random_volumes())
    @settings(max_examples=20, deadline=None)
    def test_children_partition_parent(self, volume):
        """Children tile the parent's voxel box exactly."""
        tree = MinMaxOctree(volume)
        for node in tree.nodes:
            if node.is_leaf:
                continue
            parent_voxels = (
                (node.hi[0] - node.lo[0])
                * (node.hi[1] - node.lo[1])
                * (node.hi[2] - node.lo[2])
            )
            child_voxels = sum(
                (c.hi[0] - c.lo[0]) * (c.hi[1] - c.lo[1]) * (c.hi[2] - c.lo[2])
                for c in node.children
            )
            assert child_voxels == parent_voxels


class TestCameraGeometry:
    @given(
        st.floats(min_value=0.0, max_value=6.28),
        st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_rays_parallel_and_unit(self, angle, size):
        camera = Camera(angle=angle, image_size=size)
        _, d0 = camera.ray((16, 16, 16), 0, 0)
        _, d1 = camera.ray((16, 16, 16), size - 1, size - 1)
        np.testing.assert_allclose(d0, d1)  # orthographic
        assert np.linalg.norm(d0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=6.28))
    @settings(max_examples=30, deadline=None)
    def test_center_ray_passes_near_volume_center(self, angle):
        shape = (17, 17, 17)
        camera = Camera(angle=angle, image_size=17)
        origin, direction = camera.ray(shape, 8, 8)
        center = np.array([8.5, 8.5, 8.5])
        to_center = center - origin
        distance = np.linalg.norm(
            to_center - (to_center @ direction) * direction
        )
        assert distance < 1.5
