"""Tests for unstructured meshes, RCB partitioning, and the Section 4.3
penalty measurements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cg.solver import conjugate_gradient
from repro.apps.cg.unstructured import (
    clustered_mesh,
    communication_fraction,
    delaunay_mesh,
    edge_cut,
    random_partition,
    recursive_coordinate_bisection,
    regular_mesh,
    work_imbalance,
)
from repro.experiments import cg_unstructured


class TestMeshes:
    def test_delaunay_symmetric_adjacency(self):
        mesh = delaunay_mesh(200, seed=1)
        for i, adj in enumerate(mesh.neighbors):
            for j in adj:
                assert i in mesh.neighbors[j]

    def test_delaunay_connected_degrees(self):
        mesh = delaunay_mesh(200, seed=2)
        assert all(len(adj) >= 2 for adj in mesh.neighbors)
        # Planar triangulations average degree < 6.
        assert mesh.degrees().mean() < 6.5

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            delaunay_mesh(3)

    def test_regular_mesh_structure(self):
        mesh = regular_mesh(5)
        assert mesh.num_points == 25
        assert mesh.num_edges == 2 * 5 * 4  # horizontal + vertical

    def test_clustered_mesh_density_contrast(self):
        mesh = clustered_mesh(600, seed=3)
        # Nearest-neighbour distances vary much more than uniform.
        from scipy.spatial import cKDTree

        tree = cKDTree(mesh.points)
        dists, _ = tree.query(mesh.points, k=2)
        nn = dists[:, 1]
        uniform = delaunay_mesh(600, seed=3)
        tree_u = cKDTree(uniform.points)
        dists_u, _ = tree_u.query(uniform.points, k=2)
        nn_u = dists_u[:, 1]
        assert nn.std() / nn.mean() > nn_u.std() / nn_u.mean()

    def test_clustered_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            clustered_mesh(100, cluster_fraction=1.5)

    def test_matvec_spd(self):
        mesh = delaunay_mesh(100, seed=4)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(mesh.num_points)
        y = rng.standard_normal(mesh.num_points)
        assert np.dot(mesh.laplacian_matvec(x), y) == pytest.approx(
            np.dot(x, mesh.laplacian_matvec(y))
        )
        assert np.dot(x, mesh.laplacian_matvec(x)) > 0

    def test_cg_solves_unstructured(self):
        mesh = delaunay_mesh(150, seed=5)
        b = np.random.default_rng(1).standard_normal(mesh.num_points)
        result = conjugate_gradient(mesh.laplacian_matvec, b, tol=1e-10)
        assert result.converged


class TestRCB:
    def test_partition_counts_balanced(self):
        mesh = delaunay_mesh(512, seed=6)
        assignment = recursive_coordinate_bisection(mesh.points, 8)
        counts = np.bincount(assignment, minlength=8)
        assert counts.max() - counts.min() <= 1

    def test_all_parts_used(self):
        mesh = delaunay_mesh(256, seed=7)
        assignment = recursive_coordinate_bisection(mesh.points, 16)
        assert set(assignment) == set(range(16))

    def test_rejects_non_power_of_two(self):
        mesh = delaunay_mesh(64, seed=8)
        with pytest.raises(ValueError):
            recursive_coordinate_bisection(mesh.points, 6)

    def test_rcb_beats_random_cut(self):
        mesh = delaunay_mesh(800, seed=9)
        rcb = recursive_coordinate_bisection(mesh.points, 16)
        rand = random_partition(mesh.num_points, 16, seed=9)
        assert edge_cut(mesh, rcb) < edge_cut(mesh, rand) / 3

    @given(st.integers(min_value=64, max_value=400), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_rcb_is_partition(self, n, seed):
        mesh = delaunay_mesh(n, seed=seed)
        assignment = recursive_coordinate_bisection(mesh.points, 4)
        assert assignment.shape == (n,)
        assert assignment.min() >= 0 and assignment.max() <= 3


class TestMetrics:
    def test_single_partition_no_cut(self):
        mesh = delaunay_mesh(100, seed=10)
        assignment = np.zeros(100, dtype=np.int64)
        assert edge_cut(mesh, assignment) == 0
        assert communication_fraction(mesh, assignment) == 0.0
        assert work_imbalance(mesh, assignment) == pytest.approx(1.0)

    def test_remote_weight_increases_imbalance(self):
        mesh = clustered_mesh(400, seed=11)
        assignment = recursive_coordinate_bisection(mesh.points, 8)
        plain = work_imbalance(mesh, assignment)
        weighted = work_imbalance(mesh, assignment, remote_edge_weight=6.0)
        assert weighted >= plain


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return cg_unstructured.run(side=32, num_parts=8)

    def test_unstructured_communicates_more(self, result):
        penalty = result.comparison(
            "communication penalty: unstructured / regular"
        ).measured_value
        assert penalty > 1.1

    def test_clustered_worse_than_uniform(self, result):
        uniform = result.comparison(
            "communication penalty: unstructured / regular"
        ).measured_value
        clustered = result.comparison(
            "communication penalty: clustered / regular"
        ).measured_value
        assert clustered > uniform

    def test_random_partition_catastrophic(self, result):
        penalty = result.comparison(
            "random-partition communication penalty"
        ).measured_value
        assert penalty > 3

    def test_solver_converges(self, result):
        assert result.comparison(
            "CG converges on the unstructured operator"
        ).measured_value == 1.0
