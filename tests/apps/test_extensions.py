"""Tests for the extension kernels: blocked Cholesky, 2-D/3-D FFT, and
the CG blocked sweep."""

import numpy as np
import pytest

from repro.apps.cg.trace import CGTraceGenerator
from repro.apps.fft.transform import fft2, fft3
from repro.apps.lu.cholesky import blocked_cholesky, flop_count, random_spd
from repro.mem.stack_distance import profile_trace


class TestBlockedCholesky:
    @pytest.mark.parametrize("n,block", [(16, 4), (32, 8), (48, 16)])
    def test_reconstruction(self, n, block):
        a = random_spd(n, seed=n)
        lower = blocked_cholesky(a.copy(), block)
        np.testing.assert_allclose(lower @ lower.T, a, atol=1e-8)

    def test_matches_numpy(self):
        a = random_spd(32, seed=5)
        lower = blocked_cholesky(a.copy(), 8)
        np.testing.assert_allclose(
            np.tril(lower), np.linalg.cholesky(a), atol=1e-8
        )

    def test_lower_triangular(self):
        a = random_spd(24, seed=1)
        lower = blocked_cholesky(a.copy(), 8)
        np.testing.assert_allclose(np.triu(lower, 1), 0.0, atol=1e-12)

    def test_rejects_non_spd(self):
        bad = -np.eye(8)
        with pytest.raises(np.linalg.LinAlgError):
            blocked_cholesky(bad, 4)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            blocked_cholesky(random_spd(10), 4)

    def test_flop_count_half_of_lu(self):
        from repro.apps.lu.factor import flop_count as lu_flops

        assert flop_count(100) == pytest.approx(lu_flops(100) / 2)


class TestMultiDimFFT:
    def test_fft2_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 32)) + 1j * rng.standard_normal((16, 32))
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-9)

    def test_fft3_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 4, 16))
        np.testing.assert_allclose(fft3(x), np.fft.fftn(x), atol=1e-9)

    def test_fft2_rejects_1d(self):
        with pytest.raises(ValueError):
            fft2(np.zeros(8))

    def test_fft2_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft2(np.zeros((6, 8)))

    def test_fft3_rejects_2d(self):
        with pytest.raises(ValueError):
            fft3(np.zeros((4, 4)))


class TestCGBlockedSweep:
    def test_blocked_requires_2d(self):
        gen = CGTraceGenerator(n=8, num_processors=8, dims=3)
        with pytest.raises(ValueError):
            gen.trace_for_processor(0, tile=4)

    def test_blocked_rejects_bad_tile(self):
        gen = CGTraceGenerator(n=16, num_processors=4)
        with pytest.raises(ValueError):
            gen.trace_for_processor(0, tile=0)

    def test_same_points_swept(self):
        """Blocking reorders the sweep but touches the same data with
        the same flop count."""
        plain = CGTraceGenerator(n=32, num_processors=4)
        t_plain = plain.trace_for_processor(0, iterations=1)
        blocked = CGTraceGenerator(n=32, num_processors=4)
        t_blocked = blocked.trace_for_processor(0, iterations=1, tile=4)
        assert plain.flops == blocked.flops
        assert t_plain.footprint() == t_blocked.footprint()
        assert len(t_plain) == len(t_blocked)

    def test_blocking_pins_lev1_knee(self):
        """The Section 4.2 claim: blocking makes lev1WS constant."""
        knees = {}
        for label, tile in (("plain", None), ("blocked", 8)):
            gen = CGTraceGenerator(n=128, num_processors=4)
            trace = gen.trace_for_processor(0, iterations=2, tile=tile)
            profile = profile_trace(trace, warmup=len(trace) // 2)
            flops = gen.flops / 2
            plateau = profile.misses_at(gen.local_bytes // 4 // 8) / flops
            capacity = 128
            while profile.misses_at(capacity // 8) / flops > 1.1 * plateau:
                capacity *= 2
            knees[label] = capacity
        assert knees["blocked"] <= knees["plain"] / 4
