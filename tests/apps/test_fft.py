"""Tests for FFT kernels, trace generator and model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fft.model import FFTModel
from repro.apps.fft.trace import FFTTraceGenerator
from repro.apps.fft.transform import (
    fft,
    flop_count,
    four_step_fft,
    ifft,
    stage_structure,
)
from repro.core.grain import GrainConfig
from repro.mem.stack_distance import StackDistanceProfiler
from repro.units import GB, MB


class TestKernels:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256, 1024])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    def test_real_input(self):
        x = np.arange(16, dtype=float)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-10)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft(np.zeros(12))

    def test_ifft_roundtrip(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-10)

    @pytest.mark.parametrize("n1", [2, 8, 16, 64])
    def test_four_step(self, n1):
        rng = np.random.default_rng(n1)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        np.testing.assert_allclose(four_step_fft(x, n1), np.fft.fft(x), atol=1e-9)

    def test_four_step_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            four_step_fft(np.zeros(16, dtype=complex), 3)

    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_parseval(self, log_n, seed):
        """Energy conservation (Parseval): ||X||^2 = n ||x||^2."""
        n = 2**log_n
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        transformed = fft(x)
        assert np.sum(np.abs(transformed) ** 2) == pytest.approx(
            n * np.sum(np.abs(x) ** 2), rel=1e-9
        )

    def test_linearity(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        np.testing.assert_allclose(
            fft(2 * x + 3 * y), 2 * fft(x) + 3 * fft(y), atol=1e-10
        )

    def test_flop_count(self):
        assert flop_count(1024) == 5 * 1024 * 10


class TestStageStructure:
    def test_prototypical_quantization(self):
        """N=64M, D=64K: 26 levels = 16 + 10 (Section 5.3)."""
        num, stages = stage_structure(2**26, 2**16)
        assert num == 2
        assert stages == [16, 10]

    def test_even_split(self):
        num, stages = stage_structure(2**20, 2**10)
        assert stages == [10, 10]

    def test_single_stage_when_local(self):
        num, stages = stage_structure(2**10, 2**10)
        assert num == 1

    def test_levels_sum(self):
        _, stages = stage_structure(2**26, 2**12)
        assert sum(stages) == 26


class TestTraceGenerator:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FFTTraceGenerator(n=1000, num_processors=4)

    def test_rejects_too_small_partition(self):
        with pytest.raises(ValueError):
            FFTTraceGenerator(n=16, num_processors=16, internal_radix=8)

    def test_flops_accounting(self):
        gen = FFTTraceGenerator(n=2**10, num_processors=1, internal_radix=2)
        gen.trace_for_processor(0)
        assert gen.flops == pytest.approx(flop_count(2**10))

    def test_radix_blocking_shrinks_trace(self):
        """Higher internal radix means fewer passes over the data."""
        small = FFTTraceGenerator(n=2**10, num_processors=1, internal_radix=8)
        t_small = small.trace_for_processor(0)
        base = FFTTraceGenerator(n=2**10, num_processors=1, internal_radix=2)
        t_base = base.trace_for_processor(0)
        # Radix-8 performs 3 levels per pass but re-reads inputs per
        # output; compare written volume instead, which counts passes.
        assert t_small.write_count < t_base.write_count

    def test_paper_plateaus(self):
        """The Figure 5 plateaus at reduced scale, within quantization."""
        expected = {2: 0.6, 8: 0.25, 32: 0.15}
        for radix, paper in expected.items():
            gen = FFTTraceGenerator(
                n=2**12, num_processors=4, internal_radix=radix
            )
            trace = gen.trace_for_processor(0)
            profile = StackDistanceProfiler(count_reads_only=True).profile(trace)
            model = FFTModel(n=2**12, num_processors=4, internal_radix=radix)
            plateau = profile.misses_at(
                int(4 * model.lev1_bytes()) // 8
            ) / gen.flops
            assert plateau == pytest.approx(paper, rel=0.85)
            assert plateau >= paper * 0.8  # quantization only adds misses

    def test_sub_lev1_blowup_for_radix_32(self):
        gen = FFTTraceGenerator(n=2**12, num_processors=4, internal_radix=32)
        trace = gen.trace_for_processor(0)
        profile = StackDistanceProfiler(count_reads_only=True).profile(trace)
        model = FFTModel(n=2**12, num_processors=4, internal_radix=32)
        tiny = profile.misses_at(int(model.lev1_bytes() / 8) // 8) / gen.flops
        fitted = profile.misses_at(int(4 * model.lev1_bytes()) // 8) / gen.flops
        assert tiny > 4 * fitted


class TestModel:
    def test_plateau_formula_matches_paper(self):
        model = FFTModel()
        assert model.plateau_after_lev1(2) == pytest.approx(0.6)
        assert model.plateau_after_lev1(8) == pytest.approx(0.25)
        assert model.plateau_after_lev1(32) == pytest.approx(0.1575, abs=0.01)

    def test_exact_ratio_prototypical(self):
        """N=64M, P=1024: ratio 33 (Section 5.3)."""
        model = FFTModel()
        assert model.exact_ratio(2**26, 1024) == pytest.approx(32.5)

    def test_quantization_keeps_ratio_on_coarser_machine(self):
        model = FFTModel()
        assert model.exact_ratio(2**26, 64) == model.exact_ratio(2**26, 1024)

    def test_optimistic_ratio(self):
        model = FFTModel()
        assert model.optimistic_ratio(2**16) == pytest.approx(40.0)

    def test_grain_for_ratio_60_is_about_270mb(self):
        model = FFTModel()
        assert model.grain_for_ratio(60.0) == pytest.approx(256 * MB, rel=0.3)

    def test_grain_for_ratio_100_is_terabytes(self):
        model = FFTModel()
        assert model.grain_for_ratio(100.0) > 10 * 1024 * GB

    def test_lev1_depends_on_radix_only(self):
        a = FFTModel(n=2**20, num_processors=64, internal_radix=8)
        b = FFTModel(n=2**26, num_processors=4096, internal_radix=8)
        assert a.lev1_bytes() == b.lev1_bytes()

    def test_for_dataset_prototypical(self):
        model = FFTModel.for_dataset(GB)
        assert model.n == 2**26  # 64M complex points in 1 GB

    def test_working_sets(self):
        hierarchy = FFTModel().working_sets()
        assert hierarchy.important_working_set.level == 1
        assert hierarchy.is_bimodal()

    def test_miss_rate_monotone(self):
        model = FFTModel(n=2**20, num_processors=64, internal_radix=8)
        caps = [2**k for k in range(5, 26)]
        rates = [model.miss_rate_model(c) for c in caps]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
