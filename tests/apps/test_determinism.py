"""Determinism audit: every app trace generator is a pure function of
its seed, down to the serialized bytes.

The result-integrity layer leans on this everywhere — the fuzzer's
baseline, the differential corpus, and checkpoint resume all assume a
regenerated trace is *identical*, not merely statistically similar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.tracefile import save_trace
from repro.validate.corpus import CORPUS


def trace_bytes(trace, tmp_path, name):
    """Canonical serialized form (checksummed .npz) of a trace."""
    path = tmp_path / name
    save_trace(path, trace, metadata={"seed": 0})
    return path.read_bytes()


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_same_seed_regenerates_identical_bytes(entry, tmp_path):
    first = trace_bytes(entry.build(), tmp_path, "first.npz")
    second = trace_bytes(entry.build(), tmp_path, "second.npz")
    assert first == second


class TestSeedSensitivity:
    """Seeds must actually steer the seeded generators (the dense
    kernels — LU, CG, FFT — trace fixed data layouts, so their access
    streams are legitimately seed-independent; the seed feeds their
    self-check data instead)."""

    def test_barnes_hut_seed_changes_trace(self):
        from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator

        a = BarnesHutTraceGenerator.from_plummer(
            24, seed=0, num_processors=4
        ).trace_for_processor(0)
        b = BarnesHutTraceGenerator.from_plummer(
            24, seed=1, num_processors=4
        ).trace_for_processor(0)
        assert not np.array_equal(a.addrs, b.addrs)

    def test_volrend_seed_changes_volume(self):
        # The volrend seed textures the phantom's interior; the shell
        # dominates ray termination, so the access *stream* can be
        # identical across seeds — the data it reads must not be.
        from repro.apps.volrend.volume import synthetic_head

        a = synthetic_head(16, seed=0).opacities
        b = synthetic_head(16, seed=1).opacities
        assert not np.array_equal(a, b)


class TestSeedAttribute:
    """Every generator records the seed it was built with, so artifact
    metadata can carry it."""

    def test_all_generators_expose_seed(self):
        from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
        from repro.apps.cg.trace import CGTraceGenerator
        from repro.apps.fft.trace import FFTTraceGenerator
        from repro.apps.lu.trace import LUTraceGenerator
        from repro.apps.volrend.trace import VolrendTraceGenerator

        assert LUTraceGenerator(16, 4, 4, seed=3).seed == 3
        assert CGTraceGenerator(8, 4, seed=4).seed == 4
        assert FFTTraceGenerator(64, 2, seed=5).seed == 5
        assert (
            BarnesHutTraceGenerator.from_plummer(
                24, seed=6, num_processors=4
            ).seed
            == 6
        )
        assert (
            VolrendTraceGenerator.from_synthetic_head(
                8, seed=7, num_processors=4
            ).seed
            == 7
        )
