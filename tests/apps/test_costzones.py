"""Tests for costzones partitioning and the ray-stealing experiment."""

import numpy as np
import pytest

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.force import WalkStats, accelerate_body
from repro.apps.barnes_hut.octree import Octree
from repro.apps.barnes_hut.partition import (
    costzone_partition,
    morton_order,
    morton_partition,
)
from repro.experiments import volrend_stealing


def per_body_interaction_costs(bodies, theta=1.0):
    tree = Octree(bodies)
    tree.compute_moments()
    costs = np.zeros(len(bodies))
    for i in range(len(bodies)):
        stats = WalkStats()
        accelerate_body(tree, i, theta, stats=stats)
        costs[i] = stats.interactions
    return costs


class TestCostzones:
    @pytest.fixture(scope="class")
    def setup(self):
        bodies = plummer_model(256, seed=13)
        costs = per_body_interaction_costs(bodies)
        return bodies, costs

    def test_is_a_partition(self, setup):
        bodies, costs = setup
        parts = costzone_partition(bodies, costs, 8)
        combined = np.concatenate(parts)
        assert sorted(combined) == list(range(len(bodies)))

    def test_preserves_morton_contiguity(self, setup):
        bodies, costs = setup
        parts = costzone_partition(bodies, costs, 8)
        order = list(morton_order(bodies))
        flattened = [int(i) for part in parts for i in part]
        assert flattened == order

    def test_balances_cost_better_than_counts(self, setup):
        """The point of costzones: equal work, not equal counts."""
        bodies, costs = setup
        count_parts = morton_partition(bodies, 8)
        cost_parts = costzone_partition(bodies, costs, 8)

        def imbalance(parts):
            work = np.array([costs[p].sum() for p in parts])
            return work.max() / work.mean()

        assert imbalance(cost_parts) <= imbalance(count_parts)
        assert imbalance(cost_parts) < 1.25

    def test_zero_costs_fall_back_to_counts(self, setup):
        bodies, _ = setup
        parts = costzone_partition(bodies, np.zeros(len(bodies)), 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_negative_costs(self, setup):
        bodies, _ = setup
        with pytest.raises(ValueError):
            costzone_partition(bodies, -np.ones(len(bodies)), 4)

    def test_rejects_wrong_length(self, setup):
        bodies, _ = setup
        with pytest.raises(ValueError):
            costzone_partition(bodies, np.ones(7), 4)


class TestVolrendStealingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return volrend_stealing.run(n=32, processor_counts=(4, 16, 64))

    def test_coarse_grain_little_stealing(self, result):
        fraction = result.comparison("steal fraction, coarse grain").measured_value
        assert fraction < 0.08

    def test_fine_grain_much_stealing(self, result):
        coarse = result.comparison("steal fraction, coarse grain").measured_value
        fine = result.comparison("steal fraction, fine grain").measured_value
        assert fine > 2 * coarse

    def test_stealing_recovers_balance(self, result):
        gained = result.comparison(
            "stealing recovers efficiency (fine grain)"
        ).measured_value
        assert gained > 0.1
