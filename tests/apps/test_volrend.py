"""Tests for the volume rendering substrate: volumes, octree, renderer,
partitioning/stealing, trace and model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.volrend.model import VolrendModel
from repro.apps.volrend.octree import MinMaxOctree
from repro.apps.volrend.partition import (
    ImagePartition,
    simulate_ray_stealing,
)
from repro.apps.volrend.render import Camera, RayCaster, render_frame
from repro.apps.volrend.trace import VolrendTraceGenerator
from repro.apps.volrend.volume import (
    Volume,
    opaque_volume,
    synthetic_head,
    transparent_volume,
)
from repro.core.grain import GrainConfig
from repro.units import GB, KB


class TestVolume:
    def test_opacity_bounds_enforced(self):
        with pytest.raises(ValueError):
            Volume(opacities=np.full((2, 2, 2), 1.5))

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            Volume(opacities=np.zeros((4, 4)))

    def test_voxel_index_row_major(self):
        volume = transparent_volume(4)
        assert volume.voxel_index(1, 2, 3) == 1 * 16 + 2 * 4 + 3

    def test_data_bytes_two_per_voxel(self):
        assert transparent_volume(4).data_bytes == 64 * 2

    def test_trilinear_at_grid_points(self, head_volume):
        for (i, j, k) in [(0, 0, 0), (3, 5, 7), (10, 10, 10)]:
            assert head_volume.trilinear(i, j, k) == pytest.approx(
                float(head_volume.opacities[i, j, k])
            )

    def test_trilinear_outside_is_zero(self, head_volume):
        assert head_volume.trilinear(-1.0, 0, 0) == 0.0
        assert head_volume.trilinear(0, 0, 1000.0) == 0.0

    @given(
        st.floats(min_value=0, max_value=22.9),
        st.floats(min_value=0, max_value=22.9),
        st.floats(min_value=0, max_value=22.9),
    )
    @settings(max_examples=80, deadline=None)
    def test_trilinear_within_corner_bounds(self, x, y, z):
        volume = synthetic_head(24)
        value = volume.trilinear(x, y, z)
        corners = [
            float(volume.opacities[c]) for c in volume.corner_voxels(x, y, z)
        ]
        assert min(corners) - 1e-9 <= value <= max(corners) + 1e-9

    def test_corner_voxels_count(self, head_volume):
        assert len(head_volume.corner_voxels(1.5, 2.5, 3.5)) == 8

    def test_phantom_structure(self):
        volume = synthetic_head(32)
        # Corners (air) transparent; center (brain) mildly opaque.
        assert volume.opacities[0, 0, 0] == 0.0
        assert 0 < volume.opacities[16, 16, 16] < 0.2

    def test_phantom_deterministic(self):
        a = synthetic_head(16, seed=1).opacities
        b = synthetic_head(16, seed=1).opacities
        np.testing.assert_array_equal(a, b)


class TestMinMaxOctree:
    def test_root_extrema(self, head_volume):
        tree = MinMaxOctree(head_volume)
        assert tree.root.min_opacity == float(head_volume.opacities.min())
        assert tree.root.max_opacity == float(head_volume.opacities.max())

    def test_node_extrema_correct(self, head_volume):
        tree = MinMaxOctree(head_volume)
        for node in tree.nodes[:50]:
            sub = head_volume.opacities[
                node.lo[0] : node.hi[0],
                node.lo[1] : node.hi[1],
                node.lo[2] : node.hi[2],
            ]
            assert node.min_opacity == pytest.approx(float(sub.min()))
            assert node.max_opacity == pytest.approx(float(sub.max()))

    def test_transparent_volume_single_node(self):
        tree = MinMaxOctree(transparent_volume(16))
        assert tree.root.is_leaf or tree.root.max_opacity == 0.0

    def test_deepest_transparent_node(self):
        tree = MinMaxOctree(synthetic_head(16))
        node = tree.deepest_transparent_node(0.5, 0.5, 0.5)  # air corner
        assert node is not None and node.is_transparent
        center = tree.deepest_transparent_node(8.0, 8.0, 8.0)  # brain
        assert center is None

    def test_skip_distance_zero_in_interesting_region(self):
        tree = MinMaxOctree(synthetic_head(16))
        assert tree.skip_distance(8.0, 8.0, 8.0, np.array([1.0, 0, 0])) == 0.0

    def test_skipped_samples_are_exactly_transparent(self):
        volume = synthetic_head(24)
        tree = MinMaxOctree(volume)
        direction = np.array([1.0, 0.0, 0.0])
        for y in (0.5, 3.2, 11.9):
            x, z = 0.5, 2.7
            skip = tree.skip_distance(x, y, z, direction)
            steps = int(skip)
            for m in range(steps + 1):
                assert volume.trilinear(x + m, y, z) == 0.0

    def test_path_to_terminates(self, head_volume):
        tree = MinMaxOctree(head_volume)
        path = tree.path_to(5.0, 5.0, 5.0)
        assert path[0] is tree.root
        assert path[-1].is_transparent or path[-1].is_leaf

    def test_rejects_bad_leaf_size(self, head_volume):
        with pytest.raises(ValueError):
            MinMaxOctree(head_volume, leaf_size=0)


class TestRenderer:
    def test_octree_identical_to_brute_force(self):
        volume = synthetic_head(24)
        with_octree = render_frame(volume, angle=0.4, image_size=24, use_octree=True)
        reference = render_frame(volume, angle=0.4, image_size=24, use_octree=False)
        np.testing.assert_array_equal(with_octree, reference)

    def test_transparent_renders_black(self):
        image = render_frame(transparent_volume(8), image_size=8)
        assert image.max() == 0.0

    def test_opaque_renders_solid_center(self):
        image = render_frame(opaque_volume(8), image_size=8)
        assert image[4, 4] == pytest.approx(1.0)

    def test_early_termination_bounds_samples(self):
        volume = opaque_volume(16)
        caster = RayCaster(volume)
        origin = np.array([-5.0, 7.5, 7.5])
        caster.cast(origin, np.array([1.0, 0.0, 0.0]))
        assert caster.samples_taken <= 4  # terminates almost immediately

    def test_octree_skips_samples(self):
        volume = synthetic_head(24)
        camera = Camera(angle=0.3, image_size=24)
        skipping = RayCaster(volume, MinMaxOctree(volume))
        brute = RayCaster(volume)
        skipping.render(camera)
        brute.render(camera)
        assert skipping.samples_taken < brute.samples_taken
        assert skipping.samples_skipped > 0

    def test_miss_ray_returns_zero(self):
        volume = opaque_volume(8)
        caster = RayCaster(volume)
        # Ray parallel to the box but outside it.
        assert caster.cast(np.array([-5.0, 50.0, 4.0]), np.array([1.0, 0, 0])) == 0.0

    def test_opacity_in_unit_range(self):
        image = render_frame(synthetic_head(16), image_size=16)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_block_render_matches_full(self):
        volume = synthetic_head(16)
        camera = Camera(angle=0.2, image_size=16)
        caster = RayCaster(volume, MinMaxOctree(volume))
        full = caster.render(camera)
        partial = np.zeros((16, 16))
        caster.render(camera, pixels=partial, pixel_range=(range(8), range(16)))
        np.testing.assert_array_equal(partial[:8], full[:8])


class TestImagePartition:
    def test_blocks_tile_image(self):
        part = ImagePartition(16, 4)
        covered = set()
        for pid in range(4):
            rows, cols = part.block(pid)
            for r in rows:
                for c in cols:
                    assert (r, c) not in covered
                    covered.add((r, c))
        assert len(covered) == 256

    def test_owner_consistent_with_block(self):
        part = ImagePartition(16, 16)
        for pid in range(16):
            rows, cols = part.block(pid)
            assert part.owner(cols[0], rows[0]) == pid

    def test_rays_per_processor(self):
        assert ImagePartition(64, 16).rays_per_processor() == 256

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ImagePartition(16, 6)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            ImagePartition(10, 16)


class TestRayStealing:
    def test_balanced_load_no_stealing(self):
        costs = [np.ones(10) for _ in range(4)]
        outcome = simulate_ray_stealing(costs)
        assert outcome.rays_stolen == 0
        assert outcome.balance_efficiency == pytest.approx(1.0)

    def test_imbalanced_load_steals(self):
        costs = [np.ones(100), np.ones(1)]
        outcome = simulate_ray_stealing(costs)
        assert outcome.rays_stolen > 20
        assert outcome.balance_efficiency > 0.85

    def test_steal_overhead_reduces_stealing_benefit(self):
        costs = [np.ones(100), np.ones(1)]
        cheap = simulate_ray_stealing(costs, steal_overhead=0.0)
        pricey = simulate_ray_stealing(costs, steal_overhead=5.0)
        assert pricey.rays_stolen <= cheap.rays_stolen

    def test_steal_fraction(self):
        costs = [np.ones(30), np.zeros(0)]
        outcome = simulate_ray_stealing([np.ones(30), np.ones(0)])
        assert 0 <= outcome.steal_fraction <= 1

    def test_finish_times_tighten(self):
        rng = np.random.default_rng(1)
        costs = [rng.uniform(0.5, 2.0, size=50) * (pid + 1) for pid in range(4)]
        outcome = simulate_ray_stealing(costs)
        static_finish = np.array([c.sum() for c in costs])
        static_eff = static_finish.mean() / static_finish.max()
        assert outcome.balance_efficiency > static_eff


class TestTraceGenerator:
    def test_trace_regions_disjoint(self):
        volume = synthetic_head(16)
        gen = VolrendTraceGenerator(volume, num_processors=4, image_size=16)
        trace = gen.trace_for_processor(0, frames=1)
        assert len(trace) > 100
        assert gen.rays_cast == 64  # 8x8 block

    def test_frames_multiply_rays(self):
        volume = synthetic_head(16)
        gen = VolrendTraceGenerator(volume, num_processors=4, image_size=16)
        gen.trace_for_processor(0, frames=3)
        assert gen.rays_cast == 3 * 64

    def test_invalid_pid(self):
        gen = VolrendTraceGenerator(synthetic_head(16), num_processors=4)
        with pytest.raises(IndexError):
            gen.trace_for_processor(4)

    def test_lev2_knee_grows_with_volume(self):
        """The essence of the paper's Section 7.2 scaling claim."""
        from repro.mem.stack_distance import StackDistanceProfiler

        knees = []
        for n in (24, 48):
            gen = VolrendTraceGenerator(
                synthetic_head(n), num_processors=4, image_size=n
            )
            trace = gen.trace_for_processor(0, frames=1)
            profile = StackDistanceProfiler(
                count_reads_only=True, warmup=len(trace) // 4
            ).profile(trace)
            caps = [2**k for k in range(9, 18)]
            rates = [profile.misses_at(c // 8) / max(profile.total, 1) for c in caps]
            floor = min(rates)
            reach = next(
                cap for cap, rate in zip(caps, rates) if rate <= 1.3 * floor
            )
            knees.append(reach)
        assert knees[1] > knees[0]


class TestModel:
    def test_paper_lev2_formula(self):
        """4000 + 110n: 70 KB for the 600^3 prototypical problem and
        ~16 KB for the 113-deep head (n~110 effective)."""
        assert VolrendModel(n=600).lev2_bytes() == pytest.approx(70 * KB, rel=0.05)
        assert VolrendModel(n=113).lev2_bytes() == pytest.approx(16.4 * KB, rel=0.05)

    def test_1024_cubed_is_116kb(self):
        assert VolrendModel(n=1024).lev2_bytes() == pytest.approx(116 * KB, rel=0.05)

    def test_ratio_independent_of_n_p(self):
        model = VolrendModel()
        assert model.flops_per_word(GrainConfig(GB, 64)) == model.flops_per_word(
            GrainConfig(8 * GB, 16384)
        )

    def test_prototypical_rays(self):
        """600^3 on 1024 processors: ~1000 rays each; on 16K: ~66."""
        model = VolrendModel(n=600, num_processors=1024)
        assert model.units_per_processor(GrainConfig(GB, 1024)) == pytest.approx(
            1000, rel=0.25
        )
        assert model.units_per_processor(GrainConfig(GB, 16384)) == pytest.approx(
            66, rel=0.25
        )

    def test_grain_scaling_cube_root(self):
        model = VolrendModel()
        assert model.grain_for_scaled_dataset(8.0) == pytest.approx(
            2 * model.dataset_bytes / model.num_processors, rel=1e-9
        )

    def test_for_dataset(self):
        assert VolrendModel.for_dataset(GB).n == pytest.approx(600, rel=0.15)

    def test_fine_grain_verdict_poor(self):
        model = VolrendModel(n=600, num_processors=1024)
        assessments = model.grain_assessments()
        assert assessments[2].verdict.name == "POOR"  # 66 rays: too few

    def test_miss_rate_model_monotone(self):
        model = VolrendModel(n=64, num_processors=4)
        caps = [2**k for k in range(6, 22)]
        rates = [model.miss_rate_model(c) for c in caps]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_important_is_lev2(self):
        assert VolrendModel().working_sets().important_working_set.level == 2


class TestPGM:
    def test_roundtrip(self, tmp_path):
        from repro.apps.volrend.render import load_pgm, save_pgm

        image = render_frame(synthetic_head(12), image_size=12)
        path = tmp_path / "frame.pgm"
        save_pgm(image, path)
        loaded = load_pgm(path)
        assert loaded.shape == image.shape
        np.testing.assert_allclose(loaded, image, atol=1 / 255 + 1e-9)

    def test_rejects_non_2d(self, tmp_path):
        from repro.apps.volrend.render import save_pgm

        with pytest.raises(ValueError):
            save_pgm(np.zeros((2, 2, 2)), tmp_path / "x.pgm")

    def test_rejects_non_pgm(self, tmp_path):
        from repro.apps.volrend.render import load_pgm

        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n1 1\n255\nxxx")
        with pytest.raises(ValueError):
            load_pgm(path)
