"""Tests for the blocked LU kernel, trace generator, and model."""

import math

import numpy as np
import pytest
import scipy.linalg

from repro.apps.lu.factor import (
    blocked_lu,
    flop_count,
    random_diagonally_dominant,
    reconstruct,
    unpack,
)
from repro.apps.lu.model import LUModel
from repro.apps.lu.trace import LUTraceGenerator, ScatterDecomposition
from repro.core.grain import GrainConfig
from repro.core.knee import match_knee
from repro.core.curves import MissRateCurve
from repro.mem.stack_distance import default_capacity_grid, profile_trace
from repro.units import GB, KB, MB


class TestFactorKernel:
    @pytest.mark.parametrize("n,block", [(16, 4), (32, 8), (48, 16), (64, 8)])
    def test_reconstruction(self, n, block):
        a = random_diagonally_dominant(n, seed=n)
        packed = blocked_lu(a.copy(), block)
        np.testing.assert_allclose(reconstruct(packed), a, atol=1e-9)

    def test_matches_scipy_lu(self):
        a = random_diagonally_dominant(32, seed=1)
        packed = blocked_lu(a.copy(), 8)
        lower, upper = unpack(packed)
        # scipy permutes; diagonally dominant matrices need no pivoting,
        # so P should be the identity and factors should agree.
        p, l_ref, u_ref = scipy.linalg.lu(a)
        np.testing.assert_allclose(p, np.eye(32), atol=1e-12)
        np.testing.assert_allclose(lower, l_ref, atol=1e-8)
        np.testing.assert_allclose(upper, u_ref, atol=1e-8)

    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            blocked_lu(np.eye(10), 4)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            blocked_lu(np.ones((4, 6)), 2)

    def test_zero_pivot_raises(self):
        singularish = np.zeros((4, 4))
        with pytest.raises(ZeroDivisionError):
            blocked_lu(singularish, 2)

    def test_unit_lower_diagonal(self):
        a = random_diagonally_dominant(16, seed=3)
        lower, _ = unpack(blocked_lu(a.copy(), 4))
        np.testing.assert_allclose(np.diag(lower), np.ones(16))

    def test_flop_count(self):
        assert flop_count(300) == pytest.approx(2 * 300**3 / 3)


class TestScatterDecomposition:
    def test_square(self):
        decomp = ScatterDecomposition.square(16)
        assert decomp.p_rows == decomp.p_cols == 4

    def test_square_rejects_non_square(self):
        with pytest.raises(ValueError):
            ScatterDecomposition.square(6)

    def test_owner_cyclic(self):
        decomp = ScatterDecomposition(2, 2)
        assert decomp.owner(0, 0) == 0
        assert decomp.owner(0, 1) == 1
        assert decomp.owner(1, 0) == 2
        assert decomp.owner(2, 2) == 0  # wraps

    def test_all_blocks_covered(self):
        decomp = ScatterDecomposition.square(4)
        nb = 6
        total = sum(decomp.blocks_owned(pid, nb) for pid in range(4))
        assert total == nb * nb

    def test_balance(self):
        """Scatter decomposition balances blocks within one row/column."""
        decomp = ScatterDecomposition.square(4)
        counts = [decomp.blocks_owned(pid, 8) for pid in range(4)]
        assert max(counts) - min(counts) == 0


class TestTraceGenerator:
    def test_rejects_indivisible_n(self):
        with pytest.raises(ValueError):
            LUTraceGenerator(n=50, block_size=8, num_processors=4)

    def test_flops_accounting(self):
        gen = LUTraceGenerator(n=32, block_size=8, num_processors=1)
        gen.trace_for_processor(0)
        # One processor performs all ~2n^3/3 flops (block algorithm has
        # small overhead terms).
        assert gen.flops == pytest.approx(flop_count(32), rel=0.3)

    def test_flops_split_across_processors(self):
        total = 0.0
        for pid in range(4):
            gen = LUTraceGenerator(n=32, block_size=8, num_processors=4)
            gen.trace_for_processor(pid)
            total += gen.flops
        assert total == pytest.approx(flop_count(32), rel=0.3)

    def test_trace_addresses_inside_matrix(self):
        gen = LUTraceGenerator(n=16, block_size=4, num_processors=1)
        trace = gen.trace_for_processor(0)
        assert trace.addrs.min() >= gen.matrix.base
        assert trace.addrs.max() < gen.matrix.end

    def test_footprint_at_most_matrix(self):
        gen = LUTraceGenerator(n=16, block_size=4, num_processors=1)
        trace = gen.trace_for_processor(0)
        assert trace.footprint_bytes() <= gen.dataset_bytes

    def test_max_k_truncates(self):
        gen = LUTraceGenerator(n=32, block_size=8, num_processors=1)
        full = gen.trace_for_processor(0)
        partial = gen.trace_for_processor(0, max_k=1)
        assert len(partial) < len(full)

    def test_working_set_knees_match_model(self):
        """The headline validation: simulated knees land at the model's
        lev1/lev2 sizes (Figure 2 at reduced scale)."""
        gen = LUTraceGenerator(n=64, block_size=8, num_processors=4)
        trace = gen.trace_for_processor(0)
        profile = profile_trace(trace)
        curve = MissRateCurve.from_profile(
            profile,
            default_capacity_grid(min_bytes=64, max_bytes=64 * KB),
            metric="misses_per_flop",
            flops=gen.flops,
        )
        model = LUModel(n=64, block_size=8, num_processors=4)
        knees = curve.knees(rel_threshold=0.2)
        lev2 = match_knee(knees, model.lev2_bytes(), tolerance_factor=3.0)
        assert lev2.miss_rate_after < 0.3
        # Plateau after lev2 is within 2x of 1.5/B.
        plateau = curve.value_at(2 * model.lev2_bytes())
        assert plateau == pytest.approx(1.5 / 8, rel=1.0)

    def test_blocks_per_processor(self):
        gen = LUTraceGenerator(n=64, block_size=8, num_processors=4)
        assert gen.blocks_per_processor(0) == 16


class TestModel:
    def test_paper_working_set_sizes(self):
        model = LUModel(n=10_000, block_size=16, num_processors=1024)
        assert model.lev1_bytes() == 256  # paper: ~260 bytes
        assert model.lev2_bytes() == pytest.approx(2200, rel=0.1)
        assert model.lev3_bytes() == pytest.approx(80 * KB, rel=0.05)
        assert model.lev4_bytes() == pytest.approx(
            10_000**2 / 1024 * 8, rel=1e-9
        )

    def test_lev2_independent_of_n_and_p(self):
        small = LUModel(n=1000, block_size=16, num_processors=16)
        large = LUModel(n=100_000, block_size=16, num_processors=65536)
        assert small.lev2_bytes() == large.lev2_bytes()

    def test_miss_rate_monotone(self):
        model = LUModel(n=1000, block_size=16, num_processors=64)
        caps = [2**k for k in range(6, 24)]
        rates = [model.miss_rate_model(c) for c in caps]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_comm_ratio_paper_value(self):
        """1 MB grain -> ~200 FLOPs/word (Section 3.3)."""
        model = LUModel()
        ratio = model.flops_per_word(GrainConfig(GB, 1024))
        assert 150 < ratio < 300

    def test_comm_ratio_depends_on_grain_only(self):
        model = LUModel()
        r1 = model.flops_per_word(GrainConfig(GB, 1024))
        r2 = model.flops_per_word(GrainConfig(4 * GB, 4096))
        assert r1 == pytest.approx(r2)

    def test_working_sets_bimodal(self):
        assert LUModel().working_sets().is_bimodal()

    def test_important_is_lev2(self):
        assert LUModel().working_sets().important_working_set.level == 2

    def test_for_dataset(self):
        model = LUModel.for_dataset(GB)
        assert model.n == pytest.approx(11585, rel=0.01)

    def test_grain_verdicts(self):
        model = LUModel()
        assessments = model.grain_assessments()
        # Coarse and prototypical are good; fine is marginal (paper 3.3).
        assert assessments[0].verdict.name == "GOOD"
        assert assessments[1].verdict.name == "GOOD"
        assert assessments[2].verdict.name in ("MARGINAL", "POOR")

    def test_rejects_tiny_block(self):
        with pytest.raises(ValueError):
            LUModel(block_size=1)

    def test_communication_miss_rate_small(self):
        model = LUModel()
        assert model.communication_miss_rate() < 0.01
