"""Tests for the CG kernel, grids, trace generator and model."""

import numpy as np
import pytest
import scipy.sparse
import scipy.sparse.linalg

from repro.apps.cg.grid import Grid2D, Grid3D, GridPartition
from repro.apps.cg.model import CGModel
from repro.apps.cg.solver import (
    conjugate_gradient,
    flops_per_iteration_2d,
    flops_per_iteration_3d,
)
from repro.apps.cg.trace import CGTraceGenerator
from repro.core.grain import GrainConfig
from repro.core.knee import match_knee
from repro.core.curves import MissRateCurve
from repro.mem.multiproc import MultiprocessorMemory
from repro.mem.stack_distance import default_capacity_grid, profile_trace
from repro.units import GB, KB


def dense_laplacian_2d(n):
    grid = Grid2D(n)
    size = grid.num_points
    a = np.zeros((size, size))
    for i in range(n):
        for j in range(n):
            idx = grid.index(i, j)
            a[idx, idx] = 4.0
            for (ni, nj) in grid.neighbors(i, j):
                a[idx, grid.index(ni, nj)] = -1.0
    return a


class TestGrids:
    def test_matvec_matches_dense(self):
        n = 8
        grid = Grid2D(n)
        a = dense_laplacian_2d(n)
        x = np.random.default_rng(0).standard_normal(n * n)
        np.testing.assert_allclose(grid.laplacian_matvec(x), a @ x, atol=1e-12)

    def test_matvec_3d_symmetry(self):
        grid = Grid3D(5)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(grid.num_points)
        y = rng.standard_normal(grid.num_points)
        # <Ax, y> == <x, Ay> for symmetric A.
        assert np.dot(grid.laplacian_matvec(x), y) == pytest.approx(
            np.dot(x, grid.laplacian_matvec(y))
        )

    def test_matvec_positive_definite(self):
        grid = Grid2D(6)
        x = np.random.default_rng(2).standard_normal(grid.num_points)
        assert np.dot(x, grid.laplacian_matvec(x)) > 0

    def test_neighbors_clipped_at_boundary(self):
        grid = Grid2D(4)
        assert len(list(grid.neighbors(0, 0))) == 2
        assert len(list(grid.neighbors(1, 1))) == 4

    def test_index_row_major(self):
        assert Grid2D(10).index(2, 3) == 23
        assert Grid3D(10).index(1, 2, 3) == 123


class TestPartition:
    def test_requires_square_p(self):
        with pytest.raises(ValueError):
            GridPartition(Grid2D(12), 6)

    def test_requires_divisible_side(self):
        with pytest.raises(ValueError):
            GridPartition(Grid2D(10), 16)

    def test_owner_layout(self):
        part = GridPartition(Grid2D(8), 4)
        assert part.owner(0, 0) == 0
        assert part.owner(0, 4) == 1
        assert part.owner(4, 0) == 2
        assert part.owner(7, 7) == 3

    def test_local_ranges(self):
        part = GridPartition(Grid2D(8), 4)
        assert list(part.local_rows(3)) == [4, 5, 6, 7]
        assert list(part.local_cols(3)) == [4, 5, 6, 7]

    def test_boundary_points(self):
        part = GridPartition(Grid2D(8), 4)
        assert part.boundary_points(0) == 12  # perimeter of 4x4 block


class TestSolver:
    def test_solves_laplacian(self):
        grid = Grid2D(12)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(grid.num_points)
        result = conjugate_gradient(grid.laplacian_matvec, b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(
            grid.laplacian_matvec(result.x), b, atol=1e-8
        )

    def test_matches_scipy_cg(self):
        grid = Grid2D(10)
        b = np.random.default_rng(1).standard_normal(grid.num_points)
        ours = conjugate_gradient(grid.laplacian_matvec, b, tol=1e-12)
        op = scipy.sparse.linalg.LinearOperator(
            (grid.num_points, grid.num_points), matvec=grid.laplacian_matvec
        )
        theirs, info = scipy.sparse.linalg.cg(op, b, rtol=1e-12)
        assert info == 0
        np.testing.assert_allclose(ours.x, theirs, atol=1e-6)

    def test_3d(self):
        grid = Grid3D(6)
        b = np.random.default_rng(2).standard_normal(grid.num_points)
        result = conjugate_gradient(grid.laplacian_matvec, b, tol=1e-10)
        assert result.converged

    def test_initial_guess_respected(self):
        grid = Grid2D(8)
        b = np.random.default_rng(3).standard_normal(grid.num_points)
        exact = conjugate_gradient(grid.laplacian_matvec, b, tol=1e-12).x
        warm = conjugate_gradient(grid.laplacian_matvec, b, x0=exact, tol=1e-10)
        assert warm.iterations <= 2

    def test_zero_rhs(self):
        grid = Grid2D(4)
        result = conjugate_gradient(grid.laplacian_matvec, np.zeros(16))
        np.testing.assert_allclose(result.x, 0.0)

    def test_flop_formulas(self):
        assert flops_per_iteration_2d(100) == 100_000
        assert flops_per_iteration_3d(10) == 14_000


class TestTraceGenerator:
    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            CGTraceGenerator(n=16, num_processors=3, dims=2)

    def test_rejects_indivisible_grid(self):
        with pytest.raises(ValueError):
            CGTraceGenerator(n=10, num_processors=16, dims=2)

    def test_3d_needs_cube(self):
        with pytest.raises(ValueError):
            CGTraceGenerator(n=16, num_processors=4, dims=3)
        CGTraceGenerator(n=16, num_processors=8, dims=3)  # ok

    def test_trace_length_scales_with_iterations(self):
        gen = CGTraceGenerator(n=32, num_processors=4)
        one = gen.trace_for_processor(0, iterations=1)
        two = gen.trace_for_processor(0, iterations=2)
        assert len(two) == 2 * len(one)

    def test_local_points_disjoint_across_processors(self):
        gen = CGTraceGenerator(n=16, num_processors=4)
        seen = set()
        for pid in range(4):
            points = set(gen._local_points(pid))
            assert not points & seen
            seen |= points
        assert len(seen) == 16 * 16

    def test_lev2_knee_matches_partition_size(self):
        gen = CGTraceGenerator(n=64, num_processors=4)
        trace = gen.trace_for_processor(0, iterations=2)
        profile = profile_trace(trace, warmup=len(trace) // 2)
        model = CGModel(n=64, num_processors=4)
        curve = MissRateCurve.from_profile(
            profile,
            default_capacity_grid(min_bytes=128, max_bytes=256 * KB),
            metric="misses_per_flop",
            flops=gen.flops / 2,
        )
        knees = curve.knees(rel_threshold=0.15)
        lev2 = match_knee(knees, model.lev2_bytes(), tolerance_factor=3.0)
        assert lev2.capacity_bytes == pytest.approx(model.lev2_bytes(), rel=1.0)

    def test_miss_rate_stays_high_between_working_sets(self):
        """The paper: 'the miss rate remains high even after this
        [lev1] working set fits in the cache'."""
        gen = CGTraceGenerator(n=64, num_processors=4)
        trace = gen.trace_for_processor(0, iterations=2)
        profile = profile_trace(trace, warmup=len(trace) // 2)
        model = CGModel(n=64, num_processors=4)
        mid_cache = int(model.lev2_bytes() / 4)
        rate = profile.misses_at(mid_cache // 8) / (gen.flops / 2)
        assert rate > 0.3


class TestMultiprocessorCommunication:
    def test_boundary_exchange_generates_coherence_misses(self):
        """Run all four processors' traces through private caches: the
        invalidations should land on partition-boundary data only."""
        gen = CGTraceGenerator(n=16, num_processors=4)
        traces = [gen.trace_for_processor(pid, iterations=2) for pid in range(4)]
        mem = MultiprocessorMemory(4, capacity_bytes=None)
        stats = mem.run_traces(traces)
        total_coherence = sum(s.coherence_misses for s in stats)
        assert total_coherence > 0
        # Bounded by a small multiple of the perimeter points per iteration.
        perimeter = 4 * (16 // 2)
        assert total_coherence <= 12 * perimeter

    def test_communication_rate_near_model(self):
        gen = CGTraceGenerator(n=16, num_processors=4)
        traces = [gen.trace_for_processor(pid, iterations=3) for pid in range(4)]
        mem = MultiprocessorMemory(4, capacity_bytes=None)
        mem.run_traces(traces)
        model = CGModel(n=16, num_processors=4)
        measured = mem.aggregate().coherence_misses / (gen.flops * 4 / 4) / 3
        # Within an order of magnitude of the analytical boundary rate.
        assert measured < 10 * model.communication_miss_rate() + 0.05


class TestModel:
    def test_prototypical_lev1_sizes(self):
        model_2d = CGModel(n=4000, num_processors=1024, dims=2)
        assert model_2d.lev1_bytes() == pytest.approx(5 * KB, rel=0.3)
        model_3d = CGModel(n=225, num_processors=1024, dims=3)
        assert model_3d.lev1_bytes() == pytest.approx(18 * KB, rel=0.5)

    def test_lev1_scales_with_grain(self):
        """A 16 MB/processor problem has lev1WS ~18 KB (2-D, Section 4.2)."""
        model = CGModel.for_dataset(16 * GB, num_processors=1024, dims=2)
        assert 10 * KB < model.lev1_bytes() < 40 * KB

    def test_comm_ratio_2d(self):
        model = CGModel()
        ratio = model.flops_per_word(GrainConfig(GB, 1024))
        assert ratio == pytest.approx(300, rel=0.15)

    def test_comm_ratio_3d(self):
        model = CGModel(dims=3)
        ratio = model.flops_per_word(GrainConfig(GB, 1024))
        assert 30 < ratio < 80  # paper: "roughly 50"

    def test_ratio_depends_on_grain_only(self):
        model = CGModel()
        assert model.flops_per_word(GrainConfig(GB, 1024)) == pytest.approx(
            model.flops_per_word(GrainConfig(2 * GB, 2048))
        )

    def test_fine_grain(self):
        """On the 16K-processor machine the ratios drop to roughly 75
        (2-D) and 20 (3-D) (Section 4.3)."""
        config = GrainConfig(GB, 16384)
        assert CGModel().flops_per_word(config) == pytest.approx(75, rel=0.15)
        assert CGModel(dims=3).flops_per_word(config) == pytest.approx(20, rel=0.25)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            CGModel(dims=4)

    def test_important_ws_is_lev1(self):
        assert CGModel().working_sets().important_working_set.level == 1

    def test_miss_rate_model_monotone(self):
        model = CGModel(n=128, num_processors=16)
        caps = [2**k for k in range(7, 24)]
        rates = [model.miss_rate_model(c) for c in caps]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
