"""Tests for the Barnes-Hut build/moments phase traces and the phase
sharing experiment (Section 6.4)."""

import numpy as np
import pytest

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.octree import Octree
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.experiments import bh_phases
from repro.mem.multiproc import MultiprocessorMemory


@pytest.fixture(scope="module")
def generator():
    return BarnesHutTraceGenerator(
        plummer_model(192, seed=11), theta=1.0, num_processors=4
    )


class TestInsertionPaths:
    def test_every_body_has_a_path(self, small_bodies):
        tree = Octree(small_bodies)
        assert len(tree.insertion_paths) == len(small_bodies)
        assert all(path for path in tree.insertion_paths)

    def test_paths_start_at_root(self, small_bodies):
        tree = Octree(small_bodies)
        for path in tree.insertion_paths:
            assert path[0] == tree.root.index

    def test_path_cells_are_nested(self, small_bodies):
        tree = Octree(small_bodies)
        for path in tree.insertion_paths[:20]:
            sizes = [tree.cells[i].half_size for i in path]
            # Re-insertions during splits may repeat a size; never grow.
            assert all(b <= a for a, b in zip(sizes, sizes[1:]))


class TestPhaseTraces:
    def test_build_trace_nonempty(self, generator):
        trace = generator.build_trace_for_processor(0)
        assert len(trace) > 100

    def test_build_traces_cover_all_bodies(self, generator):
        total_writes = sum(
            generator.build_trace_for_processor(pid).write_count
            for pid in range(4)
        )
        assert total_writes >= len(generator.bodies)

    def test_moments_traces_cover_all_cells(self, generator):
        """Every cell's moment fields are written exactly once across
        processors."""
        cell_writes = set()
        for pid in range(4):
            trace = generator.moments_trace_for_processor(pid)
            for addr in trace.writes().addrs.tolist():
                if generator.cell_region.contains(addr):
                    cell_writes.add(addr)
        assert len(cell_writes) == generator.tree.num_cells * 10

    def test_cell_owner_valid(self, generator):
        for cell in generator.tree.cells[:100]:
            assert 0 <= generator.cell_owner(cell) < 4

    def test_force_scratch_private(self, generator):
        """Force traces of different processors touch different scratch
        regions."""
        t0 = set(generator.trace_for_processor(0).addrs.tolist())
        t1 = set(generator.trace_for_processor(1).addrs.tolist())
        s0 = {
            a
            for a in t0
            if generator.scratch_regions[0].contains(a)
        }
        s1_in_t1 = {
            a for a in t1 if generator.scratch_regions[1].contains(a)
        }
        assert s0
        assert s1_in_t1
        assert not (s0 & t1)


class TestRemoteReads:
    def test_producer_consumer_counted(self):
        mem = MultiprocessorMemory(2)
        from repro.mem.trace import WRITE, READ

        mem.access(0, 0, WRITE)
        mem.access(1, 0, READ)
        assert mem.stats[1].remote_reads == 1

    def test_own_data_not_remote(self):
        mem = MultiprocessorMemory(2, capacity_bytes=8)
        from repro.mem.trace import WRITE, READ

        mem.access(0, 0, WRITE)
        mem.access(0, 8, READ)  # evicts block 0
        mem.access(0, 0, READ)  # re-read own write: not remote
        assert mem.stats[0].remote_reads == 0

    def test_unwritten_data_not_remote(self):
        mem = MultiprocessorMemory(2)
        mem.access(0, 0)
        mem.access(1, 0)
        assert mem.stats[1].remote_reads == 0


class TestPhaseExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return bh_phases.run(n=256, num_processors=4)

    def test_build_shares_much_more_than_force(self, result):
        ratio = result.comparison("build/force sharing-rate ratio").measured_value
        assert ratio > 5

    def test_moments_shares_more_than_force(self, result):
        ratio = result.comparison("moments/force sharing-rate ratio").measured_value
        assert ratio > 2

    def test_force_dominates_references(self, result):
        fraction = result.comparison(
            "force-phase fraction of references"
        ).measured_value
        assert fraction > 0.9
