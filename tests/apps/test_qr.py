"""Tests for the Householder QR kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lu.qr import flop_count, householder_qr


class TestQR:
    @pytest.mark.parametrize("m,n,panel", [(16, 16, 4), (32, 32, 8), (48, 24, 8), (40, 24, 16)])
    def test_reconstruction(self, m, n, panel):
        a = np.random.default_rng(m + n).standard_normal((m, n))
        q, r = householder_qr(a, panel_width=panel)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    def test_q_orthonormal(self):
        a = np.random.default_rng(1).standard_normal((32, 20))
        q, _ = householder_qr(a)
        np.testing.assert_allclose(q.T @ q, np.eye(20), atol=1e-10)

    def test_r_upper_triangular(self):
        a = np.random.default_rng(2).standard_normal((24, 24))
        _, r = householder_qr(a, panel_width=6)
        np.testing.assert_allclose(r, np.triu(r), atol=1e-12)

    def test_matches_numpy_up_to_signs(self):
        a = np.random.default_rng(3).standard_normal((16, 16))
        q, r = householder_qr(a)
        q_ref, r_ref = np.linalg.qr(a)
        signs = np.sign(np.diag(r)) * np.sign(np.diag(r_ref))
        np.testing.assert_allclose(r, signs[:, None] * r_ref, atol=1e-9)

    def test_rejects_wide_matrix(self):
        with pytest.raises(ValueError):
            householder_qr(np.zeros((4, 8)))

    def test_rejects_bad_panel(self):
        with pytest.raises(ValueError):
            householder_qr(np.zeros((4, 4)), panel_width=0)

    def test_rank_deficient_column(self):
        a = np.random.default_rng(4).standard_normal((12, 6))
        a[:, 3] = 0.0
        q, r = householder_qr(a, panel_width=3)
        np.testing.assert_allclose(q @ r, a, atol=1e-10)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_property_reconstruction(self, n, seed):
        a = np.random.default_rng(seed).standard_normal((n + 3, n))
        q, r = householder_qr(a, panel_width=4)
        assert np.abs(q @ r - a).max() < 1e-8

    def test_flop_count_square(self):
        assert flop_count(100, 100) == pytest.approx(2 * 100**2 * (100 - 100 / 3))
