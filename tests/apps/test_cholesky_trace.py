"""Tests for the Cholesky trace generator: the 'similar structure to
LU' claim, verified at the working-set level."""

import pytest

from repro.apps.lu.cholesky_trace import CholeskyTraceGenerator
from repro.apps.lu.model import LUModel
from repro.apps.lu.trace import LUTraceGenerator
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.mem.stack_distance import default_capacity_grid, profile_trace
from repro.units import KB


@pytest.fixture(scope="module")
def generators():
    chol = CholeskyTraceGenerator(n=64, block_size=8, num_processors=4)
    chol_trace = chol.trace_for_processor(0)
    lu = LUTraceGenerator(n=64, block_size=8, num_processors=4)
    lu_trace = lu.trace_for_processor(0)
    return chol, chol_trace, lu, lu_trace


class TestStructure:
    def test_about_half_the_work_of_lu(self):
        # Cholesky updates only the lower triangle: ~half LU's flops
        # machine-wide (per-processor shares differ because scatter
        # ownership is not symmetric across the triangle).
        chol_total = 0.0
        lu_total = 0.0
        for pid in range(4):
            chol = CholeskyTraceGenerator(n=64, block_size=8, num_processors=4)
            chol.trace_for_processor(pid)
            chol_total += chol.flops
            lu = LUTraceGenerator(n=64, block_size=8, num_processors=4)
            lu.trace_for_processor(pid)
            lu_total += lu.flops
        assert chol_total == pytest.approx(lu_total / 2, rel=0.25)

    def test_touches_lower_triangle_only(self, generators):
        chol, chol_trace, _, _ = generators
        b = chol.block_size
        nb = chol.num_blocks
        touched_blocks = set(
            (addr - chol.matrix.base) // 8 // (b * b)
            for addr in chol_trace.addrs.tolist()
        )
        for block_index in touched_blocks:
            bi, bj = divmod(int(block_index), nb)
            assert bi >= bj, "upper-triangle block referenced"

    def test_footprint_about_half_of_lu(self, generators):
        chol, chol_trace, lu, lu_trace = generators
        assert chol_trace.footprint() == pytest.approx(
            lu_trace.footprint() * 0.55, rel=0.25
        )


class TestWorkingSets:
    def test_same_lev2_knee_as_lu(self, generators):
        """The headline: Cholesky's miss-rate knees land at LU's
        working-set sizes."""
        chol, chol_trace, _, _ = generators
        profile = profile_trace(chol_trace)
        curve = MissRateCurve.from_profile(
            profile,
            default_capacity_grid(min_bytes=64, max_bytes=64 * KB),
            metric="misses_per_flop",
            flops=chol.flops,
        )
        model = LUModel(n=64, block_size=8, num_processors=4)
        knees = curve.knees(rel_threshold=0.2)
        lev2 = match_knee(knees, model.lev2_bytes(), tolerance_factor=3.0)
        assert lev2.miss_rate_after < 0.3

    def test_plateau_after_block_fits(self, generators):
        chol, chol_trace, _, _ = generators
        profile = profile_trace(chol_trace)
        model = LUModel(n=64, block_size=8, num_processors=4)
        plateau = profile.misses_at(
            int(2 * model.lev2_bytes()) // 8
        ) / chol.flops
        # Same ~1.5/B regime as LU.
        assert plateau == pytest.approx(1.5 / 8, rel=1.0)
