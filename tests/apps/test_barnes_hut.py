"""Tests for the Barnes-Hut substrate: octree, forces, integration,
partitioning, trace and model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.barnes_hut.bodies import BodySet, plummer_model, uniform_cube
from repro.apps.barnes_hut.force import (
    WalkStats,
    accelerate_body,
    compute_accelerations,
    direct_sum,
)
from repro.apps.barnes_hut.model import BarnesHutModel, THETA_FLOOR
from repro.apps.barnes_hut.octree import Octree
from repro.apps.barnes_hut.partition import morton_order, morton_partition
from repro.apps.barnes_hut.simulate import Simulation
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.core.grain import GrainConfig
from repro.units import GB, KB


class TestBodies:
    def test_plummer_shape(self):
        bodies = plummer_model(50, seed=1)
        assert len(bodies) == 50
        assert bodies.total_mass == pytest.approx(1.0)

    def test_plummer_centrally_concentrated(self):
        bodies = plummer_model(500, seed=2)
        radii = np.linalg.norm(bodies.positions, axis=1)
        assert np.median(radii) < np.percentile(radii, 90) / 2

    def test_uniform_cube_bounds(self):
        bodies = uniform_cube(100, seed=1)
        assert bodies.positions.min() >= 0
        assert bodies.positions.max() <= 1

    def test_bounding_cube_contains_all(self):
        bodies = plummer_model(100, seed=3)
        center, half = bodies.bounding_cube()
        assert np.all(np.abs(bodies.positions - center) <= half + 1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BodySet(
                positions=np.zeros((4, 2)),
                velocities=np.zeros((4, 3)),
                masses=np.ones(4),
            )

    def test_kinetic_energy_zero_at_rest(self):
        assert uniform_cube(10).kinetic_energy() == 0.0

    def test_potential_energy_negative(self):
        assert plummer_model(30, seed=4).potential_energy() < 0


class TestOctree:
    def test_counts(self, cube_bodies):
        tree = Octree(cube_bodies)
        assert tree.root.count == len(cube_bodies)

    def test_each_leaf_holds_one_body(self, cube_bodies):
        tree = Octree(cube_bodies)
        leaves = [c for c in tree.walk() if c.is_leaf and c.body_index >= 0]
        assert len(leaves) == len(cube_bodies)
        assert sorted(c.body_index for c in leaves) == list(range(len(cube_bodies)))

    def test_mass_conservation(self, cube_bodies):
        tree = Octree(cube_bodies)
        tree.compute_moments()
        assert tree.root.mass == pytest.approx(cube_bodies.total_mass)

    def test_root_com_matches_direct(self, cube_bodies):
        tree = Octree(cube_bodies)
        tree.compute_moments()
        expected = (
            cube_bodies.masses[:, None] * cube_bodies.positions
        ).sum(axis=0) / cube_bodies.total_mass
        np.testing.assert_allclose(tree.root.com, expected, atol=1e-12)

    def test_quadrupole_traceless(self, cube_bodies):
        tree = Octree(cube_bodies)
        tree.compute_moments()
        for cell in tree.walk():
            if not cell.is_leaf:
                assert np.trace(cell.quad) == pytest.approx(0.0, abs=1e-9)

    def test_quadrupole_symmetric(self, cube_bodies):
        tree = Octree(cube_bodies)
        tree.compute_moments()
        np.testing.assert_allclose(tree.root.quad, tree.root.quad.T, atol=1e-12)

    def test_root_quadrupole_matches_direct(self, cube_bodies):
        tree = Octree(cube_bodies)
        tree.compute_moments()
        com = tree.root.com
        expected = np.zeros((3, 3))
        for pos, mass in zip(cube_bodies.positions, cube_bodies.masses):
            d = pos - com
            expected += mass * (3 * np.outer(d, d) - (d @ d) * np.eye(3))
        np.testing.assert_allclose(tree.root.quad, expected, atol=1e-9)

    def test_children_nested_in_parent(self, cube_bodies):
        tree = Octree(cube_bodies)
        for cell in tree.walk():
            for child in cell.children:
                if child is None:
                    continue
                assert np.all(
                    np.abs(child.center - cell.center)
                    <= cell.half_size + 1e-12
                )
                assert child.half_size == pytest.approx(cell.half_size / 2)

    def test_coincident_bodies_rejected(self):
        positions = np.zeros((2, 3))
        bodies = BodySet(
            positions=positions, velocities=np.zeros((2, 3)), masses=np.ones(2)
        )
        with pytest.raises(RuntimeError):
            Octree(bodies, max_depth=8)

    def test_depth_reasonable(self, small_bodies):
        tree = Octree(small_bodies)
        assert tree.depth() <= 24


class TestForces:
    def test_direct_sum_newton_third_law(self, cube_bodies):
        acc = direct_sum(cube_bodies)
        momentum_rate = (cube_bodies.masses[:, None] * acc).sum(axis=0)
        np.testing.assert_allclose(momentum_rate, 0.0, atol=1e-10)

    def test_theta_small_converges_to_direct(self, small_bodies):
        exact = direct_sum(small_bodies)
        approx = compute_accelerations(small_bodies, theta=0.15)
        err = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert err < 2e-3

    def test_error_decreases_with_theta(self, small_bodies):
        exact = direct_sum(small_bodies)
        errors = []
        for theta in (1.2, 0.7, 0.3):
            approx = compute_accelerations(small_bodies, theta=theta)
            errors.append(
                np.linalg.norm(approx - exact) / np.linalg.norm(exact)
            )
        assert errors[0] > errors[1] > errors[2]

    def test_quadrupole_improves_accuracy(self, small_bodies):
        exact = direct_sum(small_bodies)
        quad = compute_accelerations(small_bodies, theta=0.9, quadrupole=True)
        mono = compute_accelerations(small_bodies, theta=0.9, quadrupole=False)
        err_quad = np.linalg.norm(quad - exact)
        err_mono = np.linalg.norm(mono - exact)
        assert err_quad < err_mono

    def test_interactions_counted(self, small_bodies):
        stats = WalkStats()
        compute_accelerations(small_bodies, theta=1.0, stats=stats)
        assert stats.interactions > len(small_bodies)
        assert stats.body_cell_interactions > 0
        assert stats.body_body_interactions > 0

    def test_smaller_theta_more_interactions(self, small_bodies):
        loose, tight = WalkStats(), WalkStats()
        compute_accelerations(small_bodies, theta=1.2, stats=loose)
        compute_accelerations(small_bodies, theta=0.5, stats=tight)
        assert tight.interactions > loose.interactions

    def test_walk_requires_moments(self, cube_bodies):
        tree = Octree(cube_bodies)
        with pytest.raises(RuntimeError):
            accelerate_body(tree, 0, theta=1.0)

    def test_two_body_analytic(self):
        bodies = BodySet(
            positions=np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            velocities=np.zeros((2, 3)),
            masses=np.array([1.0, 1.0]),
        )
        acc = direct_sum(bodies, softening=0.0)
        np.testing.assert_allclose(acc[0], [1.0, 0.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(acc[1], [-1.0, 0.0, 0.0], atol=1e-12)


class TestSimulation:
    def test_energy_roughly_conserved(self):
        bodies = plummer_model(64, seed=5)
        sim = Simulation(bodies, theta=0.4, dt=0.005, softening=0.1)
        before = sim.total_energy()
        sim.step(20)
        after = sim.total_energy()
        assert after == pytest.approx(before, rel=0.08)

    def test_history_recorded(self):
        sim = Simulation(plummer_model(32, seed=6), dt=0.01)
        sim.step(3)
        assert len(sim.history) == 3
        assert sim.history[-1].interactions > 0
        assert sim.time == pytest.approx(0.03)

    def test_rejects_bad_parameters(self):
        bodies = plummer_model(8, seed=1)
        with pytest.raises(ValueError):
            Simulation(bodies, theta=-1.0)
        with pytest.raises(ValueError):
            Simulation(bodies, dt=0.0)


class TestPartition:
    def test_partition_covers_all_bodies(self, small_bodies):
        parts = morton_partition(small_bodies, 4)
        combined = np.concatenate(parts)
        assert sorted(combined) == list(range(len(small_bodies)))

    def test_partition_balanced(self, small_bodies):
        parts = morton_partition(small_bodies, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_spatial_locality(self, small_bodies):
        """Morton ranges should be spatially tighter than random
        assignments of the same size."""
        parts = morton_partition(small_bodies, 8)
        rng = np.random.default_rng(0)
        random_parts = np.array_split(
            rng.permutation(len(small_bodies)), 8
        )
        def spread(indices):
            pos = small_bodies.positions[indices]
            return float(np.linalg.norm(pos.max(axis=0) - pos.min(axis=0)))
        morton_spread = np.mean([spread(p) for p in parts])
        random_spread = np.mean([spread(p) for p in random_parts])
        assert morton_spread < random_spread

    def test_morton_order_is_permutation(self, small_bodies):
        order = morton_order(small_bodies)
        assert sorted(order) == list(range(len(small_bodies)))

    def test_rejects_zero_processors(self, small_bodies):
        with pytest.raises(ValueError):
            morton_partition(small_bodies, 0)


class TestTraceGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        bodies = plummer_model(192, seed=8)
        return BarnesHutTraceGenerator(bodies, theta=1.0, num_processors=4)

    def test_trace_nonempty(self, generator):
        trace = generator.trace_for_processor(0)
        assert len(trace) > 1000

    def test_bytes_per_body_near_paper(self, generator):
        assert generator.bytes_per_body() == pytest.approx(230, rel=0.35)

    def test_interactions_per_body_scaling(self):
        """Interactions/body grows with log n at fixed theta."""
        counts = []
        for n in (128, 512):
            gen = BarnesHutTraceGenerator(
                plummer_model(n, seed=9), theta=1.0, num_processors=4
            )
            gen.trace_for_processor(0)
            counts.append(gen.interactions_per_body(0))
        assert counts[1] > counts[0]
        assert counts[1] < 3 * counts[0]  # sub-linear growth

    def test_invalid_pid(self, generator):
        with pytest.raises(IndexError):
            generator.trace_for_processor(99)

    def test_lev1_plateau_about_20_percent(self, generator):
        from repro.mem.stack_distance import StackDistanceProfiler

        trace = generator.trace_for_processor(0)
        profile = StackDistanceProfiler(
            count_reads_only=True, warmup=len(trace) // 10
        ).profile(trace)
        rate = profile.misses_at(int(1.5 * KB) // 8) / profile.total
        assert 0.1 < rate < 0.35


class TestModel:
    def test_lev2_paper_values(self):
        """6 KB * (1/theta^2) * log10(n): 32 KB at (64K, 1.0)."""
        assert BarnesHutModel(n=65536, theta=1.0).lev2_bytes() == pytest.approx(
            32 * KB, rel=0.15
        )
        assert BarnesHutModel(n=1024, theta=1.0).lev2_bytes() == pytest.approx(
            20 * KB, rel=0.15
        )

    def test_mc_scaling_paper_trajectory(self):
        """64K -> 1M particles under MC scaling on 16x processors gives
        theta ~0.71 (Section 6.2)."""
        base = BarnesHutModel(n=65536, theta=1.0, num_processors=64)
        scaled = base.mc_scaled(1024)
        assert scaled.n == 65536 * 16
        assert scaled.theta == pytest.approx(0.71, abs=0.02)

    def test_mc_lev2_slow_growth(self):
        """Fixed theta: 32 KB at 64K -> ~40 KB at 1M -> ~60 KB at 1G."""
        assert BarnesHutModel(n=2**20).lev2_bytes() == pytest.approx(
            40 * KB, rel=0.15
        )
        assert BarnesHutModel(n=2**30).lev2_bytes() == pytest.approx(
            60 * KB, rel=0.15
        )

    def test_tc_scaling_paper_trajectory(self):
        """TC to 1K processors: ~256K particles, theta ~0.84."""
        base = BarnesHutModel(n=65536, theta=1.0, num_processors=64)
        scaled = base.tc_scaled(1024)
        assert scaled.n == pytest.approx(262144, rel=0.35)
        assert scaled.theta == pytest.approx(0.84, abs=0.05)

    def test_tc_slower_than_mc(self):
        base = BarnesHutModel(n=65536, theta=1.0, num_processors=64)
        assert base.tc_scaled(4096).n < base.mc_scaled(4096).n

    def test_theta_floor(self):
        base = BarnesHutModel(n=65536, theta=1.0, num_processors=64)
        scaled = base.mc_scaled(64 * 10**6)
        assert scaled.theta == THETA_FLOOR

    def test_lev1_invariant(self):
        assert BarnesHutModel(n=1024).lev1_bytes() == BarnesHutModel(
            n=10**9
        ).lev1_bytes()

    def test_prototypical_communication_tiny(self):
        """~4.5M particles on 1024 processors: less than one double word
        per several thousand instructions."""
        model = BarnesHutModel.for_dataset(GB, num_processors=1024)
        ratio = model.flops_per_word(GrainConfig(GB, 1024))
        assert ratio > 3000

    def test_fine_grain_ratio_still_small(self):
        """16K processors: ~1 word per 1000 instructions (Section 6.3)."""
        model = BarnesHutModel.for_dataset(GB, num_processors=16384)
        ratio = model.flops_per_word(GrainConfig(GB, 16384))
        assert 300 < ratio < 3000

    def test_for_dataset_particle_count(self):
        model = BarnesHutModel.for_dataset(GB)
        assert model.n == pytest.approx(4.5e6, rel=0.1)

    def test_rejects_silly_theta(self):
        with pytest.raises(ValueError):
            BarnesHutModel(theta=5.0)

    def test_working_sets_important_is_lev2(self):
        hierarchy = BarnesHutModel().working_sets()
        assert hierarchy.important_working_set.level == 2

    def test_miss_rate_model_monotone(self):
        model = BarnesHutModel(n=1024, num_processors=4)
        caps = [2**k for k in range(6, 22)]
        rates = [model.miss_rate_model(c) for c in caps]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
