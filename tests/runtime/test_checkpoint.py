"""Tests for atomic, checksummed campaign checkpoints."""

import json
import os

import numpy as np
import pytest

from repro.core.curves import MissRateCurve
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.runtime.checkpoint import CheckpointStore, atomic_write_text
from repro.runtime.engine import ExperimentOutcome
from repro.runtime.errors import CheckpointCorruptError, ExperimentFailure


def rich_result() -> ExperimentResult:
    result = ExperimentResult(experiment_id="fig2", title="LU miss rates")
    result.curves.append(
        MissRateCurve(
            np.array([64, 128, 256]),
            np.array([1.0, 0.5, 0.25]),
            metric="misses_per_flop",
            label="B=16",
        )
    )
    result.comparisons.append(
        SeriesComparison("lev2WS", 2200.0, 2304.0, "bytes", "close")
    )
    result.comparisons.append(SeriesComparison("qualitative", None, 3.0))
    result.tables["extra"] = "a | b"
    result.notes.append("a note")
    return result


def ok_outcome() -> ExperimentOutcome:
    return ExperimentOutcome(
        experiment_id="fig2",
        status="ok",
        result=rich_result(),
        attempts=1,
        elapsed_seconds=1.5,
    )


class TestResultSerialization:
    def test_round_trip_preserves_everything(self):
        original = rich_result()
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert restored.experiment_id == original.experiment_id
        assert restored.title == original.title
        assert restored.tables == original.tables
        assert restored.notes == original.notes
        assert len(restored.curves) == 1
        np.testing.assert_array_equal(
            restored.curves[0].capacities, original.curves[0].capacities
        )
        np.testing.assert_array_equal(
            restored.curves[0].miss_rates, original.curves[0].miss_rates
        )
        assert restored.curves[0].metric == "misses_per_flop"
        assert restored.comparisons[0].paper_value == 2200.0
        assert restored.comparisons[1].paper_value is None
        assert restored.render() == original.render()

    def test_outcome_round_trip_with_failures(self):
        outcome = ok_outcome()
        outcome.failures.append(
            ExperimentFailure(
                experiment_id="fig2",
                attempt=1,
                category="simulation",
                error_type="SimulationError",
                message="boom",
            )
        )
        restored = ExperimentOutcome.from_dict(
            json.loads(json.dumps(outcome.to_dict()))
        )
        assert restored.status == "ok"
        assert restored.result.render() == outcome.result.render()
        assert restored.failures[0].category == "simulation"


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "deep" / "file.json"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "file.json"
        atomic_write_text(path, "hello")
        assert os.listdir(tmp_path) == ["file.json"]

    def test_overwrite_is_all_or_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "file.json"
        atomic_write_text(path, "original")

        def failing_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            atomic_write_text(path, "replacement")
        monkeypatch.undo()
        assert path.read_text() == "original"
        assert os.listdir(tmp_path) == ["file.json"]


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.save_outcome(ok_outcome())
        loaded = store.load_outcome("fig2")
        assert loaded.status == "ok"
        assert loaded.result.comparison("lev2WS").measured_value == 2304.0

    def test_completed_ids(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        assert store.completed_ids() == []
        store.save_outcome(ok_outcome())
        assert store.completed_ids() == ["fig2"]
        assert store.has_result("fig2")
        assert not store.has_result("fig4")

    def test_bit_flip_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        path = store.save_outcome(ok_outcome())
        text = path.read_text()
        # Flip a digit inside the payload (not the checksum header).
        corrupted = text.replace("2304.0", "9304.0")
        assert corrupted != text
        path.write_text(corrupted)
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            store.load_outcome("fig2")
        assert not store.has_result("fig2")
        assert store.completed_ids() == []

    def test_truncated_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        path = store.save_outcome(ok_outcome())
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointCorruptError):
            store.load_outcome("fig2")

    def test_non_json_detected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        path = store.result_path("fig2")
        path.parent.mkdir(parents=True)
        path.write_text("not json at all")
        with pytest.raises(CheckpointCorruptError):
            store.load_outcome("fig2")

    def test_failure_records_are_not_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        failed = ExperimentOutcome(
            experiment_id="fig6", status="failed", attempts=3
        )
        store.save_failure(failed)
        assert store.completed_ids() == []
        assert store.failure_path("fig6").is_file()

    def test_manifest_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        assert store.read_manifest() is None
        store.write_manifest({"experiments": ["fig2"], "quick": True})
        assert store.read_manifest() == {"experiments": ["fig2"], "quick": True}

    def test_summary_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        assert store.read_summary() is None
        store.write_summary({"status": "interrupted", "completed": ["fig2"]})
        assert store.read_summary()["status"] == "interrupted"

    def test_verify_all_reports_damage(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.write_manifest({"experiments": ["fig2"]})
        store.save_outcome(ok_outcome())
        assert store.verify_all() == {}
        path = store.result_path("fig2")
        path.write_text(path.read_text().replace("2304.0", "9304.0"))
        problems = store.verify_all()
        assert list(problems) == ["results/fig2.json"]
        assert "integrity" in problems["results/fig2.json"]


class TestConcurrentWriters:
    """Satellite: checkpoint durability under concurrent writers.

    Multiple processes hammer the same run directory (shared summary,
    shared manifest, distinct and shared result ids); the file lock
    plus atomic write-rename must leave every envelope verifiable."""

    WRITER_SCRIPT = """
import sys
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import ExperimentOutcome

run_dir, index = sys.argv[1], int(sys.argv[2])
store = CheckpointStore(run_dir)
for i in range(25):
    own = ExperimentOutcome(
        experiment_id=f"own-{index}-{i % 5}", status="ok", attempts=1
    )
    store.save_outcome(own)
    shared = ExperimentOutcome(
        experiment_id="shared", status="ok", attempts=index + 1
    )
    store.save_outcome(shared)
    store.write_summary({"status": "complete", "writer": index, "i": i})
    store.write_manifest({"experiments": ["shared"], "writer": index})
"""

    def test_parallel_processes_never_corrupt_the_store(self, tmp_path):
        import subprocess
        import sys as _sys

        run_dir = tmp_path / "run"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in _sys.path if p)
        writers = [
            subprocess.Popen(
                [_sys.executable, "-c", self.WRITER_SCRIPT, str(run_dir), str(i)],
                env=env,
                stderr=subprocess.PIPE,
                text=True,
            )
            for i in range(4)
        ]
        for writer in writers:
            _, stderr = writer.communicate(timeout=120)
            assert writer.returncode == 0, stderr

        store = CheckpointStore(run_dir)
        assert store.verify_all() == {}
        done = store.completed_ids()
        assert "shared" in done
        assert len(done) == 4 * 5 + 1
        # The survivors parse as exactly one writer's coherent payload.
        assert store.read_summary()["status"] == "complete"
        assert store.load_outcome("shared").attempts in (1, 2, 3, 4)
