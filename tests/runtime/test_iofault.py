"""Tests for the I/O fault injector and the shared atomic write."""

from __future__ import annotations

import errno
import os

import pytest

import repro.runtime.iofault as iofault
from repro.runtime.iofault import (
    IOFAULT_ENV,
    IOFault,
    IOFaultInjector,
    atomic_write_bytes,
    atomic_write_text,
    check_io,
    install,
    install_from_env,
    io_write,
)


def no_tmp_litter(directory) -> bool:
    return not [p for p in directory.iterdir() if p.name.endswith(".tmp")]


class TestSpecParsing:
    def test_full_spec(self):
        fault = IOFault.parse("journal:write:kill:3")
        assert (fault.site, fault.op, fault.kind, fault.nth) == (
            "journal", "write", "kill", 3,
        )
        assert not fault.repeat

    def test_defaults_and_repeat(self):
        assert IOFault.parse("checkpoint:fsync:eio").nth == 1
        assert IOFault.parse("*:*:enospc:2:repeat").repeat

    @pytest.mark.parametrize(
        "spec", ["journal", "a:write:bogus", "a:poke:eio", "a:write:eio:0"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            IOFault.parse(spec)

    def test_injector_parses_comma_separated_list(self):
        injector = IOFaultInjector.parse("journal:write:eio:1,lease:fsync:eio:2")
        assert len(injector.faults) == 2


class TestCounting:
    def test_fires_exactly_at_nth(self, tmp_path):
        injector = IOFaultInjector([IOFault("journal", "write", "enospc", nth=2)])
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with install(injector):
                io_write(fd, b"one", "journal")  # call 1: clean
                with pytest.raises(OSError) as caught:
                    io_write(fd, b"two", "journal")  # call 2: fires
                assert caught.value.errno == errno.ENOSPC
                io_write(fd, b"three", "journal")  # call 3: clean again
        finally:
            os.close(fd)
        assert injector.fired == [("journal", "write", "enospc", 2)]

    def test_repeat_fires_from_nth_on(self, tmp_path):
        injector = IOFaultInjector(
            [IOFault("journal", "write", "eio", nth=2, repeat=True)]
        )
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with install(injector):
                io_write(fd, b"x", "journal")
                for _ in range(3):
                    with pytest.raises(OSError):
                        io_write(fd, b"x", "journal")
        finally:
            os.close(fd)

    def test_sites_count_independently(self, tmp_path):
        injector = IOFaultInjector([IOFault("journal", "write", "eio", nth=1)])
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with install(injector):
                io_write(fd, b"x", "checkpoint")  # different site: clean
                with pytest.raises(OSError):
                    io_write(fd, b"x", "journal")
        finally:
            os.close(fd)

    def test_uninstalled_wrappers_are_plain_syscalls(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            assert io_write(fd, b"hello", "journal") == 5
        finally:
            os.close(fd)
        assert (tmp_path / "f").read_bytes() == b"hello"


class TestFaultKinds:
    def test_short_write_tears_the_data(self, tmp_path):
        injector = IOFaultInjector([IOFault("journal", "write", "short-write")])
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with install(injector):
                with pytest.raises(OSError) as caught:
                    io_write(fd, b"0123456789", "journal")
        finally:
            os.close(fd)
        assert caught.value.errno == errno.ENOSPC
        torn = (tmp_path / "f").read_bytes()
        assert 0 < len(torn) < 10  # a real torn prefix, not all-or-nothing

    def test_check_io_degrades_short_write_to_enospc(self):
        injector = IOFaultInjector([IOFault("tracefile", "write", "short-write")])
        with install(injector):
            with pytest.raises(OSError) as caught:
                check_io("tracefile", "write")
        assert caught.value.errno == errno.ENOSPC

    def test_injected_errors_name_the_site(self):
        injector = IOFaultInjector([IOFault("lease", "fsync", "fsync-fail")])
        with install(injector):
            with pytest.raises(OSError, match=r"injected at lease:fsync"):
                iofault.io_fsync(0, "lease")


class TestAtomicWrite:
    def test_replaces_content_without_litter(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text("old")
        atomic_write_text(target, "new", site="checkpoint")
        assert target.read_text() == "new"
        assert no_tmp_litter(tmp_path)

    def test_enospc_preserves_old_content_and_unlinks_temp(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text("old")
        injector = IOFaultInjector([IOFault("checkpoint", "write", "enospc")])
        with install(injector):
            with pytest.raises(OSError):
                atomic_write_text(target, "new", site="checkpoint")
        assert target.read_text() == "old"
        assert no_tmp_litter(tmp_path)

    def test_fsync_failure_also_cleans_up(self, tmp_path):
        target = tmp_path / "data.json"
        injector = IOFaultInjector([IOFault("checkpoint", "fsync", "fsync-fail")])
        with install(injector):
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"bytes", site="checkpoint")
        assert not target.exists()
        assert no_tmp_litter(tmp_path)

    def test_non_durable_skips_fsync(self, tmp_path):
        # With durable=False an armed fsync fault never fires.
        target = tmp_path / "hb.json"
        injector = IOFaultInjector(
            [IOFault("lease", "fsync", "fsync-fail", repeat=True)]
        )
        with install(injector):
            atomic_write_text(target, "beat", site="lease", durable=False)
        assert target.read_text() == "beat"


class TestEnvInstall:
    def test_absent_variable_is_a_noop(self):
        assert install_from_env({}) is None

    def test_env_spec_arms_the_process(self, tmp_path):
        previous = iofault.active_injector()
        try:
            injector = install_from_env({IOFAULT_ENV: "journal:write:eio:1"})
            assert injector is not None
            fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
            try:
                with pytest.raises(OSError):
                    io_write(fd, b"x", "journal")
            finally:
                os.close(fd)
        finally:
            iofault._ACTIVE = previous

    def test_worker_environment_strips_the_variable(self, monkeypatch):
        from repro.runtime.workers import worker_environment

        monkeypatch.setenv(IOFAULT_ENV, "journal:write:kill:1")
        assert IOFAULT_ENV not in worker_environment()
