"""Tests for the structured JSONL campaign event log."""

import json
import threading

from repro.runtime.events import EVENTS_FILENAME, EventLog, read_events

from tests.runtime.conftest import FakeClock


class TestEventLog:
    def test_records_have_seq_and_timestamps(self, tmp_path):
        mono = FakeClock(step=0.5)
        wall = FakeClock(step=1.0)
        with EventLog(tmp_path / EVENTS_FILENAME, clock=mono, wall_clock=wall) as log:
            first = log.emit("start", experiment_id="fig2", attempt=1)
            second = log.emit("finish", experiment_id="fig2", status="ok")
        assert first["seq"] == 1 and second["seq"] == 2
        assert second["t_mono"] > first["t_mono"] >= 0
        assert first["experiment_id"] == "fig2"
        assert first["attempt"] == 1

    def test_none_detail_fields_are_dropped(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            record = log.emit("start", experiment_id=None, extra=None, kept=3)
        assert "experiment_id" not in record
        assert "extra" not in record
        assert record["kept"] == 3

    def test_lines_are_flushed_immediately(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("start")
            # Readable before close: a killed supervisor loses nothing.
            assert read_events(path)[0]["event"] == "start"

    def test_read_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("start")
            log.emit("finish")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "event": "tru')  # torn mid-write
        events = read_events(path)
        assert [e["event"] for e in events] == ["start", "finish"]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_concurrent_emitters_produce_a_total_order(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path)

        def spam(thread_index):
            for i in range(50):
                log.emit("tick", thread=thread_index, i=i)

        threads = [
            threading.Thread(target=spam, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()

        lines = path.read_text().splitlines()
        assert len(lines) == 400
        records = [json.loads(line) for line in lines]  # every line intact
        seqs = [r["seq"] for r in records]
        assert sorted(seqs) == list(range(1, 401))


class TestResumeAppend:
    """A resumed supervisor appends to the same log without breaking
    the total order or welding onto a torn tail."""

    def test_seq_continues_across_generations(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        with EventLog(path) as log:
            log.emit("campaign-start")
            log.emit("attempt-start")
        with EventLog(path) as log:
            record = log.emit("resume")
        assert record["seq"] == 3
        seqs = [e["seq"] for e in read_events(path)]
        assert seqs == [1, 2, 3]

    def test_torn_tail_is_truncated_before_appending(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        with EventLog(path) as log:
            log.emit("campaign-start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "event": "tor')  # killed mid-write
        with EventLog(path) as log:
            log.emit("resume")
        events = read_events(path)
        assert [e["event"] for e in events] == ["campaign-start", "resume"]
        assert [e["seq"] for e in events] == [1, 2]
        # Every line is intact — no welded torn/valid hybrid line.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_terminated_garbage_tail_is_also_dropped(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        with EventLog(path) as log:
            log.emit("campaign-start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "event": "tor\n')  # torn, with newline
        with EventLog(path) as log:
            log.emit("resume")
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_fresh_log_still_starts_at_one(self, tmp_path):
        with EventLog(tmp_path / "new.jsonl") as log:
            assert log.emit("first")["seq"] == 1
