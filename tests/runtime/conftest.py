"""Shared helpers for the runtime (campaign engine) tests.

Everything here is deterministic: clocks are fake (advance a fixed
amount per call) and sleeps are recorded, never executed.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.experiments.runner import ExperimentResult


class FakeClock:
    """A monotonic clock advancing ``step`` seconds per reading."""

    def __init__(self, step: float = 0.01) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class SleepRecorder:
    """Records requested sleeps instead of sleeping."""

    def __init__(self) -> None:
        self.calls: List[float] = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)


def make_result(experiment_id: str, **marks) -> ExperimentResult:
    """A minimal ExperimentResult whose notes record the run kwargs."""
    result = ExperimentResult(experiment_id=experiment_id, title=f"fake {experiment_id}")
    for key, value in sorted(marks.items()):
        result.notes.append(f"param {key}={value}")
    return result


class FakeExperiment:
    """Stands in for an experiment module: ``run(**kwargs)``.

    Args:
        experiment_id: Id echoed into the produced result.
        fail_times: Raise ``error`` on the first N calls.
        error: Exception instance to raise while failing.
    """

    def __init__(self, experiment_id: str, fail_times: int = 0, error=None):
        self.experiment_id = experiment_id
        self.fail_times = fail_times
        self.error = error or RuntimeError("fake failure")
        self.calls: List[dict] = []

    def run(self, **kwargs) -> ExperimentResult:
        self.calls.append(dict(kwargs))
        if len(self.calls) <= self.fail_times:
            raise self.error
        return make_result(self.experiment_id, **kwargs)


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def sleep_recorder():
    return SleepRecorder()
