"""Module-level experiment runners for worker-backend tests.

The hard-isolation backend ships runners by importable reference, so
the usual in-test ``FakeExperiment`` instances cannot cross the
process boundary.  Everything here is a module-level function the
worker subprocess can re-import by name (the supervisor propagates its
``sys.path`` through ``PYTHONPATH``, so this test-only module resolves
inside workers too).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult


def run_ok(**kwargs) -> ExperimentResult:
    """A healthy experiment: echoes its kwargs into the result notes."""
    result = ExperimentResult(
        experiment_id="worker-target", title="worker target"
    )
    for key, value in sorted(kwargs.items()):
        result.notes.append(f"param {key}={value}")
    return result


def run_noisy(**kwargs) -> ExperimentResult:
    """Spams stdout before returning, to attack the wire protocol."""
    print("stray stdout line that must not corrupt the payload" * 50)
    return run_ok(**kwargs)


def run_crash(**kwargs) -> ExperimentResult:
    """Raises a taxonomy error (classified inside the worker)."""
    from repro.runtime.errors import SimulationError

    raise SimulationError("deliberate crash in worker target")


def run_wrong_type(**kwargs) -> int:
    """Returns a non-ExperimentResult (classified inside the worker)."""
    return 42


def run_sigkill(**kwargs) -> ExperimentResult:
    """Dies on an un-catchable signal, like a segfault or OOM kill."""
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)
    return run_ok(**kwargs)  # pragma: no cover - never reached


def _factory():
    def local_runner(**kwargs):  # pragma: no cover - never shipped
        return run_ok(**kwargs)

    return local_runner


#: A closure: has a qualname, but one containing ``<locals>`` — not
#: shippable by reference.
local_runner = _factory()
