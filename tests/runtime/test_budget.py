"""Tests for wall-clock budgets and their cooperative enforcement in
the simulation loops."""

import numpy as np
import pytest

from repro.mem.cache import FullyAssociativeCache
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import Trace, TraceBuilder, interleave_round_robin
from repro.runtime.budget import (
    Budget,
    activate,
    active_budget,
    check_active_budget,
)
from repro.runtime.errors import BudgetExceeded

from tests.runtime.conftest import FakeClock


def expired_budget() -> Budget:
    """A budget whose deadline has already passed (fake clock)."""
    clock = FakeClock(step=1.0)
    return Budget(0.5, clock=clock)


def big_trace(n: int = 100_000) -> Trace:
    return Trace(
        np.arange(0, n * 8, 8, dtype=np.int64), np.zeros(n, dtype=np.uint8)
    )


class TestBudget:
    def test_unlimited_never_exceeds(self):
        budget = Budget.unlimited()
        assert budget.remaining() is None
        assert not budget.exceeded()
        budget.check()  # no raise

    def test_deadline_raises_with_context(self):
        budget = expired_budget()
        with pytest.raises(BudgetExceeded, match="profiling phase"):
            budget.check("profiling phase")

    def test_nonpositive_seconds_rejected(self):
        with pytest.raises(ValueError):
            Budget(0)
        with pytest.raises(ValueError):
            Budget(-1.0)

    def test_remaining_decreases(self):
        clock = FakeClock(step=0.1)
        budget = Budget(10.0, clock=clock)
        first = budget.remaining()
        second = budget.remaining()
        assert second < first

    def test_restart_resets_deadline(self):
        clock = FakeClock(step=0.3)
        budget = Budget(0.5, clock=clock)
        clock.now = 10.0
        assert budget.exceeded()
        budget.restart()
        assert not budget.exceeded()

    def test_budget_exceeded_is_catchable_taxonomy_member(self):
        from repro.runtime.errors import ExperimentError

        assert issubclass(BudgetExceeded, ExperimentError)


class TestAmbientBudget:
    def test_activation_nests_and_restores(self):
        outer, inner = Budget.unlimited(), Budget.unlimited()
        assert active_budget() is None
        with activate(outer):
            assert active_budget() is outer
            with activate(inner):
                assert active_budget() is inner
            assert active_budget() is outer
        assert active_budget() is None

    def test_check_active_noop_without_budget(self):
        check_active_budget("anything")

    def test_check_active_raises_with_expired_budget(self):
        with activate(expired_budget()):
            with pytest.raises(BudgetExceeded):
                check_active_budget()

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with activate(Budget.unlimited()):
                raise RuntimeError("boom")
        assert active_budget() is None


class TestCooperativeChecks:
    """The mem simulation loops poll the budget and abort."""

    def test_stack_distance_profile_aborts(self):
        with pytest.raises(BudgetExceeded):
            profile_trace(big_trace(), budget=expired_budget())

    def test_stack_distance_uses_ambient_budget(self):
        with activate(expired_budget()):
            with pytest.raises(BudgetExceeded):
                profile_trace(big_trace())

    def test_fully_associative_run_aborts(self):
        cache = FullyAssociativeCache(1024)
        with pytest.raises(BudgetExceeded):
            cache.run(big_trace(), budget=expired_budget())

    def test_set_associative_run_aborts(self):
        cache = SetAssociativeCache(1024, associativity=2)
        with pytest.raises(BudgetExceeded):
            cache.run(big_trace(), budget=expired_budget())

    def test_interleave_aborts(self):
        builder = TraceBuilder()
        builder.read_range(0, 64)
        traces = [builder.build()] * 4
        with pytest.raises(BudgetExceeded):
            interleave_round_robin(traces, budget=expired_budget())

    def test_generous_budget_does_not_interfere(self):
        trace = big_trace(10_000)
        unbudgeted = profile_trace(trace)
        budgeted = profile_trace(trace, budget=Budget(3600.0))
        np.testing.assert_array_equal(
            unbudgeted.depth_histogram, budgeted.depth_histogram
        )
        assert unbudgeted.cold_misses == budgeted.cold_misses
