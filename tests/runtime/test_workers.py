"""Tests for the hard process-isolation backend: runner shipping, the
wire protocol, subprocess containment (kill-based timeouts, rlimits,
death classification), and the parallel worker pool end to end."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import ExperimentResult
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import CampaignEngine, EngineConfig
from repro.runtime.errors import (
    ExperimentFailure,
    WorkerCrashError,
    WorkerMemoryError,
    WorkerTimeoutError,
)
from repro.runtime.events import EventLog, read_events
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.workers import (
    AttemptSpec,
    WorkerPool,
    WorkerSupervisor,
    apply_address_space_limit,
    parse_worker_payload,
    resolve_runner_ref,
    runner_ref,
    worker_environment,
)

from tests.runtime import worker_targets

TARGETS = "tests.runtime.worker_targets"

#: Generous rlimit that still stops the memhog quickly: the worker
#: interpreter plus numpy needs a few hundred MiB of address space.
RLIMIT_MB = 512


def make_spec(runner=f"{TARGETS}:run_ok", **overrides) -> AttemptSpec:
    defaults = dict(experiment_id="exp", runner=runner, kwargs={"n": 3})
    defaults.update(overrides)
    return AttemptSpec(**defaults)


class TestRunnerRef:
    def test_module_ships_by_name(self):
        import repro.experiments.table1 as table1

        ref = runner_ref(table1)
        assert ref == "repro.experiments.table1"
        assert resolve_runner_ref(ref) is table1

    def test_module_level_function_ships_by_qualname(self):
        ref = runner_ref(worker_targets.run_ok)
        assert ref == f"{TARGETS}:run_ok"
        assert resolve_runner_ref(ref) is worker_targets.run_ok

    def test_instance_rejected(self):
        from tests.runtime.conftest import FakeExperiment

        with pytest.raises(TypeError, match="jobs=0"):
            runner_ref(FakeExperiment("a"))

    def test_closure_rejected(self):
        with pytest.raises(TypeError, match="not shippable"):
            runner_ref(worker_targets.local_runner)

    def test_pool_fails_fast_on_unshippable_registry(self):
        from tests.runtime.conftest import FakeExperiment

        engine = CampaignEngine(
            {"a": (FakeExperiment("a"), {})},
            config=EngineConfig(jobs=1),
        )
        with pytest.raises(TypeError, match="not shippable"):
            engine.run()


class TestAttemptSpec:
    def test_json_round_trip(self):
        spec = AttemptSpec(
            experiment_id="fig6",
            runner=f"{TARGETS}:run_ok",
            kwargs={"n": 256, "theta": 0.5},
            attempt=2,
            degraded=True,
            budget_seconds=12.5,
            max_rss_mb=512,
            fault={"kind": "crash"},
            workspace="/tmp/ws",
        )
        restored = AttemptSpec.from_json(spec.to_json())
        assert restored == spec

    def test_tuples_arrive_as_lists(self):
        spec = make_spec(kwargs={"slope_sizes": (24, 40)})
        restored = AttemptSpec.from_json(spec.to_json())
        assert restored.kwargs == {"slope_sizes": [24, 40]}


class TestPayloadParsing:
    def test_ok_payload(self):
        result = worker_targets.run_ok(n=3)
        payload = json.dumps({"ok": True, "result": result.to_dict()})
        parsed, failure = parse_worker_payload(make_spec(), payload)
        assert failure is None
        assert isinstance(parsed, ExperimentResult)
        assert parsed.notes == ["param n=3"]

    def test_failure_payload(self):
        failure_dict = ExperimentFailure(
            experiment_id="exp",
            attempt=1,
            category="simulation",
            error_type="SimulationError",
            message="boom",
        ).to_dict()
        payload = json.dumps({"ok": False, "failure": failure_dict})
        result, failure = parse_worker_payload(make_spec(), payload)
        assert result is None
        assert failure.category == "simulation"
        assert failure.message == "boom"

    @pytest.mark.parametrize(
        "stdout", ["", "not json", "[1, 2]", '{"ok": true}']
    )
    def test_malformed_payload_is_classified(self, stdout):
        spec = make_spec(attempt=2, degraded=True)
        result, failure = parse_worker_payload(spec, stdout, "some stderr")
        assert result is None
        assert failure.category == WorkerCrashError.category
        assert failure.error_type == "WorkerCrashError"
        assert failure.attempt == 2 and failure.degraded
        assert "unusable result payload" in failure.message
        assert "some stderr" in failure.traceback_text


class TestWorkerEnvironment:
    def test_propagates_sys_path(self):
        env = worker_environment()
        entries = env["PYTHONPATH"].split(os.pathsep)
        for entry in sys.path:
            if entry:
                assert entry in entries

    def test_rlimit_helper_is_a_no_op_without_limit(self):
        assert apply_address_space_limit(None) is False


class TestSupervisorValidation:
    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(hard_timeout_seconds=0)

    def test_bad_grace_rejected(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(term_grace_seconds=-1)


class TestSupervisorContainment:
    """Each test round-trips a real subprocess through the supervisor."""

    def test_healthy_attempt_round_trips(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=60)
        result, failure = supervisor.run_attempt(make_spec(kwargs={"n": 7}))
        assert failure is None
        assert result.notes == ["param n=7"]
        assert supervisor.live_count() == 0

    def test_stray_stdout_cannot_corrupt_the_protocol(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=60)
        result, failure = supervisor.run_attempt(
            make_spec(runner=f"{TARGETS}:run_noisy")
        )
        assert failure is None
        assert result.notes == ["param n=3"]

    def test_classified_failure_travels_back(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=60)
        result, failure = supervisor.run_attempt(
            make_spec(runner=f"{TARGETS}:run_crash")
        )
        assert result is None
        assert failure.category == "simulation"
        assert failure.error_type == "SimulationError"
        assert "deliberate crash" in failure.message

    def test_wrong_return_type_is_classified(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=60)
        result, failure = supervisor.run_attempt(
            make_spec(runner=f"{TARGETS}:run_wrong_type")
        )
        assert result is None
        assert "expected ExperimentResult" in failure.message

    def test_non_cooperative_hang_is_killed_at_the_deadline(self):
        events = []
        supervisor = WorkerSupervisor(
            hard_timeout_seconds=1.0,
            term_grace_seconds=2.0,
            on_event=lambda e, i, d: events.append((e, i, d)),
        )
        started = time.monotonic()
        result, failure = supervisor.run_attempt(
            make_spec(fault={"kind": "hang", "cooperative": False})
        )
        elapsed = time.monotonic() - started
        assert result is None
        assert failure.category == WorkerTimeoutError.category
        assert failure.error_type == "WorkerTimeoutError"
        assert "hard deadline" in failure.message
        # Killed promptly after the 1s deadline, not after minutes.
        assert elapsed < 30
        kill_events = [e for e in events if e[0] == "worker-killed"]
        assert kill_events and kill_events[0][1] == "exp"
        assert kill_events[0][2]["signal"] == "SIGTERM"
        assert supervisor.live_count() == 0

    def test_memhog_contained_by_rlimit(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=120)
        result, failure = supervisor.run_attempt(
            make_spec(fault={"kind": "memhog"}, max_rss_mb=RLIMIT_MB)
        )
        assert result is None
        assert failure.category == WorkerMemoryError.category
        assert failure.error_type == "WorkerMemoryError"
        assert "rlimit" in failure.message

    def test_sudden_death_is_classified(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=60)
        result, failure = supervisor.run_attempt(
            make_spec(fault={"kind": "die", "exit_code": 7})
        )
        assert result is None
        assert failure.category == WorkerCrashError.category
        assert "status 7" in failure.message

    def test_death_by_signal_is_classified(self):
        supervisor = WorkerSupervisor(hard_timeout_seconds=60)
        result, failure = supervisor.run_attempt(
            make_spec(runner=f"{TARGETS}:run_sigkill")
        )
        assert result is None
        assert failure.category == WorkerCrashError.category
        assert "SIGKILL" in failure.message


class TestWorkerPoolAcceptance:
    """ISSUE acceptance: a parallel campaign with an injected
    non-cooperative hang and a memory hog completes — both workers are
    killed/contained and classified, the experiments retry-degrade, the
    healthy one finishes, and --resume skips everything checkpointed."""

    def _engine(self, store, event_log=None, faults=None):
        registry = {
            "healthy": (worker_targets.run_ok, {"n": 1}),
            "hangy": (worker_targets.run_ok, {"n": 2}),
            "hoggy": (worker_targets.run_ok, {"n": 3}),
        }
        overrides = {name: {"n": 0} for name in registry}
        return CampaignEngine(
            registry,
            quick_overrides=overrides,
            config=EngineConfig(
                jobs=2,
                hard_timeout_seconds=2.0,
                term_grace_seconds=2.0,
                max_rss_mb=RLIMIT_MB,
                max_attempts=2,
                backoff_base_seconds=0.0,
            ),
            store=store,
            faults=faults,
            event_log=event_log,
        )

    def test_parallel_containment_degrade_and_resume(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        faults = FaultInjector(
            plan={
                "hangy": FaultSpec(kind="hang", cooperative=False),
                "hoggy": FaultSpec(kind="memhog"),
            }
        )
        with EventLog(store.events_path) as event_log:
            engine = self._engine(store, event_log=event_log, faults=faults)
            report = engine.run()

        assert report.succeeded
        assert report.outcome("healthy").status == "ok"
        hangy = report.outcome("hangy")
        assert hangy.status == "degraded"
        assert hangy.failures[0].category == WorkerTimeoutError.category
        hoggy = report.outcome("hoggy")
        assert hoggy.status == "degraded"
        assert hoggy.failures[0].category == WorkerMemoryError.category
        # Outcomes come back in requested order despite parallelism.
        assert [o.experiment_id for o in report.outcomes] == [
            "healthy", "hangy", "hoggy",
        ]

        # The store survived the carnage intact.
        assert sorted(store.completed_ids()) == ["hangy", "healthy", "hoggy"]
        assert store.verify_all() == {}
        assert store.read_summary()["status"] == "complete"

        # The event log shows the kill and a total order.
        events = read_events(store.events_path)
        names = [e["event"] for e in events]
        assert "worker-killed" in names
        assert "degraded" in names
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

        # Resume: a fresh engine over the same store re-runs nothing.
        report2 = self._engine(store).run()
        assert all(outcome.resumed for outcome in report2.outcomes)
        assert report2.succeeded


class TestGracefulInterruption:
    """ISSUE acceptance: SIGINT mid-campaign kills workers, leaves a
    valid checkpoint store, and --resume completes the remainder
    without re-running finished experiments."""

    def _cli_env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        return env

    def test_sigint_leaves_valid_resumable_store(self, tmp_path):
        run_dir = tmp_path / "run"
        store = CheckpointStore(run_dir)
        argv = [
            sys.executable, "-m", "repro.experiments",
            "--quick", "--jobs", "2", "--run-dir", str(run_dir),
            "--inject-fault", "fig5=hang-hard:99",
            "table1", "fig5",
        ]
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=self._cli_env(),
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and not store.has_result("table1"):
                assert proc.poll() is None, proc.stdout.read()
                time.sleep(0.1)
            assert store.has_result("table1"), "table1 never checkpointed"
            time.sleep(0.3)  # let the fig5 worker get properly stuck
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 1, out
        assert "campaign interrupted" in out
        assert store.verify_all() == {}
        summary = store.read_summary()
        assert summary["status"] == "interrupted"
        assert "table1" in summary["completed"]
        assert "fig5" not in summary["completed"]
        names = [e["event"] for e in read_events(store.events_path)]
        assert "interrupted" in names

        # Resume (no fault this time): fig5 completes, table1 skipped.
        resumed = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments",
                "--quick", "--jobs", "2", "--resume", str(run_dir),
                "table1", "fig5",
            ],
            capture_output=True,
            text=True,
            env=self._cli_env(),
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "table1 already completed" in resumed.stdout
        assert sorted(store.completed_ids()) == ["fig5", "table1"]
        assert store.read_summary()["status"] == "complete"
