"""Tests for the supervisor lease: acquire/reclaim/refuse, monotonic
fencing tokens, and stale-worker rejection."""

from __future__ import annotations

import json
import os
import subprocess

import pytest

from repro.runtime.errors import FencingViolationError, LeaseHeldError
from repro.runtime.lease import (
    DEFAULT_TTL_SECONDS,
    LEASE_FILENAME,
    Lease,
    LeaseState,
    lease_is_stale,
    pid_alive,
    read_lease,
)
from repro.runtime.workers import AttemptSpec, parse_worker_payload

from tests.runtime.conftest import make_result


class _FakeDwell:
    """Deterministic monotonic/sleep pair for the reclaim dwell."""

    def __init__(self) -> None:
        self.t = 0.0
        self.on_sleep = None

    def monotonic(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.t += seconds
        if self.on_sleep is not None:
            self.on_sleep()


class TestAcquire:
    def test_fresh_acquire_gets_token_1(self, tmp_path):
        with Lease.acquire(tmp_path) as lease:
            assert lease.token == 1
            state = read_lease(tmp_path / LEASE_FILENAME)
            assert state.pid == os.getpid() and state.token == 1
        assert read_lease(tmp_path / LEASE_FILENAME) is None  # released

    def test_token_floor_from_journal(self, tmp_path):
        with Lease.acquire(tmp_path, token_floor=7) as lease:
            assert lease.token == 8

    def test_live_lease_is_refused(self, tmp_path):
        with Lease.acquire(tmp_path):
            with pytest.raises(LeaseHeldError, match="live supervisor"):
                Lease.acquire(tmp_path)

    def test_dead_owner_is_reclaimed_with_bumped_token(self, tmp_path):
        proc = subprocess.Popen(["true"])
        proc.wait()
        state = LeaseState(
            pid=proc.pid, token=3, acquired_wall=0.0, heartbeat_wall=0.0
        )
        (tmp_path / LEASE_FILENAME).write_text(state.to_json())
        with Lease.acquire(tmp_path) as lease:
            assert lease.token == 4

    def test_silent_owner_is_reclaimed_after_ttl(self, tmp_path):
        # Owner PID is alive (it is us) but stopped heartbeating.
        now = 1000.0
        state = LeaseState(
            pid=os.getpid(),
            token=2,
            acquired_wall=now - 100,
            heartbeat_wall=now - 100,
        )
        (tmp_path / LEASE_FILENAME).write_text(state.to_json())
        with pytest.raises(LeaseHeldError):
            Lease.acquire(tmp_path, ttl_seconds=500.0, wall_clock=lambda: now)
        dwell = _FakeDwell()
        with Lease.acquire(
            tmp_path,
            ttl_seconds=30.0,
            wall_clock=lambda: now,
            monotonic_clock=dwell.monotonic,
            sleep=dwell.sleep,
        ) as lease:
            assert lease.token == 3
        # The reclaim really dwelled (ttl/2) before trusting the
        # wall-clock staleness verdict.
        assert dwell.t >= 15.0

    def test_undecodable_lease_treated_as_absent(self, tmp_path):
        (tmp_path / LEASE_FILENAME).write_text("{torn")
        with Lease.acquire(tmp_path, token_floor=5) as lease:
            assert lease.token == 6

    def test_nonpositive_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ttl_seconds"):
            Lease.acquire(tmp_path, ttl_seconds=0)


class TestHeartbeatAndRelease:
    def test_heartbeat_refreshes_timestamp(self, tmp_path):
        clock = iter([100.0, 200.0, 300.0])
        lease = Lease.acquire(tmp_path, wall_clock=lambda: next(clock))
        lease.heartbeat()
        assert read_lease(tmp_path / LEASE_FILENAME).heartbeat_wall == 200.0
        lease.release()

    def test_heartbeat_thread_beats_and_stops(self, tmp_path):
        lease = Lease.acquire(tmp_path)
        lease.start_heartbeat(interval_seconds=0.01)
        import time as _time

        deadline = _time.monotonic() + 2.0
        acquired = lease.state.heartbeat_wall
        while _time.monotonic() < deadline:
            state = read_lease(tmp_path / LEASE_FILENAME)
            if state is not None and state.heartbeat_wall > acquired:
                break
            _time.sleep(0.01)
        else:
            pytest.fail("heartbeat thread never refreshed the lease")
        lease.release()
        assert not (tmp_path / LEASE_FILENAME).exists()

    def test_release_leaves_a_newer_owner_alone(self, tmp_path):
        lease = Lease.acquire(tmp_path)
        usurper = LeaseState(
            pid=os.getpid(), token=99, acquired_wall=0.0, heartbeat_wall=0.0
        )
        (tmp_path / LEASE_FILENAME).write_text(usurper.to_json())
        lease.release()
        # The usurper's file survives: fencing forbids deleting it.
        assert read_lease(tmp_path / LEASE_FILENAME).token == 99


class TestClockSkew:
    """Monotonic-vs-wall cross-check: a reader whose wall clock runs a
    full TTL ahead of a live owner's must NOT steal the lease — the
    off-by-TTL reclaim window is closed by heartbeat progress observed
    across a monotonic dwell."""

    TTL = 30.0

    def _owner_lease(self, tmp_path, heartbeat_wall: float) -> LeaseState:
        state = LeaseState(
            pid=os.getpid(),
            token=5,
            acquired_wall=heartbeat_wall,
            heartbeat_wall=heartbeat_wall,
        )
        (tmp_path / LEASE_FILENAME).write_text(state.to_json())
        return state

    def test_skewed_reader_refuses_live_owner(self, tmp_path):
        # Owner heartbeat "now" by its own clock (t=1000); the reader's
        # wall clock is 2*TTL ahead, so the snapshot verdict says stale.
        owner = self._owner_lease(tmp_path, heartbeat_wall=1000.0)
        dwell = _FakeDwell()
        beats = []

        def owner_heartbeats():
            # The live owner refreshes mid-dwell (on its own clock).
            if not beats:
                beats.append(True)
                refreshed = LeaseState(
                    pid=owner.pid,
                    token=owner.token,
                    acquired_wall=owner.acquired_wall,
                    heartbeat_wall=owner.heartbeat_wall + 10.0,
                )
                (tmp_path / LEASE_FILENAME).write_text(refreshed.to_json())

        dwell.on_sleep = owner_heartbeats
        with pytest.raises(LeaseHeldError, match="clock skew"):
            Lease.acquire(
                tmp_path,
                ttl_seconds=self.TTL,
                wall_clock=lambda: 1000.0 + 2 * self.TTL,
                monotonic_clock=dwell.monotonic,
                sleep=dwell.sleep,
            )
        # The live owner's lease survived untouched.
        assert read_lease(tmp_path / LEASE_FILENAME).token == owner.token

    def test_dwell_confirms_truly_silent_owner(self, tmp_path):
        # Same skewed snapshot, but the owner never heartbeats during
        # the dwell: a genuinely hung owner is still reclaimed.
        self._owner_lease(tmp_path, heartbeat_wall=1000.0)
        dwell = _FakeDwell()
        with Lease.acquire(
            tmp_path,
            ttl_seconds=self.TTL,
            wall_clock=lambda: 1000.0 + 2 * self.TTL,
            monotonic_clock=dwell.monotonic,
            sleep=dwell.sleep,
        ) as lease:
            assert lease.token == 6
        assert dwell.t >= self.TTL / 2.0

    def test_dead_pid_reclaims_without_dwell(self, tmp_path):
        proc = subprocess.Popen(["true"])
        proc.wait()
        state = LeaseState(
            pid=proc.pid, token=3, acquired_wall=0.0, heartbeat_wall=0.0
        )
        (tmp_path / LEASE_FILENAME).write_text(state.to_json())

        def must_not_sleep(seconds: float) -> None:
            pytest.fail("dead-PID reclaim must not dwell")

        with Lease.acquire(
            tmp_path, sleep=must_not_sleep
        ) as lease:
            assert lease.token == 4

    def test_owner_release_during_dwell_allows_reclaim(self, tmp_path):
        self._owner_lease(tmp_path, heartbeat_wall=1000.0)
        dwell = _FakeDwell()
        dwell.on_sleep = lambda: (tmp_path / LEASE_FILENAME).unlink(
            missing_ok=True
        )
        with Lease.acquire(
            tmp_path,
            ttl_seconds=self.TTL,
            wall_clock=lambda: 1000.0 + 2 * self.TTL,
            monotonic_clock=dwell.monotonic,
            sleep=dwell.sleep,
        ) as lease:
            assert lease.token == 6


class TestStaleness:
    def test_dead_pid_is_stale(self):
        proc = subprocess.Popen(["true"])
        proc.wait()
        state = LeaseState(
            pid=proc.pid, token=1, acquired_wall=0.0, heartbeat_wall=0.0
        )
        assert lease_is_stale(state)

    def test_future_heartbeat_is_fresh(self):
        state = LeaseState(
            pid=os.getpid(), token=1, acquired_wall=0.0, heartbeat_wall=1e12
        )
        assert not lease_is_stale(state, ttl_seconds=DEFAULT_TTL_SECONDS)

    def test_pid_alive_basics(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(0) and not pid_alive(-5)


class TestFencing:
    """A worker payload from a superseded supervisor must be rejected."""

    def make_spec(self, token: int) -> AttemptSpec:
        return AttemptSpec(
            experiment_id="figA",
            runner="tests.runtime.worker_targets:ok_result",
            fencing_token=token,
        )

    def ok_payload(self, token: int) -> str:
        return json.dumps(
            {
                "ok": True,
                "result": make_result("figA").to_dict(),
                "token": token,
            }
        )

    def test_current_token_is_accepted(self):
        result, failure = parse_worker_payload(
            self.make_spec(2), self.ok_payload(2), expected_token=2
        )
        assert failure is None and result.experiment_id == "figA"

    def test_stale_token_is_rejected(self):
        result, failure = parse_worker_payload(
            self.make_spec(1), self.ok_payload(1), expected_token=2
        )
        assert result is None
        assert failure.error_type == "FencingViolationError"
        assert failure.category == FencingViolationError.category
        assert "superseded" in failure.message

    def test_tokenless_legacy_payload_rejected_by_fenced_supervisor(self):
        payload = json.dumps(
            {"ok": True, "result": make_result("figA").to_dict()}
        )
        _, failure = parse_worker_payload(
            self.make_spec(0), payload, expected_token=1
        )
        assert failure is not None
        assert failure.error_type == "FencingViolationError"

    def test_no_expectation_accepts_anything(self):
        result, failure = parse_worker_payload(
            self.make_spec(0), self.ok_payload(0), expected_token=None
        )
        assert failure is None and result is not None
