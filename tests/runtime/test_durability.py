"""Property-style crash/resume equivalence for the durability layer.

Sweeps seeded crash points — a persistent injected I/O failure at the
Nth write to the journal, the checkpoint store, or the event log —
through a real (in-process) campaign, then resumes with a fresh engine
under a bumped fencing token and asserts the end state is
indistinguishable from a campaign that never crashed:

- the summary is byte-identical to an uninterrupted reference run's,
- the journal records at most one ``attempt-end`` per ``attempt_uid``
  and at most one *committed* end per experiment,
- experiments the recovery pass classified ``committed`` are never
  re-executed (exactly-once commit, no double-execution),
- :func:`repro.validate.artifacts.validate_run_dir` finds no errors.

The subprocess/SIGKILL version of the same property lives in the chaos
harness (:mod:`repro.runtime.chaos`); this sweep covers the engine
protocol itself, deterministically and fast.
"""

from __future__ import annotations

import itertools

import pytest

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import CampaignEngine, EngineConfig
from repro.runtime.events import EventLog, read_events
from repro.runtime.iofault import IOFault, IOFaultInjector, install
from repro.runtime.journal import (
    COMMITTED_STATUSES,
    JOURNAL_FILENAME,
    Journal,
    read_journal,
    recover,
)
from repro.validate.artifacts import validate_run_dir

from tests.runtime.conftest import FakeClock, FakeExperiment, SleepRecorder

EXPERIMENT_IDS = ("e0", "e1", "e2")

#: Crash points: every site the engine writes through, at each of the
#: first few writes (nth=1 hits the very first byte of campaign state).
CRASH_POINTS = list(
    itertools.product(("journal", "checkpoint", "events"), (1, 2, 3, 4))
)


def run_campaign(run_dir, token, recovery=None):
    """One supervisor generation over the fake three-experiment campaign.

    Returns ``(report_or_None, crash_exception_or_None, experiments)``.
    """
    experiments = [FakeExperiment(eid) for eid in EXPERIMENT_IDS]
    registry = {e.experiment_id: (e, {"n": 5}) for e in experiments}
    store = CheckpointStore(run_dir)
    event_log = EventLog(store.events_path)
    journal = Journal(run_dir / JOURNAL_FILENAME, token=token)
    engine = CampaignEngine(
        registry,
        config=EngineConfig(sleep=SleepRecorder(), clock=FakeClock(), jobs=0),
        store=store,
        event_log=event_log,
        journal=journal,
        recovery=recovery,
    )
    report = crash = None
    try:
        report = engine.run()
    except Exception as exc:  # noqa: BLE001 — the injected crash
        crash = exc
    finally:
        event_log.close()
        journal.close()
    return report, crash, experiments


def reference_summary(tmp_path):
    ref_dir = tmp_path / "reference"
    report, crash, _ = run_campaign(ref_dir, token=1)
    assert crash is None and all(o.status == "ok" for o in report.outcomes)
    return CheckpointStore(ref_dir).summary_path.read_bytes()


def assert_aftermath_clean(run_dir, reference_bytes, resumed_experiments, recovery):
    # Summary equivalence with the never-crashed reference.
    assert CheckpointStore(run_dir).summary_path.read_bytes() == reference_bytes

    # Journal invariants: exactly-once per uid, one commit per experiment.
    replay = read_journal(run_dir / JOURNAL_FILENAME)
    assert not replay.corrupt
    ends = [r for r in replay.records if r["type"] == "attempt-end"]
    uids = [r["attempt_uid"] for r in ends if "attempt_uid" in r]
    assert len(uids) == len(set(uids)), f"duplicated attempt_uid in {uids}"
    committed_ends = [
        r for r in ends if r.get("status") in COMMITTED_STATUSES
    ]
    per_experiment = {}
    for record in committed_ends:
        per_experiment.setdefault(record["experiment_id"], []).append(record)
    for experiment_id, records in per_experiment.items():
        assert len(records) == 1, (
            f"{experiment_id} committed {len(records)} times"
        )

    # No double-execution: recovered-committed experiments never re-ran.
    if recovery is not None:
        for experiment in resumed_experiments:
            if experiment.experiment_id in recovery.committed:
                assert experiment.calls == [], (
                    f"{experiment.experiment_id} was committed before the "
                    "crash but executed again on resume"
                )

    # The event log kept its total order across generations.
    events = read_events(CheckpointStore(run_dir).events_path)
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(set(seqs)), "event seq not strictly increasing"
    end_uids = [
        e["attempt_uid"]
        for e in events
        if e.get("event") == "attempt-end" and "attempt_uid" in e
    ]
    assert len(end_uids) == len(set(end_uids))

    # The full artifact audit agrees.
    report = validate_run_dir(run_dir)
    assert report.ok, report.render()


@pytest.mark.parametrize("site,nth", CRASH_POINTS)
def test_resume_equivalence_after_io_crash(tmp_path, site, nth):
    reference_bytes = reference_summary(tmp_path)
    run_dir = tmp_path / "crashed"

    # Generation 1: a persistently failing disk at the seeded point.
    injector = IOFaultInjector(
        [IOFault(site, "write", "eio", nth=nth, repeat=True)]
    )
    with install(injector):
        _, crash, _ = run_campaign(run_dir, token=1)
    assert crash is not None, (
        f"{site}:write:eio:{nth} never fired — widen CRASH_POINTS"
    )

    # Generation 2: recover, fence, resume, complete.
    recovery = recover(run_dir)
    token = (recovery.last_token if recovery else 0) + 1
    report, crash, experiments = run_campaign(
        run_dir, token=token, recovery=recovery
    )
    assert crash is None
    assert sorted(o.experiment_id for o in report.outcomes) == list(
        EXPERIMENT_IDS
    )
    assert all(o.status == "ok" for o in report.outcomes)
    assert_aftermath_clean(run_dir, reference_bytes, experiments, recovery)


@pytest.mark.parametrize("nth", [1, 3, 6])
def test_resume_after_torn_journal_write(tmp_path, nth):
    """A short write tears the journal mid-record; recovery truncates
    the torn tail and the campaign still converges."""
    reference_bytes = reference_summary(tmp_path)
    run_dir = tmp_path / "torn"
    injector = IOFaultInjector(
        [IOFault("journal", "write", "short-write", nth=nth, repeat=True)]
    )
    with install(injector):
        _, crash, _ = run_campaign(run_dir, token=1)
    assert crash is not None
    assert read_journal(run_dir / JOURNAL_FILENAME).torn_tail

    recovery = recover(run_dir)
    assert recovery.torn_tail and recovery.truncated_bytes > 0
    report, crash, experiments = run_campaign(
        run_dir, token=recovery.last_token + 1, recovery=recovery
    )
    assert crash is None and all(o.status == "ok" for o in report.outcomes)
    assert_aftermath_clean(run_dir, reference_bytes, experiments, recovery)


def test_double_crash_then_resume(tmp_path):
    """Two successive crashed generations (different sites) still
    converge, with tokens strictly increasing across all three."""
    reference_bytes = reference_summary(tmp_path)
    run_dir = tmp_path / "double"

    for generation, (site, nth) in enumerate(
        [("checkpoint", 2), ("journal", 4)], start=1
    ):
        recovery = recover(run_dir)
        token = (recovery.last_token if recovery else 0) + 1
        injector = IOFaultInjector(
            [IOFault(site, "write", "eio", nth=nth, repeat=True)]
        )
        with install(injector):
            _, crash, _ = run_campaign(run_dir, token=token, recovery=recovery)
        assert crash is not None, f"generation {generation} did not crash"

    recovery = recover(run_dir)
    report, crash, experiments = run_campaign(
        run_dir, token=recovery.last_token + 1, recovery=recovery
    )
    assert crash is None and all(o.status == "ok" for o in report.outcomes)
    tokens = [r["token"] for r in read_journal(run_dir / JOURNAL_FILENAME).records]
    assert tokens == sorted(tokens)
    assert_aftermath_clean(run_dir, reference_bytes, experiments, recovery)


def test_transient_enospc_is_absorbed_without_crash(tmp_path):
    """A one-shot disk-full at any checkpoint write is retried away:
    no crash, no restart, audit-clean directory."""
    reference_bytes = reference_summary(tmp_path)
    run_dir = tmp_path / "hiccup"
    injector = IOFaultInjector(
        [IOFault("checkpoint", "write", "enospc", nth=1)]
    )
    with install(injector):
        report, crash, experiments = run_campaign(run_dir, token=1)
    assert crash is None
    assert all(o.status == "ok" for o in report.outcomes)
    assert_aftermath_clean(run_dir, reference_bytes, experiments, None)
