"""Tests for the write-ahead journal: framing, torn-tail discipline,
and crash recovery classification."""

from __future__ import annotations

import json

import pytest

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import ExperimentOutcome
from repro.runtime.errors import JournalCorruptError
from repro.runtime.events import EventLog
from repro.runtime.journal import (
    JOURNAL_FILENAME,
    JOURNAL_MAGIC,
    Journal,
    attempt_uid,
    frame_record,
    read_journal,
    recover,
    truncate_torn_tail,
)

from tests.runtime.conftest import make_result


def committed_outcome(experiment_id: str) -> ExperimentOutcome:
    return ExperimentOutcome(
        experiment_id=experiment_id,
        status="ok",
        result=make_result(experiment_id),
        attempts=1,
    )


class TestFraming:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with Journal(path, token=3) as journal:
            record = journal.append("campaign-start", experiments=["a"])
        replay = read_journal(path)
        assert replay.records == [record]
        assert record["seq"] == 1 and record["token"] == 3
        assert not replay.torn_tail and not replay.corrupt

    def test_lines_carry_magic_and_crc(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with Journal(path) as journal:
            journal.append("campaign-start")
        line = path.read_bytes()
        assert line.startswith(JOURNAL_MAGIC.encode() + b" ")
        # Reframing the decoded payload reproduces the exact bytes.
        record = json.loads(line.split(b" ", 2)[2])
        assert frame_record(record) == line

    def test_unknown_record_type_rejected(self, tmp_path):
        with Journal(tmp_path / JOURNAL_FILENAME) as journal:
            with pytest.raises(ValueError, match="unknown journal record"):
                journal.append("made-up-type")

    def test_none_fields_are_dropped(self, tmp_path):
        with Journal(tmp_path / JOURNAL_FILENAME) as journal:
            record = journal.append("attempt-start", status=None, attempt=2)
        assert "status" not in record and record["attempt"] == 2

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with Journal(path, token=1) as journal:
            journal.append("campaign-start")
            journal.append("summary-flushed", status="complete")
        with Journal(path, token=2) as journal:
            record = journal.append("recovered")
        assert record["seq"] == 3
        seqs = [r["seq"] for r in read_journal(path).records]
        assert seqs == [1, 2, 3]

    def test_attempt_uid_format(self):
        assert attempt_uid("fig2", 4, 2) == "fig2@4.2"


class TestReplayDamage:
    def make_journal(self, path, n=3):
        with Journal(path) as journal:
            for i in range(n):
                journal.append("attempt-start", experiment_id=f"e{i}", attempt=1)

    def test_unterminated_tail_is_torn_not_corrupt(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        self.make_journal(path)
        with open(path, "ab") as handle:
            handle.write(b"WAL1 0000")  # crash mid-append
        replay = read_journal(path)
        assert replay.torn_tail and not replay.corrupt
        assert len(replay.records) == 3

    def test_terminated_garbage_tail_is_still_torn(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        self.make_journal(path)
        with open(path, "ab") as handle:
            handle.write(b"WAL1 deadbeef {oops}\n")
        replay = read_journal(path)
        assert replay.torn_tail and not replay.corrupt

    def test_mid_file_damage_is_corruption(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        self.make_journal(path)
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF  # bit-flip inside the first record
        path.write_bytes(bytes(data))
        replay = read_journal(path)
        assert replay.corrupt and not replay.torn_tail
        assert len(replay.records) == 2  # the two undamaged records

    def test_truncate_drops_exactly_the_tail(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        self.make_journal(path)
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"WAL1 12")
        assert truncate_torn_tail(path) == 7
        assert path.stat().st_size == good
        assert truncate_torn_tail(path) == 0  # idempotent

    def test_truncate_refuses_mid_file_corruption(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        self.make_journal(path)
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError, match="refusing to truncate"):
            truncate_torn_tail(path)

    def test_missing_file_replays_empty(self, tmp_path):
        replay = read_journal(tmp_path / "absent.wal")
        assert not replay.records and not replay.torn_tail
        assert truncate_torn_tail(tmp_path / "absent.wal") == 0

    def test_last_token_is_the_maximum(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with Journal(path, token=1) as journal:
            journal.append("campaign-start")
            journal.token = 5
            journal.append("recovered")
        assert read_journal(path).last_token == 5


class TestRecover:
    def test_no_journal_means_no_report(self, tmp_path):
        assert recover(tmp_path) is None

    def test_committed_attempt_is_committed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_outcome(committed_outcome("figA"))
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append(
                "attempt-start", experiment_id="figA", attempt=1,
                attempt_uid=attempt_uid("figA", 1, 1),
            )
            journal.append(
                "attempt-end", experiment_id="figA", status="ok",
                attempt_uid=attempt_uid("figA", 1, 1),
            )
        report = recover(tmp_path)
        assert report.committed == ["figA"]
        assert report.clean and report.last_token == 1

    def test_committed_without_checkpoint_is_lost(self, tmp_path):
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-end", experiment_id="figA", status="ok")
        report = recover(tmp_path)
        assert report.lost == ["figA"] and not report.committed
        assert any("missing or corrupt" in note for note in report.notes)

    def test_failed_attempt_end_never_commits(self, tmp_path):
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-end", experiment_id="figA", status="failed")
        report = recover(tmp_path)
        assert not report.committed and not report.lost and not report.in_doubt

    def test_open_attempt_is_in_doubt(self, tmp_path):
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
        report = recover(tmp_path)
        assert report.in_doubt == ["figA"] and not report.clean

    def test_in_doubt_promoted_by_flush_record(self, tmp_path):
        # Crash window: checkpoint renamed and flush journaled, but the
        # attempt-end append never happened.
        store = CheckpointStore(tmp_path)
        store.save_outcome(committed_outcome("figA"))
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
            journal.append(
                "checkpoint-flushed", experiment_id="figA", status="ok"
            )
        report = recover(tmp_path)
        assert report.committed == ["figA"] and not report.in_doubt
        assert any("promoted" in note for note in report.notes)

    def test_in_doubt_promoted_by_checkpointed_event(self, tmp_path):
        # Narrower window: crash between the rename and the
        # checkpoint-flushed append; the event log corroborates.
        store = CheckpointStore(tmp_path)
        store.save_outcome(committed_outcome("figA"))
        with EventLog(store.events_path) as log:
            log.emit("checkpointed", experiment_id="figA", status="ok")
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
        report = recover(tmp_path)
        assert report.committed == ["figA"] and not report.in_doubt

    def test_in_doubt_without_checkpoint_stays_in_doubt(self, tmp_path):
        # A corroborating event alone must not commit: the checkpoint
        # itself has to verify.
        store = CheckpointStore(tmp_path)
        with EventLog(store.events_path) as log:
            log.emit("checkpointed", experiment_id="figA", status="ok")
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
        report = recover(tmp_path)
        assert report.in_doubt == ["figA"]

    def test_restart_supersedes_earlier_attempt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_outcome(committed_outcome("figA"))
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
            journal.append("attempt-end", experiment_id="figA", status="failed")
            journal.append("attempt-start", experiment_id="figA", attempt=2)
            journal.append("checkpoint-flushed", experiment_id="figA", status="ok")
            journal.append("attempt-end", experiment_id="figA", status="ok")
        report = recover(tmp_path)
        assert report.committed == ["figA"]

    def test_torn_tail_is_truncated_and_reported(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with Journal(path, token=1) as journal:
            journal.append("campaign-start")
        with open(path, "ab") as handle:
            handle.write(b"WAL1 77")
        report = recover(tmp_path)
        assert report.torn_tail and report.truncated_bytes == 7
        assert not read_journal(path).torn_tail  # actually truncated

    def test_corrupt_journal_raises(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with Journal(path, token=1) as journal:
            journal.append("campaign-start")
            journal.append("summary-flushed", status="complete")
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            recover(tmp_path)

    def test_unjournaled_checkpoint_trusted_with_note(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_outcome(committed_outcome("figB"))
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("campaign-start")
        report = recover(tmp_path)
        assert report.committed == ["figB"]
        assert any("no journal record" in note for note in report.notes)

    def test_recover_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_outcome(committed_outcome("figA"))
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
            journal.append("attempt-end", experiment_id="figA", status="ok")
            journal.append("attempt-start", experiment_id="figB", attempt=1)
        first = recover(tmp_path)
        second = recover(tmp_path)
        assert first.to_dict() == second.to_dict()
        assert second.committed == ["figA"] and second.in_doubt == ["figB"]

    def test_render_mentions_counts(self, tmp_path):
        with Journal(tmp_path / JOURNAL_FILENAME, token=1) as journal:
            journal.append("attempt-start", experiment_id="figA", attempt=1)
        text = recover(tmp_path).render()
        assert "in-doubt: 1" in text
