"""Tests for the fault-tolerant campaign engine: isolation, retry with
degradation, budgets, checkpoints, and resume."""

import pytest

from repro.runtime.budget import Budget
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import (
    CampaignEngine,
    CampaignReport,
    EngineConfig,
    ExperimentOutcome,
)
from repro.runtime.errors import (
    AnalysisError,
    SimulationError,
    TraceGenerationError,
    classify_exception,
)
from repro.runtime.faults import FaultInjector, FaultSpec

from tests.runtime.conftest import FakeClock, FakeExperiment, SleepRecorder


def make_engine(experiments, fake_clock, sleep_recorder, **config_kwargs):
    registry = {exp.experiment_id: (exp, {"n": 1000}) for exp in experiments}
    overrides = {exp.experiment_id: {"n": 10} for exp in experiments}
    # FakeExperiment instances are not importable by reference, so these
    # tests exercise the in-process backend (jobs=0); the subprocess
    # backend is covered by tests/runtime/test_workers.py.
    config_kwargs.setdefault("jobs", 0)
    config = EngineConfig(
        sleep=sleep_recorder,
        clock=fake_clock,
        backoff_base_seconds=0.5,
        backoff_factor=2.0,
        **config_kwargs,
    )
    return CampaignEngine(registry, quick_overrides=overrides, config=config)


class TestClassification:
    def test_taxonomy_members_classify_as_themselves(self):
        assert classify_exception(SimulationError("x")) is SimulationError

    def test_traceback_attribution(self):
        from repro.mem.cache import FullyAssociativeCache

        try:
            FullyAssociativeCache(-1)
        except ValueError as exc:
            assert classify_exception(exc) is SimulationError

    def test_apps_layer_attribution(self):
        from repro.apps.lu.trace import LUTraceGenerator

        try:
            LUTraceGenerator(n=-5, block_size=8, num_processors=4)
        except Exception as exc:
            assert classify_exception(exc) in (
                TraceGenerationError,
                AnalysisError,
            )

    def test_plain_exception_defaults_to_analysis(self):
        try:
            raise KeyError("no frames in repro layers")
        except KeyError as exc:
            assert classify_exception(exc) is AnalysisError


class TestIsolationAndRetry:
    def test_healthy_campaign_all_ok(self, fake_clock, sleep_recorder):
        exps = [FakeExperiment("a"), FakeExperiment("b")]
        report = make_engine(exps, fake_clock, sleep_recorder).run()
        assert report.ok_ids == ["a", "b"]
        assert report.succeeded
        assert report.outcome("a").result.experiment_id == "a"

    def test_one_crash_does_not_abort_campaign(self, fake_clock, sleep_recorder):
        exps = [
            FakeExperiment("a", fail_times=99, error=SimulationError("dead")),
            FakeExperiment("b"),
        ]
        report = make_engine(exps, fake_clock, sleep_recorder).run()
        assert report.failed_ids == ["a"]
        assert report.ok_ids == ["b"]
        assert not report.succeeded

    def test_retry_degrades_to_quick_parameters(self, fake_clock, sleep_recorder):
        exp = FakeExperiment("a", fail_times=1)
        report = make_engine([exp], fake_clock, sleep_recorder).run()
        outcome = report.outcome("a")
        assert outcome.status == "degraded"
        assert exp.calls == [{"n": 1000}, {"n": 10}]
        assert any("DEGRADED" in note for note in outcome.result.notes)
        assert outcome.failures[0].attempt == 1
        assert not outcome.failures[0].degraded

    def test_exponential_backoff_between_attempts(self, fake_clock, sleep_recorder):
        exp = FakeExperiment("a", fail_times=2)
        make_engine([exp], fake_clock, sleep_recorder, max_attempts=3).run()
        assert sleep_recorder.calls == [0.5, 1.0]

    def test_no_sleep_after_final_attempt(self, fake_clock, sleep_recorder):
        exp = FakeExperiment("a", fail_times=99)
        make_engine([exp], fake_clock, sleep_recorder, max_attempts=2).run()
        assert sleep_recorder.calls == [0.5]

    def test_failure_records_capture_taxonomy(self, fake_clock, sleep_recorder):
        exp = FakeExperiment("a", fail_times=99, error=SimulationError("boom"))
        report = make_engine([exp], fake_clock, sleep_recorder, max_attempts=2).run()
        failures = report.outcome("a").failures
        assert [f.category for f in failures] == ["simulation", "simulation"]
        assert failures[1].degraded  # retry ran with quick params
        assert "boom" in failures[0].message
        assert "SimulationError" in failures[0].traceback_text

    def test_quick_campaign_not_marked_degraded(self, fake_clock, sleep_recorder):
        exp = FakeExperiment("a")
        report = make_engine([exp], fake_clock, sleep_recorder, quick=True).run()
        assert report.outcome("a").status == "ok"
        assert exp.calls == [{"n": 10}]

    def test_unknown_id_raises_before_running(self, fake_clock, sleep_recorder):
        engine = make_engine([FakeExperiment("a")], fake_clock, sleep_recorder)
        with pytest.raises(KeyError, match="unknown experiments"):
            engine.run(["nope"])

    def test_non_result_return_is_captured(self, fake_clock, sleep_recorder):
        class Liar:
            experiment_id = "liar"

            def run(self, **kwargs):
                return 42

        registry = {"liar": (Liar(), {})}
        engine = CampaignEngine(
            registry,
            config=EngineConfig(sleep=sleep_recorder, clock=fake_clock, jobs=0),
        )
        report = engine.run()
        assert report.failed_ids == ["liar"]


class TestBudgetIntegration:
    def test_hang_is_converted_to_degraded_retry(self, fake_clock, sleep_recorder):
        exp = FakeExperiment("fig6")
        engine = make_engine(
            [exp], fake_clock, sleep_recorder, budget_seconds=0.5
        )
        engine.faults = FaultInjector(
            plan={"fig6": FaultSpec(kind="hang", fail_attempts=1)}
        )
        report = engine.run()
        outcome = report.outcome("fig6")
        assert outcome.status == "degraded"
        assert outcome.failures[0].category == "budget"
        assert exp.calls == [{"n": 10}]  # only the degraded attempt ran

    def test_budget_object_installed_per_attempt(self, sleep_recorder):
        seen = []

        class Peeker:
            def run(self, **kwargs):
                from repro.runtime.budget import active_budget

                seen.append(active_budget())
                from tests.runtime.conftest import make_result

                return make_result("peek", **kwargs)

        engine = CampaignEngine(
            {"peek": (Peeker(), {})},
            config=EngineConfig(
                budget_seconds=60.0,
                sleep=sleep_recorder,
                clock=FakeClock(),
                jobs=0,
            ),
        )
        engine.run()
        assert len(seen) == 1
        assert isinstance(seen[0], Budget)
        assert seen[0].seconds == 60.0


class TestCheckpointResume:
    def test_completed_results_checkpointed(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        exps = [FakeExperiment("a"), FakeExperiment("b", fail_times=99)]
        engine = make_engine(exps, fake_clock, sleep_recorder, max_attempts=2)
        engine.store = CheckpointStore(tmp_path / "run")
        report = engine.run()
        assert engine.store.completed_ids() == ["a"]
        assert engine.store.failure_path("b").is_file()
        manifest = engine.store.read_manifest()
        assert manifest["experiments"] == ["a", "b"]

    def test_resume_skips_finished_and_reruns_unfinished(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        store = CheckpointStore(tmp_path / "run")
        first_a = FakeExperiment("a")
        first_b = FakeExperiment("b", fail_times=99)
        engine = make_engine(
            [first_a, first_b], fake_clock, sleep_recorder, max_attempts=2
        )
        engine.store = store
        engine.run()
        assert len(first_a.calls) == 1

        # Fresh invocation over the same run dir: b healed, a untouched.
        second_a = FakeExperiment("a")
        second_b = FakeExperiment("b")
        engine2 = make_engine(
            [second_a, second_b], fake_clock, sleep_recorder, max_attempts=2
        )
        engine2.store = store
        report = engine2.run()
        assert second_a.calls == []  # resumed from checkpoint
        assert len(second_b.calls) == 1  # re-run
        resumed = report.outcome("a")
        assert resumed.resumed and resumed.status == "ok"
        assert report.succeeded
        assert sorted(store.completed_ids()) == ["a", "b"]


class TestAcceptanceScenario:
    """ISSUE acceptance: a campaign with an injected crash in one
    experiment and a hang in another completes the rest, retries the
    failures with degraded parameters, and --resume re-runs only the
    unfinished ids."""

    def test_crash_hang_degrade_resume(self, tmp_path, fake_clock, sleep_recorder):
        crasher = FakeExperiment("crash-exp", fail_times=0)
        hanger = FakeExperiment("hang-exp")
        healthy = FakeExperiment("healthy-exp")
        doomed = FakeExperiment(
            "doomed-exp", fail_times=99, error=SimulationError("always dies")
        )
        engine = make_engine(
            [crasher, hanger, healthy, doomed],
            fake_clock,
            sleep_recorder,
            budget_seconds=0.5,
            max_attempts=2,
        )
        engine.faults = FaultInjector(
            plan={
                "crash-exp": FaultSpec(
                    kind="crash", exception=TraceGenerationError, fail_attempts=1
                ),
                "hang-exp": FaultSpec(kind="hang", fail_attempts=1),
            }
        )
        store = CheckpointStore(tmp_path / "run")
        engine.store = store
        report = engine.run()

        # The healthy experiment completed despite its neighbours.
        assert report.outcome("healthy-exp").status == "ok"
        # Crash and hang were retried with degraded parameters.
        for exp_id, failed_category in [
            ("crash-exp", "trace-generation"),
            ("hang-exp", "budget"),
        ]:
            outcome = report.outcome(exp_id)
            assert outcome.status == "degraded"
            assert outcome.failures[0].category == failed_category
        assert crasher.calls == [{"n": 10}]
        # The unrecoverable experiment failed without sinking the run.
        assert report.failed_ids == ["doomed-exp"]

        # Fresh invocation with --resume semantics: only the unfinished
        # id is re-run.
        rerun = {
            "crash-exp": FakeExperiment("crash-exp"),
            "hang-exp": FakeExperiment("hang-exp"),
            "healthy-exp": FakeExperiment("healthy-exp"),
            "doomed-exp": FakeExperiment("doomed-exp"),  # healed now
        }
        engine2 = make_engine(
            list(rerun.values()), fake_clock, sleep_recorder, max_attempts=2
        )
        engine2.store = store
        report2 = engine2.run()
        assert {
            exp_id: len(exp.calls) for exp_id, exp in rerun.items()
        } == {"crash-exp": 0, "hang-exp": 0, "healthy-exp": 0, "doomed-exp": 1}
        assert report2.succeeded
        assert all(
            report2.outcome(i).resumed
            for i in ("crash-exp", "hang-exp", "healthy-exp")
        )


class TestInterruption:
    """Regression: a KeyboardInterrupt mid-attempt used to unwind the
    engine without flushing the partial summary or emitting a final
    event — completed work was invisible to --resume tooling."""

    def test_interrupt_flushes_partial_state_and_reraises(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        from repro.runtime.events import EventLog, read_events

        finished = FakeExperiment("a")
        interrupter = FakeExperiment(
            "b", fail_times=99, error=KeyboardInterrupt()
        )
        engine = make_engine([finished, interrupter], fake_clock, sleep_recorder)
        store = CheckpointStore(tmp_path / "run")
        engine.store = store
        engine.event_log = EventLog(store.events_path)
        seen = []
        engine.on_event = lambda event, payload: seen.append((event, payload))

        with pytest.raises(KeyboardInterrupt):
            engine.run()
        engine.event_log.close()

        # The completed outcome was checkpointed and the summary marks
        # the run interrupted — --resume has a valid store.
        assert store.completed_ids() == ["a"]
        assert store.verify_all() == {}
        summary = store.read_summary()
        assert summary["status"] == "interrupted"
        assert summary["completed"] == ["a"]
        assert summary["requested"] == ["a", "b"]

        # A final event went out, both to the callback and the log.
        assert seen[-1][0] == "interrupted"
        partial = seen[-1][1]
        assert [o.experiment_id for o in partial.outcomes] == ["a"]
        names = [e["event"] for e in read_events(store.events_path)]
        assert names[-1] == "interrupted"

    def test_interrupt_without_store_still_reraises(
        self, fake_clock, sleep_recorder
    ):
        interrupter = FakeExperiment(
            "a", fail_times=99, error=KeyboardInterrupt()
        )
        engine = make_engine([interrupter], fake_clock, sleep_recorder)
        with pytest.raises(KeyboardInterrupt):
            engine.run()


class TestReportRendering:
    def test_render_mentions_statuses(self, fake_clock, sleep_recorder):
        exps = [FakeExperiment("a"), FakeExperiment("b", fail_times=99)]
        report = make_engine(exps, fake_clock, sleep_recorder, max_attempts=2).run()
        text = report.render()
        assert "campaign summary" in text
        assert "a: ok" in text
        assert "b: failed" in text
        assert "1 ok, 0 degraded, 1 failed" in text

    def test_outcome_lookup_raises_for_unknown(self):
        with pytest.raises(KeyError):
            CampaignReport().outcome("missing")


class TestResultValidation:
    """EngineConfig(validate=True): the oracle gate on successful attempts."""

    @staticmethod
    def _bad_then_good(experiment_id="gated"):
        import numpy as np

        from repro.core.curves import MissRateCurve
        from tests.runtime.conftest import make_result

        class BadThenGood:
            def __init__(self):
                self.experiment_id = experiment_id
                self.calls = []

            def run(self, **kwargs):
                self.calls.append(dict(kwargs))
                result = make_result(experiment_id, **kwargs)
                rates = (
                    np.array([0.5, np.nan])
                    if len(self.calls) == 1
                    else np.array([0.5, 0.25])
                )
                result.curves = [
                    MissRateCurve(
                        capacities=np.array([64, 128]), miss_rates=rates
                    )
                ]
                return result

        return BadThenGood()

    def test_bad_result_rejected_then_retried_degraded(
        self, fake_clock, sleep_recorder
    ):
        exp = self._bad_then_good()
        engine = make_engine(
            [exp], fake_clock, sleep_recorder, validate=True, max_attempts=3
        )
        report = engine.run()
        outcome = report.outcome("gated")
        assert outcome.status == "degraded"
        assert outcome.attempts == 2
        assert outcome.failures[0].category == "result-rejected"
        assert "curve-not-finite" in outcome.failures[0].message
        # The retry degraded to quick parameters, as for any failure.
        assert exp.calls[1]["n"] == 10

    def test_validation_off_by_default_accepts_bad_result(
        self, fake_clock, sleep_recorder
    ):
        exp = self._bad_then_good()
        engine = make_engine([exp], fake_clock, sleep_recorder)
        report = engine.run()
        outcome = report.outcome("gated")
        assert outcome.status == "ok"
        assert outcome.attempts == 1

    def test_persistent_bad_result_fails_the_experiment(
        self, fake_clock, sleep_recorder
    ):
        import numpy as np

        from repro.core.curves import MissRateCurve
        from tests.runtime.conftest import make_result

        class AlwaysBad:
            experiment_id = "hopeless"

            def run(self, **kwargs):
                result = make_result("hopeless", **kwargs)
                result.curves = [
                    MissRateCurve(
                        capacities=np.array([64, 128]),
                        miss_rates=np.array([np.inf, 0.25]),
                    )
                ]
                return result

        engine = make_engine(
            [AlwaysBad()], fake_clock, sleep_recorder, validate=True, max_attempts=2
        )
        report = engine.run()
        outcome = report.outcome("hopeless")
        assert outcome.status == "failed"
        assert all(f.category == "result-rejected" for f in outcome.failures)
