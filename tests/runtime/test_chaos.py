"""Tests for the chaos harness: the audit logic unit-level, and one
small real SIGKILL/resume campaign end-to-end."""

from __future__ import annotations

from repro.runtime.chaos import (
    ChaosReport,
    CycleResult,
    audit_run_dir,
    run_chaos,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import ExperimentOutcome
from repro.runtime.events import EventLog
from repro.runtime.journal import JOURNAL_FILENAME, Journal

from tests.runtime.conftest import make_result


def build_run_dir(tmp_path, name="run"):
    """A handmade audit-clean single-experiment run directory."""
    run_dir = tmp_path / name
    store = CheckpointStore(run_dir)
    store.write_manifest({"experiments": ["figA"], "quick": True})
    store.save_outcome(
        ExperimentOutcome(
            experiment_id="figA",
            status="ok",
            result=make_result("figA"),
            attempts=1,
        )
    )
    store.write_summary(
        {
            "status": "complete",
            "requested": ["figA"],
            "completed": ["figA"],
            "statuses": {"figA": "ok"},
        }
    )
    with EventLog(store.events_path) as log:
        log.emit("campaign-start")
        log.emit("checkpointed", experiment_id="figA", status="ok")
        log.emit("attempt-end", experiment_id="figA", attempt_uid="figA@1.1")
    with Journal(run_dir / JOURNAL_FILENAME, token=1) as journal:
        journal.append("campaign-start", experiments=["figA"])
        journal.append(
            "attempt-start", experiment_id="figA", attempt=1,
            attempt_uid="figA@1.1",
        )
        journal.append("checkpoint-flushed", experiment_id="figA", status="ok")
        journal.append(
            "attempt-end", experiment_id="figA", status="ok",
            attempt_uid="figA@1.1",
        )
        journal.append("summary-flushed", status="complete")
    return run_dir, store.summary_path.read_bytes()


class TestAudit:
    def test_clean_dir_has_no_problems(self, tmp_path):
        run_dir, summary = build_run_dir(tmp_path)
        assert audit_run_dir(run_dir, summary, ["figA"]) == []

    def test_duplicate_attempt_end_is_flagged(self, tmp_path):
        run_dir, summary = build_run_dir(tmp_path)
        with Journal(run_dir / JOURNAL_FILENAME, token=1) as journal:
            journal.append(
                "attempt-end", experiment_id="figA", status="failed",
                attempt_uid="figA@1.1",
            )
        problems = audit_run_dir(run_dir, summary, ["figA"])
        assert any("exactly-once violated" in p for p in problems)

    def test_double_commit_is_flagged(self, tmp_path):
        run_dir, summary = build_run_dir(tmp_path)
        with Journal(run_dir / JOURNAL_FILENAME, token=2) as journal:
            journal.append(
                "attempt-end", experiment_id="figA", status="ok",
                attempt_uid="figA@2.1",
            )
        problems = audit_run_dir(run_dir, summary, ["figA"])
        assert any("double-execution" in p for p in problems)

    def test_missing_checkpoint_is_a_lost_attempt(self, tmp_path):
        run_dir, summary = build_run_dir(tmp_path)
        problems = audit_run_dir(run_dir, summary, ["figA", "figB"])
        assert any("lost committed attempt" in p and "figB" in p for p in problems)

    def test_summary_divergence_is_flagged(self, tmp_path):
        run_dir, summary = build_run_dir(tmp_path)
        problems = audit_run_dir(run_dir, summary + b" ", ["figA"])
        assert any("differs from the uninterrupted reference" in p for p in problems)

    def test_backwards_token_is_flagged(self, tmp_path):
        run_dir, summary = build_run_dir(tmp_path)
        with Journal(run_dir / JOURNAL_FILENAME, token=0) as journal:
            journal.append("recovered")
        problems = audit_run_dir(run_dir, summary, ["figA"])
        assert any("token went backwards" in p for p in problems)


class TestReportRendering:
    def test_cycle_summary_lines(self):
        ok = CycleResult(cycle=1, kind="time-kill", kills=2, launches=3)
        bad = CycleResult(
            cycle=2, kind="io-kill", launches=1,
            problems=["boom"], detail="journal:write:kill:3",
        )
        assert ok.passed and "ok" in ok.summary()
        assert not bad.passed and "FAIL" in bad.summary()
        assert "journal:write:kill:3" in bad.summary()

    def test_report_aggregates(self):
        report = ChaosReport(
            cycles=[
                CycleResult(cycle=0, kind="time-kill", kills=2, launches=3),
                CycleResult(cycle=1, kind="io-kill", problems=["x"]),
            ]
        )
        assert not report.passed and report.total_kills == 2
        rendered = report.render()
        assert "problem: x" in rendered and "1 failure(s)" in rendered

    def test_empty_report_never_passes(self):
        assert not ChaosReport().passed


def test_small_real_chaos_campaign(tmp_path):
    """Two real SIGKILL/resume cycles plus one ENOSPC cycle against a
    one-experiment quick campaign — the harness end-to-end."""
    report = run_chaos(
        cycles=2,
        seed=11,
        experiments=("table1",),
        jobs=0,
        enospc_cycles=1,
        work_dir=tmp_path / "chaos",
        timeout=120.0,
    )
    assert len(report.cycles) == 3
    assert report.passed, report.render()


def test_small_real_streamed_chaos_campaign(tmp_path):
    """Streamed chaos: the io-kill cycle plants its SIGKILL inside the
    shard / simulator-checkpoint writes, so the campaign dies
    mid-generation or mid-simulation and must resume from the last
    sealed shard boundary to a byte-identical summary."""
    report = run_chaos(
        cycles=2,
        seed=5,
        experiments=("fig2",),
        jobs=0,
        enospc_cycles=0,
        work_dir=tmp_path / "chaos",
        timeout=120.0,
        stream=True,
        shard_refs=8192,
    )
    assert len(report.cycles) == 2
    assert report.passed, report.render()
    io_kill = [c for c in report.cycles if c.kind == "io-kill"]
    assert io_kill and io_kill[0].detail, "no streamed fault was planted"
    site = io_kill[0].detail.split(":")[0]
    assert site in ("shard", "simckpt")


class TestNodeFaultDirectives:
    def test_seeded_and_incarnation_qualified(self):
        import random

        from repro.runtime.chaos import _node_fault_directives

        a, _ = _node_fault_directives(random.Random(1), 3, "node-kill", 2.0)
        b, _ = _node_fault_directives(random.Random(1), 3, "node-kill", 2.0)
        assert a == b  # pure function of the seed
        for part in a.split(","):
            target, fault = part.split(":", 1)
            assert target.endswith("#1")  # only incarnation 1 is targeted
            assert fault.startswith("kill@")

    def test_partition_directive_outlasts_heartbeat_ttl(self):
        import random

        from repro.runtime.chaos import _node_fault_directives

        directive, kills = _node_fault_directives(
            random.Random(5), 3, "node-partition", 2.0
        )
        assert kills == 0
        assert ":partition@" in directive
        duration = float(directive.rsplit("+", 1)[1])
        assert duration > 3.0  # must exceed the default TTL to matter

    def test_kill_count_leaves_a_survivor(self):
        import random

        from repro.runtime.chaos import _node_fault_directives

        for seed in range(20):
            directive, kills = _node_fault_directives(
                random.Random(seed), 3, "node-kill", 2.0
            )
            assert 1 <= kills <= 2  # never all three nodes
            assert kills == len(directive.split(","))

    def test_node_chaos_requires_subprocess_jobs(self):
        import pytest

        from repro.runtime.chaos import run_chaos

        with pytest.raises(ValueError, match="jobs"):
            run_chaos(cycles=1, nodes=2, jobs=0)
