"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.mem.tracefile import TraceFileCorruptError
from repro.runtime.budget import Budget
from repro.runtime.errors import (
    BudgetExceeded,
    ExperimentError,
    TraceGenerationError,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultSpec,
    corrupt_file,
    fire_fault,
)

from tests.runtime.conftest import FakeClock


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meltdown")

    def test_fail_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", fail_attempts=0)


class TestFaultShipping:
    """FaultSpec must round-trip through JSON to reach a worker."""

    def test_dict_round_trip(self):
        spec = FaultSpec(
            kind="crash",
            fail_attempts=2,
            exception=TraceGenerationError,
            message="ship me",
            cooperative=False,
            exit_code=7,
        )
        restored = FaultSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_builtin_exception_resolves(self):
        spec = FaultSpec(kind="crash", exception=ValueError)
        assert FaultSpec.from_dict(spec.to_dict()).exception is ValueError

    def test_unknown_exception_falls_back(self):
        from repro.runtime.errors import SimulationError

        payload = FaultSpec(kind="crash").to_dict()
        payload["exception"] = "NoSuchExceptionAnywhere"
        assert FaultSpec.from_dict(payload).exception is SimulationError


class TestUncontainableKinds:
    """The kinds only a process kill can stop are refused in-process."""

    @pytest.mark.parametrize("kind", ["memhog", "die"])
    def test_worker_only_kinds_refused_in_process(self, kind):
        with pytest.raises(ExperimentError, match="worker"):
            fire_fault(FaultSpec(kind=kind), "fig6", 1)

    def test_non_cooperative_hang_refused_in_process(self):
        spec = FaultSpec(kind="hang", cooperative=False)
        with pytest.raises(ExperimentError, match="non-cooperative"):
            fire_fault(spec, "fig6", 1, budget=Budget.unlimited())

    def test_injector_refuses_them_too(self):
        injector = FaultInjector(plan={"fig6": FaultSpec(kind="die")})
        with pytest.raises(ExperimentError, match="worker"):
            injector.before_attempt("fig6", 1, Budget.unlimited())


class TestCorruptFile:
    def test_flips_one_byte(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"abcdef")
        corrupt_file(path, offset=2)
        data = path.read_bytes()
        assert data != b"abcdef"
        assert data[0:2] == b"ab" and data[3:] == b"def"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(path)


class TestFaultInjector:
    def test_crash_raises_configured_exception(self):
        injector = FaultInjector(
            plan={"fig2": FaultSpec(kind="crash", exception=TraceGenerationError)}
        )
        with pytest.raises(TraceGenerationError, match="fig2"):
            injector.before_attempt("fig2", 1, Budget.unlimited())
        assert injector.triggered == [("fig2", 1, "crash")]

    def test_fault_stands_down_after_fail_attempts(self):
        injector = FaultInjector(plan={"fig2": FaultSpec(kind="crash")})
        with pytest.raises(ExperimentError):
            injector.before_attempt("fig2", 1, Budget.unlimited())
        injector.before_attempt("fig2", 2, Budget.unlimited())  # clean
        assert len(injector.triggered) == 1

    def test_unplanned_experiment_untouched(self):
        injector = FaultInjector(plan={"fig2": FaultSpec(kind="crash")})
        injector.before_attempt("fig4", 1, Budget.unlimited())
        assert injector.triggered == []

    def test_hang_spins_until_budget_exceeded(self):
        injector = FaultInjector(plan={"fig6": FaultSpec(kind="hang")})
        budget = Budget(0.5, clock=FakeClock(step=0.05))
        with pytest.raises(BudgetExceeded, match="injected hang"):
            injector.before_attempt("fig6", 1, budget)

    def test_hang_refuses_unlimited_budget(self):
        injector = FaultInjector(plan={"fig6": FaultSpec(kind="hang")})
        with pytest.raises(ExperimentError, match="finite budget"):
            injector.before_attempt("fig6", 1, Budget.unlimited())

    def test_corrupt_trace_travels_real_path(self, tmp_path):
        injector = FaultInjector(
            plan={"fig5": FaultSpec(kind="corrupt-trace")}, workspace=tmp_path
        )
        with pytest.raises(TraceFileCorruptError):
            injector.before_attempt("fig5", 1, Budget.unlimited())
        assert (tmp_path / "fig5-injected.npz").is_file()

    def test_corrupt_trace_requires_workspace(self):
        injector = FaultInjector(plan={"fig5": FaultSpec(kind="corrupt-trace")})
        with pytest.raises(ExperimentError, match="workspace"):
            injector.before_attempt("fig5", 1, Budget.unlimited())
