"""The paper's abstract, as executable assertions.

Each test corresponds to a sentence of the abstract/conclusions and
checks it against the analytical models at prototypical scale (the
trace-level evidence lives in tests/apps and tests/experiments).
"""

import pytest

from repro.core.analysis import characterize
from repro.core.grain import GrainVerdict, prototypical_configs
from repro.experiments.table2 import prototypical_models
from repro.units import GB, KB, MB


@pytest.fixture(scope="module")
def characterizations():
    configs = prototypical_configs(GB)
    return {
        model.name: characterize(model, configs)
        for model in prototypical_models()
    }


class TestAbstract:
    def test_all_applications_have_working_set_hierarchies(
        self, characterizations
    ):
        """'all the applications have a hierarchy of well-defined
        per-processor working sets'"""
        for name, char in characterizations.items():
            assert len(char.working_sets.levels) >= 2, name

    def test_working_sets_bimodal(self, characterizations):
        """'the working sets of all the applications are bimodally
        distributed ... a few small working sets and one large one'"""
        for name, char in characterizations.items():
            assert char.working_sets.is_bimodal(gap_factor=4.0), name

    def test_important_working_sets_small(self, characterizations):
        """'very small caches ... are adequate for all but two of the
        application classes' — and even those two stay under ~100 KB at
        prototypical scale."""
        for name, char in characterizations.items():
            important = char.working_sets.important_working_set
            assert important.size_bytes < 100 * KB, name

    def test_three_classes_have_constant_working_sets(self, characterizations):
        """LU, CG and FFT working sets 'do not increase with the problem
        or machine size'."""
        for name in ("LU", "CG", "FFT"):
            important = characterizations[name].working_sets.important_working_set
            assert "const" in important.scaling, name

    def test_two_exceptions_scale_slowly(self, characterizations):
        """Barnes-Hut (log) and volume rendering (cube root) 'scale
        quite slowly with problem size'."""
        bh = characterizations["Barnes-Hut"].working_sets.important_working_set
        vr = characterizations[
            "Volume Rendering"
        ].working_sets.important_working_set
        assert "log" in bh.scaling
        assert "cbrt" in vr.scaling or "1/3" in vr.scaling

    def test_fine_grained_machines_appropriate(self, characterizations):
        """'relatively fine-grained machines, with large numbers of
        processors and quite small amounts of memory per processor, are
        appropriate for all the applications' — every application's
        desirable grain is at most 1 MB/processor."""
        for name, char in characterizations.items():
            grain = char.desirable_grain
            assert grain.memory_per_processor <= 1.05 * MB, name
            assert grain.num_processors >= 1024, name

    def test_prototypical_configuration_never_poor(self, characterizations):
        """The 1024-processor, 1 MB/node machine earns at least a
        MARGINAL verdict everywhere (GOOD for all but the FFT)."""
        for name, char in characterizations.items():
            verdict = char.assessments[1].verdict
            assert verdict is not GrainVerdict.POOR, name
            if name != "FFT":
                assert verdict is GrainVerdict.GOOD, name

    def test_fft_is_the_communication_exception(self, characterizations):
        """'the communication volume inherent in the [FFT] is
        sufficiently high that communication costs will certainly
        dominate' — its prototypical ratio sits in the hard-to-sustain
        band while every other application's is easy."""
        ratios = {
            name: char.assessments[1].flops_per_word
            for name, char in characterizations.items()
        }
        assert ratios["FFT"] < 75
        for name, ratio in ratios.items():
            if name != "FFT":
                assert ratio > 75, name
