"""Circuit breaker state machine: trip on consecutive worker-category
failures, cooldown, the single half-open probe, and close semantics.
All transitions run on a manual clock — no sleeping, no flaking."""

import pytest

from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)

from tests.service.conftest import ManualClock, counter, gauge


def make_breaker(threshold=3, cooldown=30.0):
    clock = ManualClock()
    return CircuitBreaker(
        failure_threshold=threshold, cooldown_seconds=cooldown, clock=clock
    ), clock


class TestClosed:
    def test_starts_closed_and_allows_full_scale(self):
        breaker, _ = make_breaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow_full_scale()

    def test_non_worker_failures_never_trip(self):
        breaker, _ = make_breaker(threshold=2)
        for _ in range(10):
            breaker.record_failure("analysis")
            breaker.record_failure("result-rejected")
        assert breaker.state == STATE_CLOSED

    def test_non_worker_failure_resets_the_consecutive_run(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure("worker-crash")
        breaker.record_failure("worker-timeout")
        breaker.record_failure("analysis")  # the pool answered
        breaker.record_failure("worker-crash")
        breaker.record_failure("worker-crash")
        assert breaker.state == STATE_CLOSED
        assert breaker.consecutive_failures == 2

    def test_success_resets_the_consecutive_run(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure("worker-crash")
        breaker.record_success()
        breaker.record_failure("worker-crash")
        assert breaker.state == STATE_CLOSED

    def test_validates_constructor_args(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1)


class TestTripAndCooldown:
    def test_threshold_consecutive_worker_failures_trip(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure("worker-crash")
        assert breaker.state == STATE_OPEN
        assert not breaker.allow_full_scale()
        assert counter("service.breaker.trips") == 1
        assert gauge("service.breaker.state") == 2

    def test_both_worker_categories_count_toward_one_run(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure("worker-crash")
        breaker.record_failure("worker-timeout")
        assert breaker.state == STATE_OPEN

    def test_open_refuses_until_the_cooldown_elapses(self):
        breaker, clock = make_breaker(threshold=1, cooldown=30.0)
        breaker.record_failure("worker-crash")
        clock.advance(29.9)
        assert not breaker.allow_full_scale()
        clock.advance(0.2)
        assert breaker.state == STATE_HALF_OPEN


class TestHalfOpen:
    def tripped(self):
        breaker, clock = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure("worker-crash")
        clock.advance(10.0)
        return breaker, clock

    def test_exactly_one_probe_is_admitted(self):
        breaker, _ = self.tripped()
        assert breaker.allow_full_scale()  # claims the probe slot
        assert not breaker.allow_full_scale()
        assert not breaker.allow_full_scale()
        assert counter("service.breaker.probes") == 1

    def test_probe_success_closes(self):
        breaker, _ = self.tripped()
        assert breaker.allow_full_scale()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow_full_scale()
        assert counter("service.breaker.closes") == 1

    def test_probe_worker_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.tripped()
        assert breaker.allow_full_scale()
        breaker.record_failure("worker-timeout")
        assert breaker.state == STATE_OPEN
        clock.advance(9.9)
        assert not breaker.allow_full_scale()
        clock.advance(0.2)
        assert breaker.allow_full_scale()  # next probe

    def test_probe_failing_for_experiment_reasons_closes(self):
        # The pool answered; the experiment itself was wrong.  That is
        # a healthy pool, so the breaker must not stay wedged half-open.
        breaker, _ = self.tripped()
        assert breaker.allow_full_scale()
        breaker.record_failure("analysis")
        assert breaker.state == STATE_CLOSED
        assert breaker.allow_full_scale()


class TestDescribe:
    def test_describe_reports_live_state(self):
        breaker, clock = make_breaker(threshold=1, cooldown=5.0)
        breaker.record_failure("worker-crash")
        desc = breaker.describe()
        assert desc["state"] == STATE_OPEN
        assert desc["consecutive_failures"] == 1
        clock.advance(5.0)
        assert breaker.describe()["state"] == STATE_HALF_OPEN
