"""Dispatch-fabric unit tests: the fencing gate, failover requeue, and
hedging policy.

These drive :class:`~repro.service.dispatch.NodeFabric` internals with
hand-built registry entries — no subprocesses, no sockets — so every
fencing decision is tested in microseconds.  The full wire protocol
(real node processes, kills, partitions) is covered by the node-chaos
harness (``chaos --nodes``) and its CI job.
"""

from __future__ import annotations

import socket

import pytest

from repro.experiments.runner import ExperimentResult
from repro.runtime.journal import Journal, read_journal
from repro.runtime.workers import AttemptSpec
from repro.service.dispatch import (
    DISPATCH_WAL_FILENAME,
    FENCE_DUPLICATE,
    FENCE_STALE_ENGINE,
    FENCE_STALE_NODE,
    FENCE_SUPERSEDED,
    FabricConfig,
    NodeFabric,
    _NodeState,
    _Ticket,
)


class FakeSession:
    """The slice of DispatchSession the fabric actually touches."""

    def __init__(self, wal_path, token=1):
        self.journal = Journal(wal_path, token=token, fsync=False)
        self.token = token
        self.hard_timeout_seconds = None
        self.term_grace_seconds = 2.0

    def current_token(self):
        return self.token


def make_fabric(tmp_path, node_ids=("node-0",), **config_kwargs):
    """A fabric with registered (never-spawned) live nodes.

    ``_stopping`` is set so a declared death never respawns a real
    subprocess under test.
    """
    config_kwargs.setdefault("nodes", len(node_ids))
    fabric = NodeFabric(tmp_path, config=FabricConfig(**config_kwargs))
    fabric._stopping.set()
    for node_id in node_ids:
        node = _NodeState(node_id, token=1)
        node.connected = True
        # A real socketpair so best-effort sends succeed (a dead link
        # triggers the declare-dead path, which is not under test here).
        node.conn, node._test_peer = socket.socketpair()
        fabric._nodes[node_id] = node
        from repro.service.breaker import CircuitBreaker

        fabric._breakers[node_id] = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=10.0
        )
    return fabric


def make_ticket(fabric, session, experiment_id="exp", attempt=1):
    spec = AttemptSpec(
        experiment_id=experiment_id,
        runner="tests.runtime.worker_targets:run_ok",
        attempt=attempt,
        fencing_token=session.token,
    )
    uid = f"{experiment_id}@{session.token}.{attempt}"
    return _Ticket(spec, uid, session)


def assign(fabric, ticket, node_id="node-0"):
    """Open one assignment on ``node_id``; returns its assignment id."""
    with fabric._lock:
        node = fabric._nodes[node_id]
        fabric._assign_locked(ticket, node, "dispatch-assign")
    return next(iter(ticket.assignments))


def result_message(assignment_id, node, engine_token=1, result=None):
    payload = (
        result
        if result is not None
        else ExperimentResult(experiment_id="exp", title="t").to_dict()
    )
    return {
        "type": "result",
        "node_id": node.node_id,
        "node_token": node.token,
        "assignment_id": assignment_id,
        "engine_token": engine_token,
        "result": payload,
    }


def wal_types(tmp_path):
    records = read_journal(tmp_path / DISPATCH_WAL_FILENAME).records
    return [r["type"] for r in records]


def fence_reasons(tmp_path):
    return [
        r.get("reason")
        for r in read_journal(tmp_path / DISPATCH_WAL_FILENAME).records
        if r["type"] == "dispatch-fenced"
    ]


class TestFabricConfig:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            FabricConfig(nodes=0)

    def test_rejects_ttl_not_exceeding_heartbeat(self):
        with pytest.raises(ValueError, match="heartbeat_ttl"):
            FabricConfig(
                heartbeat_interval_seconds=1.0, heartbeat_ttl_seconds=1.0
            )


class TestFencingGate:
    def test_valid_result_records_exactly_one_complete(self, tmp_path):
        fabric = make_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        aid = assign(fabric, ticket)
        node = fabric._nodes["node-0"]

        fabric._handle_result(node, result_message(aid, node))

        assert ticket.completed and ticket.failure is None
        assert ticket.result is not None
        assert ticket.event.is_set()
        assert wal_types(tmp_path) == ["dispatch-assign", "dispatch-complete"]

    def test_stale_node_token_is_fenced_not_recorded(self, tmp_path):
        fabric = make_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        aid = assign(fabric, ticket)
        node = fabric._nodes["node-0"]

        message = result_message(aid, node)
        message["node_token"] = node.token - 1  # superseded incarnation
        fabric._handle_result(node, message)

        assert not ticket.completed
        assert "dispatch-complete" not in wal_types(tmp_path)
        assert fence_reasons(tmp_path) == [FENCE_STALE_NODE]

    def test_duplicate_result_is_fenced_after_first_wins(self, tmp_path):
        fabric = make_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        aid = assign(fabric, ticket)
        node = fabric._nodes["node-0"]

        fabric._handle_result(node, result_message(aid, node))
        fabric._handle_result(node, result_message(aid, node))

        types = wal_types(tmp_path)
        assert types.count("dispatch-complete") == 1
        assert fence_reasons(tmp_path) == [FENCE_DUPLICATE]

    def test_requeued_assignment_is_fenced_as_superseded(self, tmp_path):
        fabric = make_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        aid = assign(fabric, ticket)
        node = fabric._nodes["node-0"]
        # Simulate the failover path having moved the work elsewhere.
        ticket.assignments.pop(aid)

        fabric._handle_result(node, result_message(aid, node))

        assert not ticket.completed
        assert fence_reasons(tmp_path) == [FENCE_SUPERSEDED]

    def test_stale_engine_token_is_a_fencing_violation(self, tmp_path):
        fabric = make_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME, token=3)
        ticket = make_ticket(fabric, session)
        aid = assign(fabric, ticket)
        node = fabric._nodes["node-0"]

        fabric._handle_result(
            node, result_message(aid, node, engine_token=2)
        )

        assert ticket.completed  # resolved — but as a rejection
        assert ticket.result is None
        assert ticket.failure is not None
        assert ticket.failure.category == "fencing-stale"
        assert "dispatch-complete" not in wal_types(tmp_path)
        assert fence_reasons(tmp_path) == [FENCE_STALE_ENGINE]

    def test_unusable_payload_is_a_classified_crash(self, tmp_path):
        fabric = make_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        aid = assign(fabric, ticket)
        node = fabric._nodes["node-0"]

        message = result_message(aid, node)
        message["result"] = {"nonsense": True}
        fabric._handle_result(node, message)

        assert ticket.completed
        assert ticket.failure is not None
        assert ticket.failure.category == "worker-crash"
        # Still recorded: the attempt consumed its dispatch.
        assert wal_types(tmp_path) == ["dispatch-assign", "dispatch-complete"]


class TestFailover:
    def test_dead_node_requeues_onto_survivor(self, tmp_path):
        fabric = make_fabric(tmp_path, node_ids=("node-0", "node-1"))
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        assign(fabric, ticket, "node-0")

        with fabric._lock:
            fabric._declare_dead_locked(fabric._nodes["node-0"], "test-kill")

        assert wal_types(tmp_path) == [
            "dispatch-assign",
            "dispatch-requeue",
            "dispatch-assign",
        ]
        assert list(ticket.assignments.values()) == ["node-1"]
        assert not ticket.completed

    def test_dead_node_with_no_survivor_parks_the_ticket(self, tmp_path):
        fabric = make_fabric(tmp_path, no_node_grace_seconds=30.0)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        assign(fabric, ticket, "node-0")

        with fabric._lock:
            fabric._declare_dead_locked(fabric._nodes["node-0"], "test-kill")

        assert ticket in fabric._unassigned
        assert not ticket.completed
        assert wal_types(tmp_path) == ["dispatch-assign", "dispatch-requeue"]

    def test_declared_death_is_idempotent(self, tmp_path):
        fabric = make_fabric(tmp_path, node_ids=("node-0", "node-1"))
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        assign(fabric, ticket, "node-0")

        with fabric._lock:
            fabric._declare_dead_locked(fabric._nodes["node-0"], "one")
            fabric._declare_dead_locked(fabric._nodes["node-0"], "two")

        # Exactly one requeue despite the double declaration.
        assert wal_types(tmp_path).count("dispatch-requeue") == 1


class TestHedging:
    def hedged_fabric(self, tmp_path):
        fabric = make_fabric(
            tmp_path,
            node_ids=("node-0", "node-1"),
            hedge_min_seconds=0.01,
            hedge_p95_factor=1.0,
            hedge_min_samples=3,
        )
        fabric._durations = [0.01, 0.01, 0.01]
        return fabric

    def test_straggler_gets_a_hedge_on_another_node(self, tmp_path):
        fabric = self.hedged_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        assign(fabric, ticket, "node-0")
        ticket.first_dispatch_mono -= 10.0  # well past the threshold

        with fabric._lock:
            sends = fabric._maybe_hedge_locked()

        assert ticket.hedged
        assert len(sends) == 1
        assert sends[0][0].node_id == "node-1"
        assert wal_types(tmp_path) == ["dispatch-assign", "dispatch-hedge"]
        assert sorted(ticket.assignments.values()) == ["node-0", "node-1"]

    def test_no_hedge_below_min_samples(self, tmp_path):
        fabric = self.hedged_fabric(tmp_path)
        fabric._durations = [0.01]  # not enough completions to trust p95
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        assign(fabric, ticket, "node-0")
        ticket.first_dispatch_mono -= 10.0

        with fabric._lock:
            assert fabric._maybe_hedge_locked() == []
        assert not ticket.hedged

    def test_hedge_never_repeats_and_needs_a_second_node(self, tmp_path):
        fabric = self.hedged_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        assign(fabric, ticket, "node-0")
        ticket.first_dispatch_mono -= 10.0

        with fabric._lock:
            assert len(fabric._maybe_hedge_locked()) == 1
            assert fabric._maybe_hedge_locked() == []  # already hedged

    def test_hedge_loser_is_cancelled_and_fenced_on_late_arrival(
        self, tmp_path
    ):
        fabric = self.hedged_fabric(tmp_path)
        session = FakeSession(tmp_path / DISPATCH_WAL_FILENAME)
        ticket = make_ticket(fabric, session)
        first = assign(fabric, ticket, "node-0")
        ticket.first_dispatch_mono -= 10.0
        with fabric._lock:
            fabric._maybe_hedge_locked()
        hedge_aid = next(a for a in ticket.assignments if a != first)

        # Hedge wins; the original node answers late.
        node1 = fabric._nodes["node-1"]
        node0 = fabric._nodes["node-0"]
        fabric._handle_result(node1, result_message(hedge_aid, node1))
        fabric._handle_result(node0, result_message(first, node0))

        types = wal_types(tmp_path)
        assert types.count("dispatch-complete") == 1
        assert fence_reasons(tmp_path) == [FENCE_DUPLICATE]
        assert ticket.result is not None
