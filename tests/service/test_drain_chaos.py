"""Service-level chaos: SIGKILL in the middle of a graceful drain.

The drain contract is that accepted work is never lost: in-flight
campaigns are finished, queued ones are parked in the WAL.  A SIGKILL
mid-drain voids none of that — the next incarnation replays the
service WAL, re-queues everything accepted-but-not-done, and each
campaign's own journal recovery guarantees exactly-once execution per
attempt.  This test does it for real: a ``serve`` subprocess, real
quick experiments, a kill window in the middle of the drain."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXPERIMENTS = ["table1", "fig2"]


def serve_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CODE_FINGERPRINT"] = "drain-chaos-fingerprint"
    return env


def start_serve(root: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments", "serve", str(root),
            "--quick", "--quiet",
        ],
        env=serve_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_address(root: Path, proc: subprocess.Popen, timeout=30.0) -> str:
    deadline = time.monotonic() + timeout
    info_path = root / "service.json"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(f"serve died at startup:\n{out}\n{err}")
        try:
            info = json.loads(info_path.read_text(encoding="utf-8"))
            # A SIGKILLed incarnation leaves its stale service.json
            # behind; only trust the file once THIS process wrote it.
            if info.get("pid") == proc.pid:
                return f"http://{info['host']}:{info['port']}"
        except (OSError, json.JSONDecodeError, KeyError):
            pass
        time.sleep(0.1)
    raise AssertionError("service.json never appeared")


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.load(resp)


def post_campaign(base: str, tenant: str) -> str:
    request = urllib.request.Request(
        base + "/v1/campaigns",
        data=json.dumps(
            {"tenant": tenant, "experiments": EXPERIMENTS}
        ).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        assert resp.status == 202
        return json.load(resp)["campaign_id"]


def wait_state(base, campaign_id, states, timeout=90.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        body = get_json(base + f"/v1/campaigns/{campaign_id}")
        if body["state"] in states:
            return body
        time.sleep(0.1)
    raise AssertionError(f"{campaign_id} never reached {states}")


def test_sigkill_mid_drain_resumes_exactly_once(tmp_path):
    root = tmp_path / "svc"
    first = start_serve(root)
    try:
        base = wait_for_address(root, first)
        campaign_id = post_campaign(base, "alice")
        wait_state(base, campaign_id, ("running", "complete"))
        # Drain with the campaign (probably) in flight, then SIGKILL
        # before the drain can possibly finish it.
        first.send_signal(signal.SIGTERM)
        time.sleep(0.2)
        first.kill()
        first.wait(timeout=30)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30)

    # Second incarnation: WAL replay re-queues the owed submission
    # under its original id; its run directory resumes exactly-once.
    second = start_serve(root)
    try:
        base = wait_for_address(root, second)
        done = wait_state(base, campaign_id, ("complete", "failed"))
        assert done["state"] == "complete", done
        result = get_json(base + f"/v1/campaigns/{campaign_id}/result")
        assert set(result["summary"]["statuses"]) == set(EXPERIMENTS)
        second.send_signal(signal.SIGTERM)
        out, err = second.communicate(timeout=60)
        assert second.returncode == 0, f"drain was not clean:\n{out}\n{err}"
    finally:
        if second.poll() is None:
            second.kill()
            second.communicate(timeout=30)

    # Exactly-once per attempt: no attempt uid committed twice in the
    # campaign's own journal across the two incarnations.
    run_dir = root / "campaigns" / "alice" / campaign_id
    committed = []
    journal_path = run_dir / "journal.wal"
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line.split(" ", 2)[2])
        if record.get("type") == "attempt-end" and record.get("attempt_uid"):
            committed.append(record["attempt_uid"])
    assert len(committed) == len(set(committed)), committed

    # The drained root passes the full artifact audit.
    audit = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "validate", str(root)],
        env=serve_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert audit.returncode == 0, audit.stdout + audit.stderr
    assert "PASS" in audit.stdout
    store = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--verify-store",
         str(root)],
        env=serve_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert store.returncode == 0, store.stdout + store.stderr
