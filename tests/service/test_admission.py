"""Admission control: bounded per-tenant queues, explicit backpressure
with honest Retry-After, fair-share dequeue, and drain semantics."""

import pytest

from repro.service.admission import (
    AdmissionClosed,
    AdmissionController,
    AdmissionRejected,
)

from tests.service.conftest import counter, gauge


class TestSubmit:
    def test_submit_and_dequeue_round_trip(self):
        ctl = AdmissionController()
        assert ctl.submit("alice", "job-1") == 1
        assert ctl.submit("alice", "job-2") == 2
        assert ctl.next_job(timeout=0) == ("alice", "job-1")
        assert ctl.pending_total() == 1
        assert counter("service.admission.accepted") == 2

    def test_malformed_tenant_names_are_refused(self):
        ctl = AdmissionController()
        for bad in ("", "-leading", "has space", "a" * 65, "../escape"):
            with pytest.raises(ValueError):
                ctl.submit(bad, "job")

    def test_constructor_validates_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_capacity=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_capacity=8, max_total=4)


class TestBackpressure:
    def test_tenant_queue_full_is_tenant_scope(self):
        ctl = AdmissionController(queue_capacity=2, max_total=64)
        ctl.submit("alice", "j1")
        ctl.submit("alice", "j2")
        with pytest.raises(AdmissionRejected) as info:
            ctl.submit("alice", "j3")
        assert info.value.scope == "tenant"
        assert info.value.retry_after_seconds >= 1
        ctl.submit("bob", "j1")  # other tenants are unaffected
        assert counter("service.admission.rejected_tenant") == 1

    def test_global_cap_is_service_scope(self):
        ctl = AdmissionController(queue_capacity=2, max_total=2)
        ctl.submit("alice", "j1")
        ctl.submit("bob", "j1")
        with pytest.raises(AdmissionRejected) as info:
            ctl.submit("carol", "j1")
        assert info.value.scope == "service"
        assert counter("service.admission.rejected_service") == 1

    def test_rejection_leaves_no_state_behind(self):
        ctl = AdmissionController(queue_capacity=1, max_total=64)
        ctl.submit("alice", "j1")
        with pytest.raises(AdmissionRejected):
            ctl.submit("alice", "j2")
        assert ctl.depths() == {"alice": 1}
        assert ctl.pending_total() == 1

    def test_retry_after_scales_with_queue_position_and_ewma(self):
        ctl = AdmissionController(queue_capacity=3, max_total=64)
        ctl.note_service_time(10.0)  # first sample seeds the EWMA
        for i in range(3):
            ctl.submit("alice", f"j{i}")
        with pytest.raises(AdmissionRejected) as info:
            ctl.submit("alice", "j3")
        assert info.value.retry_after_seconds == 30  # 10s x 3 queued ahead

    def test_retry_after_is_clamped_to_the_600s_ceiling(self):
        ctl = AdmissionController(queue_capacity=2, max_total=64)
        ctl.note_service_time(100000.0)
        ctl.submit("alice", "j1")
        ctl.submit("alice", "j2")
        with pytest.raises(AdmissionRejected) as info:
            ctl.submit("alice", "j3")
        assert info.value.retry_after_seconds == 600

    def test_enforce_bounds_false_bypasses_capacity_for_recovery(self):
        ctl = AdmissionController(queue_capacity=1, max_total=1)
        ctl.submit("alice", "j1")
        ctl.submit("alice", "j2", enforce_bounds=False)
        ctl.submit("bob", "j1", enforce_bounds=False)
        assert ctl.pending_total() == 3


class TestFairShare:
    def test_flooding_tenant_delays_only_itself(self):
        ctl = AdmissionController(queue_capacity=8, max_total=64)
        for i in range(6):
            ctl.submit("flood", f"f{i}")
        ctl.submit("quiet", "q0")
        served = [ctl.next_job(timeout=0)[0] for _ in range(4)]
        # Round-robin: "quiet" is served within one rotation, not after
        # the flooder's entire backlog.
        assert "quiet" in served[:2]

    def test_rotation_visits_every_pending_tenant_before_repeats(self):
        ctl = AdmissionController()
        for tenant in ("a", "b", "c"):
            ctl.submit(tenant, f"{tenant}-1")
            ctl.submit(tenant, f"{tenant}-2")
        first_round = [ctl.next_job(timeout=0)[0] for _ in range(3)]
        assert sorted(first_round) == ["a", "b", "c"]

    def test_queue_depth_gauges_track_submissions(self):
        ctl = AdmissionController()
        ctl.submit("alice", "j1")
        ctl.submit("alice", "j2")
        assert gauge("service.queue.depth.alice") == 2
        ctl.next_job(timeout=0)
        assert gauge("service.queue.depth.alice") == 1
        assert gauge("service.queue.depth_total") == 1


class TestDrain:
    def test_closed_controller_refuses_new_work(self):
        ctl = AdmissionController()
        ctl.close()
        with pytest.raises(AdmissionClosed):
            ctl.submit("alice", "j1")
        assert ctl.closed

    def test_next_job_returns_none_when_closed_and_empty(self):
        ctl = AdmissionController()
        ctl.submit("alice", "j1")
        ctl.close()
        assert ctl.next_job(timeout=0) == ("alice", "j1")  # finish accepted
        assert ctl.next_job(timeout=0) is None  # drain-complete signal

    def test_next_job_times_out_with_none(self):
        assert AdmissionController().next_job(timeout=0.01) is None

    def test_drain_remaining_parks_everything_queued(self):
        ctl = AdmissionController()
        ctl.submit("alice", "j1")
        ctl.submit("bob", "j1")
        ctl.submit("bob", "j2")
        parked = ctl.drain_remaining()
        assert sorted(parked) == [("alice", "j1"), ("bob", "j1"), ("bob", "j2")]
        assert ctl.pending_total() == 0
        assert gauge("service.queue.depth.bob") == 0
