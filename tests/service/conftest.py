"""Shared isolation and helpers for the service-layer tests.

The service keeps deliberate process-global state through the obs
registry (cache counters, queue-depth gauges, breaker state) and keys
the cache by the live code fingerprint.  Every test here starts with
metrics collection ON over a reset registry and a *pinned* code
fingerprint, so cache keys are stable regardless of source edits and
no counter leaks between tests — or into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import cache as cache_mod

from tests.runtime.conftest import (  # noqa: F401  (re-exported fixtures)
    FakeClock,
    FakeExperiment,
    SleepRecorder,
    fake_clock,
    sleep_recorder,
)

#: Deterministic stand-in for the real code fingerprint.
PINNED_FINGERPRINT = "test-fingerprint-0000"


@pytest.fixture(autouse=True)
def _service_isolation(monkeypatch):
    monkeypatch.delenv(obs_metrics.OBS_ENV, raising=False)
    monkeypatch.setenv(cache_mod.FINGERPRINT_ENV, PINNED_FINGERPRINT)
    obs_metrics.set_obs_enabled(True)
    obs_metrics.get_registry().reset()
    yield
    obs_metrics.set_obs_enabled(False)
    obs_metrics.get_registry().reset()


class ManualClock:
    """A monotonic clock that only moves when told to (breaker tests)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def counter(name: str) -> float:
    """Current value of one obs counter (0 when never incremented)."""
    snapshot = obs_metrics.get_registry().snapshot()
    return snapshot["counters"].get(name, 0)


def gauge(name: str):
    return obs_metrics.get_registry().snapshot()["gauges"].get(name)
