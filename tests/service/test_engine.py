"""CachedCampaignEngine: memoization in front of the crash-consistent
engine, honest cache keys under degradation, and breaker gating."""

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import EngineConfig
from repro.runtime.errors import WorkerCrashError
from repro.service.breaker import STATE_CLOSED, STATE_OPEN, CircuitBreaker
from repro.service.cache import ResultCache
from repro.service.engine import CachedCampaignEngine

from tests.service.conftest import FakeExperiment, ManualClock, counter


def make_engine(experiments, fake_clock, sleep_recorder, cache=None,
                breaker=None, store=None, **config_kwargs):
    registry = {exp.experiment_id: (exp, {"n": 1000}) for exp in experiments}
    overrides = {exp.experiment_id: {"n": 10} for exp in experiments}
    config_kwargs.setdefault("jobs", 0)
    config = EngineConfig(
        sleep=sleep_recorder, clock=fake_clock, **config_kwargs
    )
    return CachedCampaignEngine(
        registry,
        quick_overrides=overrides,
        config=config,
        store=store,
        cache=cache,
        breaker=breaker,
    )


class TestMemoization:
    def test_identical_work_is_simulated_once_then_served(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        cache = ResultCache(tmp_path / "cache")
        first_exp = FakeExperiment("a")
        make_engine([first_exp], fake_clock, sleep_recorder, cache=cache).run()
        assert len(first_exp.calls) == 1

        second_exp = FakeExperiment("a")
        engine = make_engine([second_exp], fake_clock, sleep_recorder, cache=cache)
        report = engine.run()
        assert second_exp.calls == []  # served, not simulated
        assert engine.cache_hits == ["a"]
        assert report.ok_ids == ["a"]
        assert counter("service.cache.hits") == 1
        assert counter("service.cache.misses") == 1

    def test_served_hits_are_marked_in_the_result_notes(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        cache = ResultCache(tmp_path / "cache")
        make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder, cache=cache
        ).run()
        engine = make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder, cache=cache
        )
        outcome = engine.run().outcome("a")
        assert any("content-addressed cache" in n for n in outcome.result.notes)

    def test_hits_are_checkpointed_like_computed_outcomes(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        cache = ResultCache(tmp_path / "cache")
        make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder, cache=cache
        ).run()
        store = CheckpointStore(tmp_path / "run")
        engine = make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder,
            cache=cache, store=store,
        )
        engine.run()
        assert store.completed_ids() == ["a"]
        assert store.verify_all() == {}

    def test_different_params_miss(self, tmp_path, fake_clock, sleep_recorder):
        cache = ResultCache(tmp_path / "cache")
        make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder, cache=cache
        ).run()
        # Quick run keys on the quick parameterization: a fresh miss.
        exp = FakeExperiment("a")
        make_engine(
            [exp], fake_clock, sleep_recorder, cache=cache, quick=True
        ).run()
        assert len(exp.calls) == 1
        assert exp.calls[0]["n"] == 10

    def test_degraded_outcomes_are_never_cached(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        cache = ResultCache(tmp_path / "cache")
        exp = FakeExperiment("a", fail_times=1)
        report = make_engine(
            [exp], fake_clock, sleep_recorder, cache=cache, max_attempts=2
        ).run()
        assert report.degraded_ids == ["a"]
        # The degraded retry ran quick params under a full-scale key;
        # caching it would serve wrong physics to full-scale lookups.
        assert not list((tmp_path / "cache").rglob("*.json")) or (
            cache.read_manifest() is None
            or cache.read_manifest()["entries"] == {}
        )
        assert cache.get(cache.key_for("a", {"n": 1000})) is None

    def test_without_a_cache_the_engine_just_runs(
        self, fake_clock, sleep_recorder
    ):
        exp = FakeExperiment("a")
        report = make_engine([exp], fake_clock, sleep_recorder).run()
        assert report.ok_ids == ["a"]
        assert len(exp.calls) == 1


class TestBreakerGating:
    def open_breaker(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=1000.0, clock=clock
        )
        breaker.record_failure("worker-crash")
        assert breaker.state == STATE_OPEN
        return breaker

    def test_open_breaker_degrades_to_quick_parameters(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        exp = FakeExperiment("a")
        report = make_engine(
            [exp], fake_clock, sleep_recorder, breaker=self.open_breaker()
        ).run()
        assert report.ok_ids == ["a"]
        assert exp.calls[0]["n"] == 10  # quick, not full scale
        assert counter("service.breaker.degraded_dispatches") == 1

    def test_degraded_dispatch_keys_the_cache_on_quick_params(
        self, tmp_path, fake_clock, sleep_recorder
    ):
        cache = ResultCache(tmp_path / "cache")
        make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder,
            cache=cache, breaker=self.open_breaker(),
        ).run()
        assert cache.get(cache.key_for("a", {"n": 10})) is not None
        assert cache.get(cache.key_for("a", {"n": 1000})) is None

    def test_quick_success_does_not_close_the_breaker(
        self, fake_clock, sleep_recorder
    ):
        breaker = self.open_breaker()
        make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder, breaker=breaker
        ).run()
        # A quick run surviving a sick pool proves little.
        assert breaker.state == STATE_OPEN

    def test_worker_failures_feed_the_breaker(
        self, fake_clock, sleep_recorder
    ):
        breaker = CircuitBreaker(failure_threshold=10, clock=ManualClock())
        exp = FakeExperiment(
            "a", fail_times=99, error=WorkerCrashError("pool died")
        )
        make_engine(
            [exp], fake_clock, sleep_recorder,
            breaker=breaker, max_attempts=2,
        ).run()
        assert breaker.consecutive_failures == 2

    def test_full_scale_success_closes_the_breaker(
        self, fake_clock, sleep_recorder
    ):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_failure("worker-crash")
        clock.advance(5.0)  # half-open: the engine's run is the probe
        make_engine(
            [FakeExperiment("a")], fake_clock, sleep_recorder, breaker=breaker
        ).run()
        assert breaker.state == STATE_CLOSED

    def test_explicit_quick_config_skips_breaker_gating(
        self, fake_clock, sleep_recorder
    ):
        exp = FakeExperiment("a")
        make_engine(
            [exp], fake_clock, sleep_recorder,
            breaker=self.open_breaker(), quick=True,
        ).run()
        assert exp.calls[0]["n"] == 10
        assert counter("service.breaker.degraded_dispatches") == 0
