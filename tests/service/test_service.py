"""CampaignService end to end: HTTP surface, overload backpressure,
deadlines, graceful drain with parked work, and WAL recovery.

These tests run the real ThreadingHTTPServer on an ephemeral port with
fake in-process experiments, so they exercise the full admission ->
WAL -> dispatch -> cache -> response path without simulating anything.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.http import CampaignService, ServiceConfig

from tests.runtime.conftest import FakeExperiment, make_result


class GateExperiment:
    """An experiment that blocks until released (fills queues on cue)."""

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def run(self, **kwargs):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30), "gate never released"
        return make_result(self.experiment_id, **kwargs)


def make_service(tmp_path, experiments, **config_kwargs):
    registry = {e.experiment_id: (e, {"n": 100}) for e in experiments}
    overrides = {e.experiment_id: {"n": 10} for e in experiments}
    config = ServiceConfig(port=0, **config_kwargs)
    return CampaignService(tmp_path / "root", registry, overrides, config)


def http(method, base, path, body=None):
    """Returns (status, headers, decoded-json-or-None); never raises."""
    request = urllib.request.Request(
        base + path,
        method=method,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, dict(resp.headers), json.load(resp)
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            payload = None
        return exc.code, dict(exc.headers), payload


def wait_terminal(service, campaign_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        submission = service.get_submission(campaign_id)
        if submission is not None and submission.state in (
            "complete", "failed", "deadline-exceeded"
        ):
            return submission
        time.sleep(0.02)
    raise AssertionError(f"{campaign_id} never reached a terminal state")


@pytest.fixture
def started(tmp_path):
    """Start a service, yield (service, base_url), always drain."""
    services = []

    def factory(experiments, **config_kwargs):
        service = make_service(tmp_path, experiments, **config_kwargs)
        service.start()
        services.append(service)
        host, port = service.address
        return service, f"http://{host}:{port}"

    yield factory
    for service in services:
        if not service.draining:
            service.drain(timeout=30)


class TestHappyPath:
    def test_submit_runs_and_serves_the_result(self, started):
        service, base = started([FakeExperiment("a"), FakeExperiment("b")])
        status, _, body = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["a", "b"]},
        )
        assert status == 202
        campaign_id = body["campaign_id"]
        assert body["status_url"] == f"/v1/campaigns/{campaign_id}"
        wait_terminal(service, campaign_id)
        status, _, body = http("GET", base, f"/v1/campaigns/{campaign_id}")
        assert status == 200
        assert body["state"] == "complete"
        assert body["statuses"] == {"a": "ok", "b": "ok"}
        status, _, body = http(
            "GET", base, f"/v1/campaigns/{campaign_id}/result"
        )
        assert status == 200
        assert body["summary"]["statuses"] == {"a": "ok", "b": "ok"}

    def test_identical_submission_from_a_second_tenant_hits_the_cache(
        self, started
    ):
        service, base = started([FakeExperiment("a")])
        _, _, first = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["a"]},
        )
        done = wait_terminal(service, first["campaign_id"])
        assert done.cache_hits == 0
        _, _, second = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "bob", "experiments": ["a"]},
        )
        done = wait_terminal(service, second["campaign_id"])
        assert done.state == "complete"
        assert done.cache_hits == 1  # served, not recomputed
        (experiment,) = [e for e, _ in service.registry.values()]
        assert len(experiment.calls) == 1

    def test_health_metrics_and_service_description(self, started):
        service, base = started([FakeExperiment("a")])
        assert http("GET", base, "/healthz")[0] == 200
        assert http("GET", base, "/readyz")[0] == 200
        status, _, body = http("GET", base, "/v1/service")
        assert status == 200
        assert body["draining"] is False
        assert body["breaker"]["state"] == "closed"
        request = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as resp:
            text = resp.read().decode()
        assert resp.headers["Content-Type"].startswith("text/plain")
        assert "service_" in text

    def test_error_surfaces(self, started):
        service, base = started([FakeExperiment("a")])
        assert http("POST", base, "/v1/campaigns", {"nope": 1})[0] == 400
        status, _, _ = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["unknown-exp"]},
        )
        assert status == 400
        assert http("GET", base, "/v1/campaigns/nope-00001")[0] == 404


class TestRollup:
    def test_status_rollup_aggregates_tenants_cache_and_breaker(
        self, started
    ):
        from repro.obs.status import load_service_status, render_service_status

        service, base = started([FakeExperiment("a")])
        for tenant in ("alice", "bob"):
            _, _, body = http(
                "POST", base, "/v1/campaigns",
                {"tenant": tenant, "experiments": ["a"]},
            )
            wait_terminal(service, body["campaign_id"])
        rollup = load_service_status(service.root)
        assert set(rollup["tenants"]) == {"alice", "bob"}
        assert rollup["tenants"]["alice"]["states"] == {"complete": 1}
        assert rollup["queue_depth_total"] == 0
        assert rollup["cache"]["hits"] == 1
        assert rollup["cache"]["misses"] == 1
        assert rollup["cache"]["hit_ratio"] == 0.5
        assert rollup["breaker_state"] == "closed"
        assert rollup["submissions"]["accepted"] == 2
        text = render_service_status(rollup)
        assert "alice" in text and "bob" in text and "hit ratio" in text


class TestOverload:
    def test_backpressure_is_explicit_and_accepted_work_survives(
        self, started
    ):
        gate = GateExperiment("slow")
        service, base = started(
            [gate], queue_capacity=1, max_queued=2, dispatchers=1
        )

        def post(tenant):
            return http(
                "POST", base, "/v1/campaigns",
                {"tenant": tenant, "experiments": ["slow"]},
            )

        status, _, first = post("alice")
        assert status == 202
        assert gate.started.wait(timeout=10)  # a1 occupies the dispatcher
        status, _, second = post("alice")  # queued: alice depth 1/1
        assert status == 202
        status, headers, body = post("alice")  # tenant queue full
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert body["scope"] == "tenant"
        status, _, third = post("bob")  # queued: service total 2/2
        assert status == 202
        status, headers, body = post("carol")  # service full
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert body["scope"] == "service"

        gate.release.set()
        for accepted in (first, second, third):
            done = wait_terminal(service, accepted["campaign_id"])
            assert done.state == "complete"  # nothing accepted was dropped

    def test_rejected_submissions_leave_no_submission_record(self, started):
        gate = GateExperiment("slow")
        service, base = started(
            [gate], queue_capacity=1, max_queued=8, dispatchers=1
        )
        status, _, first = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )
        assert status == 202
        assert gate.started.wait(timeout=10)
        status, _, second = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )
        assert status == 202  # fills the queue
        status, _, _ = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )
        assert status == 429
        gate.release.set()
        wait_terminal(service, first["campaign_id"])
        wait_terminal(service, second["campaign_id"])
        with service._lock:
            assert len(service._submissions) == 2


class TestDeadlines:
    def test_deadline_expired_in_queue_never_burns_worker_time(
        self, started
    ):
        gate = GateExperiment("slow")
        quick = FakeExperiment("quickie")
        service, base = started([gate, quick], dispatchers=1)
        status, _, first = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )
        assert status == 202
        assert gate.started.wait(timeout=10)
        status, _, doomed = http(
            "POST", base, "/v1/campaigns",
            {
                "tenant": "bob",
                "experiments": ["quickie"],
                "deadline_seconds": 0.05,
            },
        )
        assert status == 202
        time.sleep(0.2)  # let the deadline lapse while queued
        gate.release.set()
        done = wait_terminal(service, doomed["campaign_id"])
        assert done.state == "deadline-exceeded"
        assert quick.calls == []  # never dispatched
        wait_terminal(service, first["campaign_id"])

    def test_bad_deadline_is_rejected_up_front(self, started):
        service, base = started([FakeExperiment("a")])
        status, _, _ = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["a"], "deadline_seconds": -1},
        )
        assert status == 400
        status, _, _ = http(
            "POST", base, "/v1/campaigns",
            {
                "tenant": "alice",
                "experiments": ["a"],
                "deadline_seconds": "soon",
            },
        )
        assert status == 400


class TestDrainAndRecovery:
    def test_drain_finishes_inflight_parks_queued_and_recovery_resumes(
        self, tmp_path
    ):
        gate = GateExperiment("slow")
        service = make_service(
            tmp_path, [gate], queue_capacity=8, max_queued=64, dispatchers=1
        )
        service.start()
        host, port = service.address
        base = f"http://{host}:{port}"
        _, _, inflight = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )
        assert gate.started.wait(timeout=10)
        _, _, parked = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )

        drain_result = {}
        drainer = threading.Thread(
            target=lambda: drain_result.update(
                clean=service.drain(timeout=30)
            )
        )
        drainer.start()
        # The drain closes admission and parks the queue before it
        # waits on the in-flight campaign; release the gate only after
        # the parked submission is out of the queue.
        deadline = time.monotonic() + 10
        while service.admission.pending_total() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.admission.closed
        gate.release.set()
        drainer.join(timeout=30)
        assert drain_result["clean"] is True

        finished = service.get_submission(inflight["campaign_id"])
        assert finished.state == "complete"
        still_owed = service.get_submission(parked["campaign_id"])
        assert still_owed.state == "queued"  # parked, not lost
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(base + "/healthz", timeout=2)

        # A new incarnation on the same root owes exactly the parked
        # submission — WAL replay re-queues it under its original id.
        gate2 = GateExperiment("slow")
        gate2.release.set()  # no blocking this time
        second = make_service(tmp_path, [gate2], dispatchers=1)
        second.start()
        try:
            done = wait_terminal(second, parked["campaign_id"])
            assert done.state == "complete"
            # The first incarnation already computed this key, so the
            # recovered submission is served from the shared cache —
            # and the finished campaign is not re-dispatched at all.
            assert done.cache_hits == 1
            assert gate2.calls == 0
            finished_record = second.get_submission(inflight["campaign_id"])
            assert finished_record.state == "complete"
        finally:
            second.drain(timeout=30)

    def test_posts_during_drain_get_503_with_retry_after(self, tmp_path):
        gate = GateExperiment("slow")
        service = make_service(tmp_path, [gate], dispatchers=1)
        service.start()
        host, port = service.address
        base = f"http://{host}:{port}"
        http(
            "POST", base, "/v1/campaigns",
            {"tenant": "alice", "experiments": ["slow"]},
        )
        assert gate.started.wait(timeout=10)
        drainer = threading.Thread(target=lambda: service.drain(timeout=30))
        drainer.start()
        deadline = time.monotonic() + 10
        while not service.admission.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        status, headers, _ = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "bob", "experiments": ["slow"]},
        )
        assert status == 503
        assert "Retry-After" in headers
        status, _, _ = http("GET", base, "/readyz")
        assert status == 503
        gate.release.set()
        drainer.join(timeout=30)


class FakeFabric:
    """The fabric surface the HTTP layer touches, with dial-a-liveness."""

    def __init__(self, live=0, total=3):
        from repro.service.dispatch import FabricConfig

        self.live = live
        self.total = total
        self.config = FabricConfig(nodes=max(1, total))
        self.stopped = False

    def live_node_count(self):
        return self.live

    def node_count(self):
        return self.total

    def describe(self):
        return {
            "nodes": {
                f"node-{i}": {
                    "pid": 1000 + i,
                    "token": 1,
                    "alive": i < self.live,
                    "inflight": 0,
                    "deaths": 0,
                    "last_heartbeat_wall": 0.0,
                    "breaker": "closed",
                }
                for i in range(self.total)
            },
            "live": self.live,
            "total": self.total,
        }

    def stop(self, term_grace_seconds=5.0):
        self.stopped = True


class TestAllNodesDead:
    """Satellite: the service must refuse honestly when the whole
    dispatch fabric is down, and /healthz must say why."""

    def test_post_gets_503_with_retry_after_when_no_node_lives(self, started):
        service, base = started([FakeExperiment("a")])
        service.fabric = FakeFabric(live=0, total=3)
        status, headers, body = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "t", "experiments": ["a"]},
        )
        assert status == 503
        assert "Retry-After" in headers
        assert int(headers["Retry-After"]) >= 1
        assert "node" in body["error"]
        # Nothing was journaled or queued for the rejected submission.
        assert service.describe()["submissions"] == {}

    def test_healthz_reports_per_node_liveness_dead(self, started):
        service, base = started([FakeExperiment("a")])
        service.fabric = FakeFabric(live=0, total=2)
        status, headers, body = http("GET", base, "/healthz")
        assert status == 503
        assert body["ok"] is False
        assert headers.get("Retry-After") is not None
        assert body["nodes"]["live"] == 0
        assert set(body["nodes"]["nodes"]) == {"node-0", "node-1"}

    def test_healthz_healthy_with_live_nodes(self, started):
        service, base = started([FakeExperiment("a")])
        service.fabric = FakeFabric(live=1, total=2)
        status, _, body = http("GET", base, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["nodes"]["nodes"]["node-0"]["alive"] is True

    def test_healthz_without_fabric_stays_simple(self, started):
        service, base = started([FakeExperiment("a")])
        status, _, body = http("GET", base, "/healthz")
        assert status == 200
        assert body == {"ok": True}

    def test_submissions_flow_again_once_a_node_returns(self, started):
        service, base = started([FakeExperiment("a")])
        fabric = FakeFabric(live=0, total=1)
        service.fabric = fabric
        status, _, _ = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "t", "experiments": ["a"]},
        )
        assert status == 503
        fabric.live = 1  # the respawn landed
        # Clear the fabric before the engine runs: FakeFabric cannot
        # actually execute work; admission is what's under test.
        service.fabric = None
        status, _, body = http(
            "POST", base, "/v1/campaigns",
            {"tenant": "t", "experiments": ["a"]},
        )
        assert status == 202
        wait_terminal(service, body["campaign_id"])

    def test_drain_stops_the_fabric(self, started):
        service, _ = started([FakeExperiment("a")])
        fabric = FakeFabric(live=1, total=1)
        service.fabric = fabric
        assert service.drain(timeout=30)
        assert fabric.stopped

    def test_describe_includes_node_health(self, started):
        service, base = started([FakeExperiment("a")])
        service.fabric = FakeFabric(live=2, total=2)
        status, _, body = http("GET", base, "/v1/service")
        assert status == 200
        assert body["nodes"]["live"] == 2
