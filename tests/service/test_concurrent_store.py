"""Concurrent multi-campaign access to one shared content-addressed
store: N threads *and* N spawned processes race the same cold keys and
the per-key flock + publish-under-lock protocol must yield exactly one
computation per key, with no torn or unverifiable entries."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

from repro.service.cache import ResultCache

from tests.service.conftest import PINNED_FINGERPRINT

KEYS = [("expA", {"n": 1}), ("expB", {"n": 2}), ("expC", {"n": 3})]


def compute_marker(markers: Path, experiment_id: str):
    """A compute() that leaves one unique marker file per invocation."""

    def compute():
        fd, _ = None, None
        import tempfile

        fd, path = tempfile.mkstemp(
            prefix=f"{experiment_id}-", dir=str(markers)
        )
        os.close(fd)
        return {"experiment_id": experiment_id, "status": "ok", "path": path}

    return compute


class TestThreadRaces:
    def test_threads_racing_cold_keys_compute_each_exactly_once(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        markers = tmp_path / "markers"
        markers.mkdir()
        errors = []

        def hammer():
            try:
                for experiment_id, params in KEYS * 5:
                    outcome, _ = cache.get_or_compute(
                        experiment_id,
                        params,
                        compute_marker(markers, experiment_id),
                    )
                    assert outcome["experiment_id"] == experiment_id
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        by_key = {}
        for marker in markers.iterdir():
            by_key.setdefault(marker.name.split("-")[0], []).append(marker)
        assert {k: len(v) for k, v in sorted(by_key.items())} == {
            "expA": 1, "expB": 1, "expC": 1
        }
        assert cache.verify_all() == {}


WORKER_SCRIPT = r"""
import json, sys, threading
from pathlib import Path
from repro.service.cache import ResultCache

cache_root, markers_dir, worker_id = sys.argv[1], sys.argv[2], sys.argv[3]
cache = ResultCache(cache_root)
KEYS = [("expA", {"n": 1}), ("expB", {"n": 2}), ("expC", {"n": 3})]


def compute_for(experiment_id):
    def compute():
        import os, tempfile
        fd, path = tempfile.mkstemp(
            prefix=f"{experiment_id}-", dir=markers_dir
        )
        os.close(fd)
        return {"experiment_id": experiment_id, "status": "ok", "path": path}
    return compute


def hammer():
    for experiment_id, params in KEYS * 3:
        outcome, _ = cache.get_or_compute(
            experiment_id, params, compute_for(experiment_id)
        )
        assert outcome["experiment_id"] == experiment_id, outcome


threads = [threading.Thread(target=hammer) for _ in range(4)]
for t in threads:
    t.start()
for t in threads:
    t.join(60)
print(f"worker {worker_id} ok")
"""


class TestProcessRaces:
    def test_processes_and_threads_share_one_store_exactly_once(
        self, tmp_path
    ):
        cache_root = tmp_path / "cache"
        markers = tmp_path / "markers"
        markers.mkdir()
        env = dict(os.environ)
        env["REPRO_CODE_FINGERPRINT"] = PINNED_FINGERPRINT
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")

        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER_SCRIPT,
                 str(cache_root), str(markers), str(i)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for i in range(4)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"worker failed:\n{out}\n{err}"

        # Exactly one computation per key across 4 processes x 4 threads.
        by_key = {}
        for marker in markers.iterdir():
            by_key.setdefault(marker.name.split("-")[0], []).append(marker)
        assert {k: len(v) for k, v in sorted(by_key.items())} == {
            "expA": 1, "expB": 1, "expC": 1
        }

        # No torn entries: every envelope re-verifies, the manifest
        # indexes every key, and every key serves its committed value.
        cache = ResultCache(cache_root, fingerprint=PINNED_FINGERPRINT)
        assert cache.verify_all() == {}
        manifest = cache.read_manifest()
        assert len(manifest["entries"]) == 3
        for experiment_id, params in KEYS:
            entry = cache.get(cache.key_for(experiment_id, params))
            assert entry is not None
            assert entry["outcome"]["experiment_id"] == experiment_id

    def test_no_quarantines_were_needed(self, tmp_path):
        # A clean race must never route through the corruption path.
        cache_root = tmp_path / "cache"
        cache = ResultCache(cache_root, fingerprint=PINNED_FINGERPRINT)
        markers = tmp_path / "markers"
        markers.mkdir()
        threads = [
            threading.Thread(
                target=lambda: cache.get_or_compute(
                    "expA", {"n": 1}, compute_marker(markers, "expA")
                )
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not cache.quarantine_dir.exists() or not list(
            cache.quarantine_dir.iterdir()
        )
