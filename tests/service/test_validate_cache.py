"""Store-audit findings for the content-addressed cache: one typed
code per corruption class, tolerant of stale-fingerprint entries."""

import json

from repro.service.cache import ResultCache
from repro.validate.artifacts import (
    is_service_root,
    validate_cache_dir,
)


def seeded_cache(tmp_path) -> ResultCache:
    cache = ResultCache(tmp_path / "cache", fingerprint="audit-f")
    cache.put("a", {"n": 1}, {"experiment_id": "a", "status": "ok"})
    cache.put("b", {"n": 2}, {"experiment_id": "b", "status": "ok"})
    return cache


class TestCacheAudit:
    def test_clean_cache_passes(self, tmp_path):
        cache = seeded_cache(tmp_path)
        report = validate_cache_dir(cache.root)
        assert report.ok, report.render()

    def test_tampered_entry_is_cache_entry_corrupt(self, tmp_path):
        cache = seeded_cache(tmp_path)
        key = cache.key_for("a", {"n": 1})
        path = cache.object_path(key)
        path.write_text(
            path.read_text(encoding="utf-8").replace('"ok"', '"OK"'),
            encoding="utf-8",
        )
        report = validate_cache_dir(cache.root)
        assert "cache-entry-corrupt" in report.codes()
        assert not report.ok

    def test_entry_under_wrong_key_is_cache_key_mismatch(self, tmp_path):
        cache = seeded_cache(tmp_path)
        key = cache.key_for("a", {"n": 1})
        wrong = cache.object_path("f" * 64)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(
            cache.object_path(key).read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        report = validate_cache_dir(cache.root)
        assert "cache-key-mismatch" in report.codes()

    def test_manifest_key_without_entry_is_dangling(self, tmp_path):
        cache = seeded_cache(tmp_path)
        key = cache.key_for("a", {"n": 1})
        cache.object_path(key).unlink()
        report = validate_cache_dir(cache.root)
        assert "cache-dangling-entry" in report.codes()
        assert not report.ok

    def test_entry_missing_from_manifest_is_a_warning(self, tmp_path):
        cache = seeded_cache(tmp_path)
        manifest = cache.read_manifest()
        key = cache.key_for("a", {"n": 1})
        del manifest["entries"][key]
        cache.manifest_path.write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        report = validate_cache_dir(cache.root)
        assert "cache-unindexed-entry" in report.codes()
        assert report.ok  # warning, not error: the manifest is an index

    def test_quarantined_entries_are_surfaced_as_warnings(self, tmp_path):
        cache = seeded_cache(tmp_path)
        key = cache.key_for("a", {"n": 1})
        path = cache.object_path(key)
        path.write_text("{torn", encoding="utf-8")
        assert cache.get(key) is None  # quarantines
        report = validate_cache_dir(cache.root)
        assert "cache-quarantined" in report.codes()

    def test_stale_fingerprint_entries_are_not_indicted(self, tmp_path):
        seeded_cache(tmp_path)
        # Audit with no knowledge of the writing fingerprint: entries
        # from other code versions are stale, not corrupt.
        report = validate_cache_dir(tmp_path / "cache")
        assert "cache-entry-corrupt" not in report.codes()
        assert "cache-key-mismatch" not in report.codes()


class TestServiceRootDetection:
    def test_campaigns_dir_or_wal_marks_a_service_root(self, tmp_path):
        assert not is_service_root(tmp_path)
        (tmp_path / "campaigns").mkdir()
        assert is_service_root(tmp_path)
        other = tmp_path / "other"
        other.mkdir()
        (other / "service.wal").write_text("", encoding="utf-8")
        assert is_service_root(other)
