"""Content-addressed result cache: keying, verified reads, quarantine,
first-writer-wins publication, and the memoization seam."""

import json

import pytest

from repro.service.cache import (
    CacheKeyError,
    ResultCache,
    cache_key,
    canonical_params,
    code_fingerprint,
    verify_entry_envelope,
)

from tests.service.conftest import PINNED_FINGERPRINT, counter


def ok_outcome(experiment_id: str = "a") -> dict:
    return {"experiment_id": experiment_id, "status": "ok", "value": 42}


class TestKeying:
    def test_key_ignores_dict_order_and_tuple_spelling(self):
        a = cache_key("fig2", {"n": 100, "grid": (4, 4)}, "f")
        b = cache_key("fig2", {"grid": [4, 4], "n": 100}, "f")
        assert a == b

    def test_key_distinguishes_params_app_and_code(self):
        base = cache_key("fig2", {"n": 100}, "f")
        assert cache_key("fig2", {"n": 101}, "f") != base
        assert cache_key("fig3", {"n": 100}, "f") != base
        assert cache_key("fig2", {"n": 100}, "g") != base

    def test_canonical_params_round_trips_tuples(self):
        assert canonical_params({"grid": (4, 4)}) == {"grid": [4, 4]}

    def test_uncanonicalizable_params_raise(self):
        with pytest.raises(CacheKeyError):
            cache_key("fig2", {"bad": object()}, "f")

    def test_env_override_pins_the_fingerprint(self):
        # The conftest pins REPRO_CODE_FINGERPRINT for every test here.
        assert code_fingerprint() == PINNED_FINGERPRINT

    def test_code_change_invalidates_by_changing_the_key(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="code-v1")
        new = ResultCache(tmp_path, fingerprint="code-v2")
        old.put("a", {"n": 1}, ok_outcome())
        assert new.get(new.key_for("a", {"n": 1})) is None  # plain miss


class TestRoundTrip:
    def test_put_then_get_serves_the_verified_payload(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        assert path.is_file()
        entry = cache.get(key)
        assert entry["outcome"] == ok_outcome()
        assert entry["experiment_id"] == "a"
        assert counter("service.cache.hits") == 1
        assert counter("service.cache.puts") == 1

    def test_missing_key_is_a_plain_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None
        assert counter("service.cache.quarantined") == 0

    def test_first_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = cache.put("a", {"n": 1}, ok_outcome())
        cache.put("a", {"n": 1}, {**ok_outcome(), "value": 99})
        assert cache.get(key)["outcome"]["value"] == 42

    def test_manifest_indexes_every_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = cache.put("a", {"n": 1}, ok_outcome())
        manifest = cache.read_manifest()
        assert manifest["entries"][key]["experiment_id"] == "a"


class TestQuarantine:
    def test_tampered_entry_is_quarantined_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        path.write_text(
            path.read_text(encoding="utf-8").replace('"value": 42', '"value": 43'),
            encoding="utf-8",
        )
        assert cache.get(key) is None
        assert not path.exists()
        quarantined = list(cache.quarantine_dir.glob("*.json"))
        assert len(quarantined) == 1
        reason = quarantined[0].with_suffix(".json.reason").read_text()
        assert "integrity" in reason
        assert counter("service.cache.quarantined") == 1

    def test_entry_filed_under_wrong_key_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        wrong = "f" * 64
        wrong_path = cache.object_path(wrong)
        wrong_path.parent.mkdir(parents=True, exist_ok=True)
        wrong_path.write_text(path.read_text(encoding="utf-8"), encoding="utf-8")
        assert cache.get(wrong) is None
        assert not wrong_path.exists()
        assert cache.get(key) is not None  # the real entry is untouched

    def test_undecodable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert counter("service.cache.quarantined") == 1

    def test_put_replaces_a_corrupt_existing_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        path.write_text("{not json", encoding="utf-8")
        cache.put("a", {"n": 1}, ok_outcome())
        assert cache.get(key)["outcome"] == ok_outcome()
        assert list(cache.quarantine_dir.glob("*.json"))  # evicted, kept


class TestGetOrCompute:
    def test_computes_once_then_serves_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return ok_outcome()

        first, was_hit = cache.get_or_compute("a", {"n": 1}, compute)
        second, was_hit2 = cache.get_or_compute("a", {"n": 1}, compute)
        assert (was_hit, was_hit2) == (False, True)
        assert first == second == ok_outcome()
        assert len(calls) == 1
        assert counter("service.cache.misses") == 1

    def test_failed_outcomes_are_returned_but_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        failed = {"experiment_id": "a", "status": "failed"}
        outcome, was_hit = cache.get_or_compute("a", {"n": 1}, lambda: failed)
        assert outcome == failed and not was_hit
        assert cache.get(cache.key_for("a", {"n": 1})) is None

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        path.write_text("{not json", encoding="utf-8")
        outcome, was_hit = cache.get_or_compute(
            "a", {"n": 1}, lambda: {**ok_outcome(), "value": 7}
        )
        assert not was_hit and outcome["value"] == 7
        assert cache.get(key)["outcome"]["value"] == 7  # republished


class TestVerifyAll:
    def test_clean_store_verifies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {"n": 1}, ok_outcome())
        cache.put("b", {"n": 2}, ok_outcome("b"))
        assert cache.verify_all() == {}

    def test_corruption_is_reported_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        path.write_text("{not json", encoding="utf-8")
        problems = cache.verify_all()
        assert list(problems) == [str(path.relative_to(cache.root))]
        assert path.exists()  # read-only audit

    def test_stale_fingerprint_entries_are_not_indicted(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="code-v1")
        old.put("a", {"n": 1}, ok_outcome())
        assert ResultCache(tmp_path, fingerprint="code-v2").verify_all() == {}


class TestEnvelopeVerifier:
    def test_stale_entry_is_unservable_when_fingerprint_given(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="code-v1")
        key, path = cache.put("a", {"n": 1}, ok_outcome())
        envelope = json.loads(path.read_text(encoding="utf-8"))
        assert verify_entry_envelope(key, envelope, "code-v1") is None
        assert "stale" in verify_entry_envelope(key, envelope, "code-v2")

    def test_rejects_missing_payload_and_bad_format(self):
        assert verify_entry_envelope("k", {"format": 1}) is not None
        assert verify_entry_envelope("k", {"format": 99, "payload": {}}) is not None
        assert verify_entry_envelope("k", "not a dict") is not None
