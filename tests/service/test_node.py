"""Worker-node protocol pieces: fault-directive parsing and the
partition-simulating line sender."""

from __future__ import annotations

import json
import socket

from repro.service.node import LineSender, parse_fault_directives


class TestParseFaultDirectives:
    def test_kill_directive_for_this_incarnation(self):
        parsed = parse_fault_directives("node-1#2:kill@1.5", "node-1", 2)
        assert len(parsed) == 1
        assert parsed[0].kind == "kill"
        assert parsed[0].at_seconds == 1.5

    def test_partition_directive_carries_duration(self):
        parsed = parse_fault_directives(
            "node-0#1:partition@0.3+4.0", "node-0", 1
        )
        assert len(parsed) == 1
        assert parsed[0].kind == "partition"
        assert parsed[0].at_seconds == 0.3
        assert parsed[0].duration_seconds == 4.0

    def test_other_nodes_and_incarnations_are_ignored(self):
        value = "node-0#1:kill@1,node-1#2:kill@2,node-1#1:kill@3"
        assert parse_fault_directives(value, "node-1", 1) == (
            parse_fault_directives("node-1#1:kill@3", "node-1", 1)
        )
        # A respawned incarnation outlives its predecessor's directives.
        assert parse_fault_directives("node-0#1:kill@1", "node-0", 2) == []

    def test_malformed_entries_never_raise(self):
        for garbage in (
            "",
            None,
            "node-0#1",
            "node-0#1:",
            "node-0#1:kill@",
            "node-0#1:explode@1.0",
            "node-0#x:kill@1.0",
            "node-0#1:partition@1.0+",
            ",,,",
        ):
            assert parse_fault_directives(garbage, "node-0", 1) == []

    def test_multiple_directives_for_one_node(self):
        parsed = parse_fault_directives(
            "node-0#1:partition@0.2+3.0,node-0#1:kill@9.0", "node-0", 1
        )
        assert [d.kind for d in parsed] == ["partition", "kill"]


def recv_lines(sock, count, timeout=5.0):
    sock.settimeout(timeout)
    buffer = b""
    while buffer.count(b"\n") < count:
        buffer += sock.recv(4096)
    return [json.loads(line) for line in buffer.splitlines()]


class TestLineSender:
    def test_sends_one_json_object_per_line(self):
        left, right = socket.socketpair()
        sender = LineSender(left)
        assert sender.send({"type": "a", "n": 1})
        assert sender.send({"type": "b"})
        assert recv_lines(right, 2) == [{"n": 1, "type": "a"}, {"type": "b"}]

    def test_mute_buffers_and_heal_flushes_in_order(self):
        left, right = socket.socketpair()
        sender = LineSender(left)
        sender.mute()
        for index in range(3):
            assert sender.send({"seq": index})  # "accepted", not delivered
        right.settimeout(0.2)
        try:
            data = right.recv(4096)
        except socket.timeout:
            data = b""
        assert data == b""  # the partition really is silent

        assert sender.heal()
        assert recv_lines(right, 3) == [{"seq": 0}, {"seq": 1}, {"seq": 2}]

    def test_send_after_peer_close_reports_failure(self):
        left, right = socket.socketpair()
        sender = LineSender(left)
        right.close()
        # One send may land in kernel buffers; the follow-up must fail.
        ok = sender.send({"type": "x"}) and sender.send({"type": "y"})
        assert not ok
